//! Offline subset of the `rand` crate (see `shims/README.md`).
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded via splitmix64),
//! [`SeedableRng`], and an [`Rng`] extension trait with the `gen` /
//! `gen_range` methods the workspace uses. The stream differs from upstream
//! `rand 0.8`, but is fully deterministic per seed.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++ seeded with
    /// splitmix64 (the same construction upstream `SmallRng` uses on
    /// 64-bit targets, though the exact stream differs by version).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0..3.0f32);
            assert!((-2.0..3.0).contains(&y));
        }
    }
}
