//! Offline subset of `criterion` (see `shims/README.md`).
//!
//! A real (if simplified) wall-clock micro-benchmark harness: warm-up, then
//! `sample_size` samples sized to fill `measurement_time`, reporting
//! `[min median max]` per benchmark to stdout. Honours a positional CLI
//! filter argument like upstream (`cargo bench -p burst-bench -- flash`).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    /// Marker type: wall-clock time (the only measurement supported).
    pub struct WallTime;
}

/// Benchmark identifier: optional function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First positional (non-flag) CLI argument is a substring filter;
        // flags cargo passes to bench binaries (e.g. `--bench`) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            samples: 20,
            _measurement: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let full = id.render();
        run_benchmark(
            &full,
            self.filter.as_deref(),
            Duration::from_millis(500),
            Duration::from_secs(2),
            20,
            &mut f,
        );
        self
    }
}

pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    _measurement: std::marker::PhantomData<M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.samples = n;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.render());
        run_benchmark(
            &full,
            self.criterion.filter.as_deref(),
            self.warm_up,
            self.measurement,
            self.samples,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let full = format!("{}/{}", self.name, id.render());
        run_benchmark(
            &full,
            self.criterion.filter.as_deref(),
            self.warm_up,
            self.measurement,
            self.samples,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

/// Run one benchmark and print a summary line. Public only for the macros'
/// sake; not part of the mimicked API.
pub fn run_benchmark<F>(
    full_name: &str,
    filter: Option<&str>,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !full_name.contains(pat) {
            return;
        }
    }
    // Warm-up: double iteration count until the warm-up budget is spent;
    // this also estimates per-iteration cost.
    let mut iters = 1u64;
    let mut spent = Duration::ZERO;
    let mut last = Duration::ZERO;
    while spent < warm_up {
        last = time_once(f, iters);
        spent += last;
        if spent >= warm_up {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let per_iter = last.as_secs_f64() / iters as f64;
    // Size each sample so all samples together fill the measurement budget.
    let budget = measurement.as_secs_f64() / samples as f64;
    let sample_iters = ((budget / per_iter.max(1e-9)) as u64).max(1);
    let mut per_iter_times: Vec<f64> = (0..samples)
        .map(|_| time_once(f, sample_iters).as_secs_f64() / sample_iters as f64)
        .collect();
    per_iter_times.sort_by(|a, b| a.total_cmp(b));
    let lo = per_iter_times[0];
    let mid = per_iter_times[per_iter_times.len() / 2];
    let hi = per_iter_times[per_iter_times.len() - 1];
    println!(
        "{full_name:<56} time: [{} {} {}]  ({} samples × {} iters)",
        fmt_time(lo),
        fmt_time(mid),
        fmt_time(hi),
        samples,
        sample_iters
    );
}

/// Median per-iteration seconds for an ad-hoc measurement (used by the
/// `export_json --kernels` baseline emitter; not a real criterion API).
pub fn measure_median_secs<O, F: FnMut() -> O>(
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    mut routine: F,
) -> f64 {
    let mut f = |b: &mut Bencher| b.iter(&mut routine);
    let mut iters = 1u64;
    let mut spent = Duration::ZERO;
    let mut last = Duration::ZERO;
    while spent < warm_up {
        last = time_once(&mut f, iters);
        spent += last;
        if spent >= warm_up {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let per_iter = last.as_secs_f64() / iters as f64;
    let budget = measurement.as_secs_f64() / samples as f64;
    let sample_iters = ((budget / per_iter.max(1e-9)) as u64).max(1);
    let mut times: Vec<f64> = (0..samples)
        .map(|_| time_once(&mut f, sample_iters).as_secs_f64() / sample_iters as f64)
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn fmt_time(secs: f64) -> String {
    let mut out = String::new();
    if secs >= 1.0 {
        let _ = write!(out, "{secs:.3} s");
    } else if secs >= 1e-3 {
        let _ = write!(out, "{:.3} ms", secs * 1e3);
    } else if secs >= 1e-6 {
        let _ = write!(out, "{:.3} µs", secs * 1e6);
    } else {
        let _ = write!(out, "{:.1} ns", secs * 1e9);
    }
    out
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let median = measure_median_secs(
            Duration::from_millis(5),
            Duration::from_millis(20),
            5,
            || {
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    acc = acc.wrapping_add(black_box(i * i));
                }
                acc
            },
        );
        assert!(median > 0.0 && median < 0.1, "median {median}");
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("flash", 4096).render(), "flash/4096");
        assert_eq!(BenchmarkId::from_parameter(8).render(), "8");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
