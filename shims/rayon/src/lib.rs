//! Offline subset of `rayon` (see `shims/README.md`).
//!
//! Backed by `std::thread::scope` rather than a persistent work-stealing
//! pool: each parallel call spawns scoped OS threads, partitions work into
//! **fixed, thread-count-independent chunks**, and joins. That is slower to
//! launch than real rayon but has one property this workspace leans on:
//! because work decomposition never depends on the number of workers, any
//! kernel whose per-chunk math is deterministic is automatically
//! bit-identical across `RAYON_NUM_THREADS` settings.
//!
//! `current_num_threads` re-reads `RAYON_NUM_THREADS` on *every* call
//! (upstream rayon latches it at pool construction), which lets tests sweep
//! thread counts within a single process.

/// Number of worker threads parallel calls may use right now.
///
/// Honours `RAYON_NUM_THREADS` (re-read on each call); falls back to the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (ra, rb)
    })
}

/// Distribute `n` work items over up to `current_num_threads()` workers.
/// `run(lo, hi)` processes items `lo..hi`; item ranges are contiguous and
/// in order, so side effects into disjoint per-item slots are deterministic.
fn for_each_span<F: Fn(usize, usize) + Sync>(n: usize, run: F) {
    if n == 0 {
        return;
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        run(0, n);
        return;
    }
    let per = n.div_ceil(workers);
    std::thread::scope(|s| {
        let run = &run;
        for w in 0..workers {
            let lo = w * per;
            let hi = (lo + per).min(n);
            if lo >= hi {
                break;
            }
            s.spawn(move || run(lo, hi));
        }
    });
}

pub mod iter {
    use super::for_each_span;
    use std::sync::Mutex;

    /// `&[T] -> par_iter()`.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = ParIter<'data, T>;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = ParIter<'data, T>;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    pub struct ParIter<'data, T> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                slice: self.slice,
                f,
            }
        }

        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'data T) + Sync,
        {
            let slice = self.slice;
            for_each_span(slice.len(), |lo, hi| {
                for item in &slice[lo..hi] {
                    f(item);
                }
            });
        }
    }

    pub struct ParMap<'data, T, F> {
        slice: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, F> ParMap<'data, T, F> {
        /// Collect mapped results **in input order** (parallelism never
        /// changes the output sequence).
        pub fn collect<C, R>(self) -> C
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
            C: FromParVec<R>,
        {
            let n = self.slice.len();
            let workers = super::current_num_threads().min(n.max(1));
            if workers <= 1 {
                return C::from_par_vec(self.slice.iter().map(&self.f).collect());
            }
            let per = n.div_ceil(workers);
            let slice = self.slice;
            let f = &self.f;
            let parts: Vec<Vec<R>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .filter_map(|w| {
                        let lo = w * per;
                        let hi = (lo + per).min(n);
                        (lo < hi).then(|| {
                            s.spawn(move || slice[lo..hi].iter().map(f).collect::<Vec<R>>())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut out = Vec::with_capacity(n);
            for p in parts {
                out.extend(p);
            }
            C::from_par_vec(out)
        }
    }

    /// Targets of `ParMap::collect` (stands in for `FromParallelIterator`).
    pub trait FromParVec<R> {
        fn from_par_vec(v: Vec<R>) -> Self;
    }

    impl<R> FromParVec<R> for Vec<R> {
        fn from_par_vec(v: Vec<R>) -> Self {
            v
        }
    }

    /// `&mut [T] -> par_chunks_mut(n)`.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be non-zero");
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }

    pub struct ParChunksMut<'data, T> {
        slice: &'data mut [T],
        chunk_size: usize,
    }

    impl<'data, T: Send> ParChunksMut<'data, T> {
        pub fn enumerate(self) -> EnumeratedChunksMut<'data, T> {
            EnumeratedChunksMut {
                slice: self.slice,
                chunk_size: self.chunk_size,
            }
        }

        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            self.enumerate().for_each(|(_, chunk)| f(chunk));
        }
    }

    pub struct EnumeratedChunksMut<'data, T> {
        slice: &'data mut [T],
        chunk_size: usize,
    }

    impl<'data, T: Send> EnumeratedChunksMut<'data, T> {
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Sync,
        {
            let chunks: Vec<(usize, Mutex<&mut [T]>)> = self
                .slice
                .chunks_mut(self.chunk_size)
                .enumerate()
                .map(|(i, c)| (i, Mutex::new(c)))
                .collect();
            for_each_span(chunks.len(), |lo, hi| {
                for (i, cell) in &chunks[lo..hi] {
                    let mut guard = cell.lock().unwrap();
                    f((*i, &mut guard));
                }
            });
        }
    }
}

pub mod prelude {
    pub use crate::iter::{FromParVec, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "x".repeat(3));
        assert_eq!(a, 4);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn par_chunks_mut_covers_all_in_order() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = i * 10 + j;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let input: Vec<usize> = (0..257).collect();
        let out: Vec<usize> = input.par_iter().map(|&x| x * 3).collect();
        assert_eq!(out.len(), input.len());
        for (i, x) in out.iter().enumerate() {
            assert_eq!(*x, i * 3);
        }
    }
}
