//! Offline subset of `serde_json` (see `shims/README.md`).
//!
//! Serializes the serde shim's [`Value`] tree to JSON text and parses it
//! back. Floats are printed with Rust's shortest-roundtrip formatting, so
//! `f32`/`f64` values survive a round-trip bit-exactly (the checkpoint tests
//! rely on this). Integral floats print without a fractional part.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// -------------------------------------------------------------- encoding

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write;
    if !n.is_finite() {
        // The serde shim encodes non-finite floats as strings before they
        // reach here; a bare non-finite number has no JSON form.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest representation that round-trips f64.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- decoding

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(e.to_string()))?;
    from_str(s)
}

fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{token}` at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat("{")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("eof in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("eof in \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error::msg(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error::msg(e.to_string()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::msg("bad \\u escape"))?,
                            );
                        }
                        other => return Err(Error::msg(format!("bad escape \\{}", other as char))),
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::msg(e.to_string()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
    }
}

// ----------------------------------------------------------------- json!

/// Construct a [`Value`] from JSON-ish syntax, like real `serde_json`.
/// Values may be arbitrary expressions (converted via `Value::from`),
/// nested `{...}` objects, or `[...]` arrays.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => {
        $crate::Value::Array($crate::json_array_munch!([] $($elems)*))
    };
    ({ $($entries:tt)* }) => {{
        #[allow(clippy::vec_init_then_push)]
        let __obj = {
            #[allow(unused_mut)]
            let mut __obj: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_object_munch!(__obj $($entries)*);
            __obj
        };
        $crate::Value::Object(__obj)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_value_munch {
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => { $crate::json!({ $($tt)* }) };
    ([ $($tt:tt)* ]) => { $crate::json!([ $($tt)* ]) };
    ($($e:tt)+) => { $crate::Value::from($($e)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_munch {
    ($obj:ident) => {};
    ($obj:ident $key:literal : $($rest:tt)*) => {
        $crate::json_object_value_munch!($obj $key () $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_value_munch {
    ($obj:ident $key:literal ($($cur:tt)+) , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json_value_munch!($($cur)+)));
        $crate::json_object_munch!($obj $($rest)*);
    };
    ($obj:ident $key:literal ($($cur:tt)+)) => {
        $obj.push(($key.to_string(), $crate::json_value_munch!($($cur)+)));
    };
    ($obj:ident $key:literal ($($cur:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object_value_munch!($obj $key ($($cur)* $next) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_munch {
    ([$($done:expr),*]) => { ::std::vec![$($done),*] };
    ([$($done:expr),*] $($rest:tt)+) => {
        $crate::json_array_value_munch!([$($done),*] () $($rest)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_value_munch {
    ([$($done:expr),*] ($($cur:tt)+) , $($rest:tt)*) => {
        $crate::json_array_munch!([$($done,)* $crate::json_value_munch!($($cur)+)] $($rest)*)
    };
    ([$($done:expr),*] ($($cur:tt)+)) => {
        $crate::json_array_munch!([$($done,)* $crate::json_value_munch!($($cur)+)])
    };
    ([$($done:expr),*] ($($cur:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_array_value_munch!([$($done),*] ($($cur)* $next) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_and_roundtrip() {
        let n = 4096usize;
        let rows: Vec<Value> = (0..2)
            .map(|i| json!({"idx": i, "half": (i as f64) / 2.0}))
            .collect();
        let doc = json!({
            "name": format!("run-{n}"),
            "seq": n,
            "ok": true,
            "nothing": null,
            "rows": rows,
            "lit": [1, 2.5, "x"],
        });
        let text = to_string_pretty(&doc).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn float_bit_exact_roundtrip() {
        let xs: Vec<f32> = vec![0.1, -3.75e-6, 1.0, 16777216.0, f32::MIN_POSITIVE];
        let text = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&text).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn nonfinite_floats_roundtrip_via_strings() {
        let xs = [f32::INFINITY, f32::NEG_INFINITY];
        let back: Vec<f32> = from_str(&to_string(&xs[..]).unwrap()).unwrap();
        assert_eq!(back, xs);
        let nan: f32 = from_str(&to_string(&f32::NAN).unwrap()).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
