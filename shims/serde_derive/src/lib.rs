//! Offline `#[derive(Serialize, Deserialize)]` for the serde shim
//! (see `shims/README.md`).
//!
//! Hand-parses the item's token stream (no `syn`/`quote`) and emits impls of
//! the shim's `Value`-tree traits. Supports exactly what this workspace
//! derives on:
//!
//! * structs with named fields (private fields fine — impls are generated in
//!   the defining crate),
//! * enums with unit, tuple, and struct variants,
//! * `#[serde(default)]` on named fields (a missing key deserializes to
//!   `Default::default()` instead of erroring — how report schemas stay
//!   readable across versions); no other attributes, no generics.
//!
//! Encoding matches real serde's externally-tagged default, so e.g.
//! `CkptKind::SeqSelective { rho: 0.5 }` becomes
//! `{"SeqSelective": {"rho": 0.5}}` and unit variants become plain strings.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: bad generated code")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: bad generated code")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: fields in declaration order.
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

/// One named field; `default` is set by `#[serde(default)]` and makes a
/// missing key deserialize to `Default::default()`.
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    fields: VFields,
}

enum VFields {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tts, &mut i);
    let keyword = expect_ident(&tts, &mut i);
    let name = expect_ident(&tts, &mut i);
    if matches!(&tts.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` not supported");
    }
    let kind = match keyword.as_str() {
        "struct" => match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            other => {
                panic!("serde_derive shim: struct `{name}` must have named fields, found {other:?}")
            }
        },
        "enum" => match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: enum `{name}` has no body, found {other:?}"),
        },
        kw => panic!("serde_derive shim: cannot derive on `{kw}` items"),
    };
    Item { name, kind }
}

/// Skip any number of `#[...]` attributes and an optional `pub` /
/// `pub(...)` visibility prefix.
fn skip_attrs_and_vis(tts: &[TokenTree], i: &mut usize) {
    loop {
        match tts.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tts.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tts: &[TokenTree], i: &mut usize) -> String {
    match tts.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, found {other:?}"),
    }
}

/// Like [`skip_attrs_and_vis`], but reports whether any of the skipped
/// attributes was `#[serde(default)]`.
fn take_field_attrs(tts: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    loop {
        match tts.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tts.get(*i + 1) {
                    default |= is_serde_default(g.stream());
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tts.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return default,
        }
    }
}

/// `serde(... default ...)` inside the bracket group of one attribute.
fn is_serde_default(stream: TokenStream) -> bool {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    match (tts.first(), tts.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

/// Parse `name: Type, ...` from inside a brace group. Commas nested in
/// `<...>` (multi-parameter generics) are not separators, so angle depth is
/// tracked explicitly; bracket-like groups are single tokens already.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    loop {
        let default = take_field_attrs(&tts, &mut i);
        if i >= tts.len() {
            break;
        }
        let name = expect_ident(&tts, &mut i);
        match tts.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive shim: expected `:` after field `{name}`, found {other:?}")
            }
        }
        let mut angle = 0i32;
        while let Some(tt) = tts.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&tts, &mut i);
        if i >= tts.len() {
            break;
        }
        let name = expect_ident(&tts, &mut i);
        let fields = match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VFields::Named(parse_named_fields(g.stream()))
            }
            _ => VFields::Unit,
        };
        match tts.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive shim: explicit discriminants not supported")
            }
            other => {
                panic!("serde_derive shim: unexpected token after variant `{name}`: {other:?}")
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Count comma-separated types in a tuple variant's parenthesised list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    if tts.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for tt in &tts {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

// --------------------------------------------------------------- codegen

const HEADER: &str =
    "#[automatically_derived]\n#[allow(clippy::all, unused_variables, unreachable_patterns, non_shorthand_field_patterns)]\n";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))",
                        f = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{HEADER}impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}\n"
    )
}

fn ser_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.fields {
        VFields::Unit => format!(
            "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),"
        ),
        VFields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
            };
            format!(
                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vn}\"), {inner})]),",
                binds.join(", ")
            )
        }
        VFields::Named(fields) => {
            let binds = fields
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>()
                .join(", ");
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))",
                        f = f.name
                    )
                })
                .collect();
            format!(
                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vn}\"), \
                 ::serde::Value::Object(::std::vec![{}]))]),",
                pairs.join(", ")
            )
        }
    }
}

/// `name: <expr>` initializer for one named field read from `src` (`__v`
/// for structs, `__inner` for struct variants), honoring
/// `#[serde(default)]` by falling back to `Default::default()` when the
/// key is missing.
fn de_field(f: &Field, src: &str) -> String {
    if f.default {
        format!(
            "{f}: match {src}.field(\"{f}\") {{ \
             ::std::result::Result::Ok(__x) => ::serde::Deserialize::from_value(__x)?, \
             ::std::result::Result::Err(_) => ::std::default::Default::default() }}",
            f = f.name
        )
    } else {
        format!(
            "{f}: ::serde::Deserialize::from_value({src}.field(\"{f}\")?)?",
            f = f.name
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| de_field(f, "__v")).collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => gen_enum_de(name, variants),
    };
    format!(
        "{HEADER}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}\n"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VFields::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.fields {
                VFields::Unit => None,
                VFields::Tuple(1) => Some(format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(__inner)?)),"
                )),
                VFields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{ \
                         let __arr = __inner.as_array().ok_or_else(|| \
                         ::serde::DeError::custom(\"expected array for variant {vn}\"))?; \
                         if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::custom(\"wrong arity for variant {vn}\")); }} \
                         ::std::result::Result::Ok({name}::{vn}({})) }}",
                        elems.join(", ")
                    ))
                }
                VFields::Named(fields) => {
                    let inits: Vec<String> =
                        fields.iter().map(|f| de_field(f, "__inner")).collect();
                    Some(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "match __v {{ \
         ::serde::Value::String(__s) => match __s.as_str() {{ \
         {} \
         __other => ::std::result::Result::Err(::serde::DeError::custom(\
         ::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))), \
         }}, \
         ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
         let (__tag, __inner) = &__pairs[0]; \
         match __tag.as_str() {{ \
         {} \
         __other => ::std::result::Result::Err(::serde::DeError::custom(\
         ::std::format!(\"unknown variant `{{__other}}` for {name}\"))), \
         }} }}, \
         __other => ::std::result::Result::Err(::serde::DeError::custom(\
         ::std::format!(\"bad encoding for enum {name}\"))), \
         }}",
        unit_arms.join(" "),
        tagged_arms.join(" ")
    )
}
