//! Offline subset of `serde` (see `shims/README.md`).
//!
//! Instead of upstream's visitor-based data model, serialization here goes
//! through an in-memory [`Value`] tree (the `serde_json::Value` shape):
//! `Serialize` produces a `Value`, `Deserialize` consumes one. That is all
//! the workspace needs — every consumer ultimately round-trips through
//! `serde_json`. The derive macros live in `serde_derive` and are
//! re-exported here so `#[derive(Serialize, Deserialize)]` works unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that reports a useful error (used by derived
    /// `Deserialize` impls).
    pub fn field(&self, key: &str) -> Result<&Value, DeError> {
        self.get(key)
            .ok_or_else(|| DeError::custom(format!("missing field `{key}`")))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible **to** a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types convertible **from** a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_f64().ok_or_else(|| DeError::expected("number", v))?;
                if n.fract() != 0.0 {
                    return Err(DeError::custom(format!(
                        "expected integer, got {n}"
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Non-finite floats are encoded as strings ("inf"/"-inf"/"nan") since JSON
/// has no literal for them; both float impls accept those back.
macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() {
                    Value::Number(x)
                } else if x.is_nan() {
                    Value::String("nan".to_string())
                } else if x > 0.0 {
                    Value::String("inf".to_string())
                } else {
                    Value::String("-inf".to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    Value::String(s) => match s.as_str() {
                        "nan" => Ok(<$t>::NAN),
                        "inf" => Ok(<$t>::INFINITY),
                        "-inf" => Ok(<$t>::NEG_INFINITY),
                        _ => Err(DeError::custom(format!("bad float string {s:?}"))),
                    },
                    _ => Err(DeError::expected("number", v)),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                let want = [$($n),+].len();
                if a.len() != want {
                    return Err(DeError::custom(format!(
                        "expected tuple of {want}, got {}", a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )+};
}
tuple_impls!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

// `From` conversions power the `json!` macro in the serde_json shim; they
// must live here with `Value` because of the orphan rule.
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

macro_rules! from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Number(n as f64)
            }
        }
    )*};
}
from_num!(f64, f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Compatibility alias modules so `serde::de::…` / `serde::ser::…` paths
/// resolve if future code uses them.
pub mod de {
    pub use crate::{DeError, Deserialize};
}

pub mod ser {
    pub use crate::Serialize;
}
