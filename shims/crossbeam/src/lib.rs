//! Offline subset of `crossbeam` (see `shims/README.md`): just
//! `channel::{unbounded, Sender, Receiver}`, backed by `std::sync::mpsc`.
//!
//! `std::sync::mpsc::Receiver` is single-consumer, which matches how the
//! simulated cluster uses its channel matrix (each `(src, dst)` receiver is
//! owned by exactly one rank thread).

pub mod channel {
    use std::sync::mpsc;

    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    // mpsc::Sender is Clone but its derive-free impl requires a manual
    // forwarding impl here so `Sender<T>: Clone` without `T: Clone`.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn roundtrip_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            tx2.send(41).unwrap();
            tx.send(1).unwrap();
        });
        assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 42);
    }
}
