//! Offline subset of `proptest` (see `shims/README.md`).
//!
//! A [`Strategy`] here is simply a deterministic generator: given a seeded
//! [`TestRng`] it produces a value. `proptest!` runs each property for
//! `ProptestConfig::cases` iterations with a per-test seed derived from the
//! test's name, so failures reproduce exactly. There is no shrinking — the
//! failing case's panic message carries the inputs via the assertion text.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator state (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a test name — the per-test seed.
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic value generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct OneOf<V> {
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one option"
        );
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_strategies!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($t:ident),+)),+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategies!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

pub mod collection {
    use super::Strategy;

    pub struct VecStrategy<S> {
        elem: S,
        len: usize,
    }

    /// Fixed-length `Vec` of draws from `elem` (the workspace only uses
    /// exact sizes).
    pub fn vec<S: Strategy>(elem: S, len: usize) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut super::TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runner configuration: only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among heterogeneous strategies with a common `Value`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-style function running `cases` seeded iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::new($crate::fnv(stringify!($name)));
            for __case in 0..__cfg.cases {
                let ($($pat,)*) = ($($crate::Strategy::generate(&($strat), &mut __rng),)*);
                $body
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::fnv;
    use crate::prelude::*;

    fn parity() -> impl Strategy<Value = bool> {
        (0usize..100).prop_map(|x| x % 2 == 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(
            n in 3usize..17,
            x in -1.5f32..2.5,
            (a, b) in (0usize..4, 10u64..20),
            flag in parity(),
            v in (2usize..5).prop_flat_map(|len| collection::vec(0.0f32..1.0, len)),
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x));
            prop_assert!(a < 4 && (10..20).contains(&b));
            let _ = flag;
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|p| (0.0..1.0).contains(p)));
        }

        #[test]
        fn oneof_picks_each_option(choice in prop_oneof![Just(1usize), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&choice));
        }
    }

    #[test]
    fn properties_are_deterministic() {
        // Same-named test run twice sees the same stream.
        let mut a = TestRng::new(fnv("x"));
        let mut b = TestRng::new(fnv("x"));
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
