//! Offline subset of `proptest` (see `shims/README.md`).
//!
//! A [`Strategy`] here is simply a deterministic generator: given a seeded
//! [`TestRng`] it produces a value. `proptest!` runs each property for
//! `ProptestConfig::cases` iterations (overridable with the
//! `PROPTEST_CASES` environment variable) with a per-case seed derived from
//! the test's name, so failures reproduce exactly.
//!
//! Unlike the original offline stub, this version implements the three
//! runner features the verification harness relies on:
//!
//! * **Tape recording** — every `u64` the generator draws is recorded.
//!   Because all strategies reduce draws modulo their range, a tape fully
//!   determines the generated inputs, and *replaying* a tape reproduces a
//!   case without re-running the original search.
//! * **Shrinking** — on failure the runner minimises the tape in two
//!   alternating passes until a fixpoint: a *record-deletion* pass drops
//!   one generated record wholesale (decrement a count-like entry, drain
//!   the record's fixed-width run of draws; accepted only when the
//!   re-recorded tape gets strictly shorter), so a multi-event fault plan
//!   or churn storm collapses to the single event that matters; then each
//!   surviving entry is binary-searched toward zero while the property
//!   keeps failing. Since integer strategies map smaller raw draws to
//!   values closer to the range start, this lands on a near-minimal
//!   counterexample, Hypothesis-style.
//! * **Regression persistence** — the shrunken tape is appended to
//!   `<crate>/proptest-regressions/<source-file-stem>.txt` as a `cc` line
//!   (one per failure, keyed by the property name). Persisted tapes are
//!   replayed *before* fresh cases on every run, so a committed regression
//!   keeps guarding the fix forever.

use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Deterministic generator state (splitmix64) with draw recording and
/// optional tape replay.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    /// Draws to replay before falling back to the splitmix stream. When a
    /// shrink candidate changes control flow (e.g. a `prop_flat_map` length)
    /// and the body needs *more* draws than the tape holds, the extra draws
    /// come deterministically from `state`.
    replay: Vec<u64>,
    pos: usize,
    /// Every value this rng handed out, in order.
    tape: Vec<u64>,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_f42d_4c95_7f2d,
            replay: Vec::new(),
            pos: 0,
            tape: Vec::new(),
        }
    }

    /// A rng that replays `tape` first, then continues from the seed's
    /// splitmix stream.
    pub fn replaying(seed: u64, tape: Vec<u64>) -> Self {
        TestRng {
            state: seed ^ 0x5851_f42d_4c95_7f2d,
            replay: tape,
            pos: 0,
            tape: Vec::new(),
        }
    }

    fn splitmix(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_u64(&mut self) -> u64 {
        // The splitmix stream always advances so that a replayed prefix and
        // a recorded run consume state identically — a tape plus a seed is a
        // complete description of the case.
        let fresh = self.splitmix();
        let v = if self.pos < self.replay.len() {
            self.replay[self.pos]
        } else {
            fresh
        };
        self.pos += 1;
        self.tape.push(v);
        v
    }

    /// The draws made so far (the case's tape).
    pub fn tape(&self) -> &[u64] {
        &self.tape
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a test name — the per-test seed.
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic value generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct OneOf<V> {
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one option"
        );
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_strategies!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($t:ident),+)),+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategies!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

pub mod collection {
    use super::Strategy;

    pub struct VecStrategy<S> {
        elem: S,
        len: usize,
    }

    /// Fixed-length `Vec` of draws from `elem` (the workspace only uses
    /// exact sizes).
    pub fn vec<S: Strategy>(elem: S, len: usize) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut super::TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runner configuration: only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Runner: regression replay, fresh cases, shrinking, persistence.
// ---------------------------------------------------------------------------

/// Effective case count: `PROPTEST_CASES` overrides the config (the CI
/// `verify` job's scheduled extended run bumps it without touching code).
fn effective_cases(cfg: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(cfg.cases)
}

/// Per-case seed: the name seed plus a golden-ratio stride per case index,
/// so each case records an independent, reproducible tape.
fn case_seed(name: &str, case: u32) -> u64 {
    fnv(name).wrapping_add((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// `<manifest_dir>/proptest-regressions/<source-file-stem>.txt`, the
/// persistence file shared by every property in one source file.
fn regressions_path(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

fn format_cc(name: &str, seed: u64, tape: &[u64]) -> String {
    let vals: Vec<String> = tape.iter().map(|v| format!("{v:x}")).collect();
    format!("cc {name} {seed:x} {}", vals.join(","))
}

/// Parse persisted `cc <name> <seed-hex> <v,v,v>` lines for one property.
fn load_regressions(path: &Path, name: &str) -> Vec<(u64, Vec<u64>)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let mut fields = line.split_whitespace();
        if fields.next() != Some("cc") || fields.next() != Some(name) {
            continue;
        }
        let Some(seed) = fields.next().and_then(|s| u64::from_str_radix(s, 16).ok()) else {
            continue;
        };
        let tape: Vec<u64> = fields
            .next()
            .map(|csv| {
                csv.split(',')
                    .filter_map(|v| u64::from_str_radix(v, 16).ok())
                    .collect()
            })
            .unwrap_or_default();
        out.push((seed, tape));
    }
    out
}

fn persist_regression(path: &Path, line: &str) {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    if existing.lines().any(|l| l == line) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut text = existing;
    if text.is_empty() {
        text.push_str(
            "# Seeds for failure cases found by the offline proptest shim. It is\n\
             # recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases.\n\
             # Format: cc <property-name> <seed-hex> <tape-hex,comma-separated>\n",
        );
    }
    text.push_str(line);
    text.push('\n');
    let _ = std::fs::write(path, text);
}

/// One execution of the property body against a (seed, tape) pair. Returns
/// the recorded tape and the panic message if the body failed.
fn execute(
    body: &mut dyn FnMut(&mut TestRng),
    seed: u64,
    tape: Vec<u64>,
) -> (Vec<u64>, Option<String>) {
    let mut rng = TestRng::replaying(seed, tape);
    let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
    let failure = outcome.err().map(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".into())
    });
    (rng.tape, failure)
}

/// Minimise a failing tape. Two passes alternate to a fixpoint: a
/// delta-debugging deletion pass drops whole runs of entries (a generator
/// that draws N fixed-width event records — a fault plan, a churn storm —
/// loses the irrelevant events wholesale once the chunk size matches the
/// record width), then a per-entry pass binary-searches the smallest raw
/// draw that still fails (strategies map draws to values modulo their
/// range, so smaller draws mean values nearer the range start). Bounded so
/// a pathological property cannot spin forever.
fn shrink(body: &mut dyn FnMut(&mut TestRng), seed: u64, tape: Vec<u64>) -> (Vec<u64>, String) {
    const MAX_RUNS: usize = 4096;
    let mut runs = 0usize;
    let mut best = tape; // invariant: replaying `best` fails
    let mut message = String::new();
    let mut changed = true;
    while changed && runs < MAX_RUNS {
        changed = false;
        // Record-deletion pass: drop one generated record wholesale by
        // decrementing an early (count-like) entry and draining a small
        // run of draws in the same candidate. A candidate is accepted
        // only when it still fails AND the re-recorded tape is strictly
        // shorter — strict shortening is what filters out decrements of
        // entries that were not actually lengths (the body would just
        // refill the drained draws from the fresh stream, leaving the
        // tape the same size) and guarantees the pass terminates.
        let mut improved = true;
        'deletion: while improved && runs < MAX_RUNS {
            improved = false;
            // Later records first, so surviving earlier draws keep their
            // alignment with the strategies that consume them.
            for i in (1..best.len()).rev() {
                for w in [1usize, 2, 3, 4] {
                    if i + w > best.len() {
                        continue;
                    }
                    for e in 0..i.min(4) {
                        if best[e] == 0 {
                            continue;
                        }
                        runs += 1;
                        if runs >= MAX_RUNS {
                            break 'deletion;
                        }
                        let mut t = best.clone();
                        t[e] -= 1;
                        t.drain(i..i + w);
                        let (recorded, failure) = execute(body, seed, t);
                        if recorded.len() < best.len() {
                            if let Some(msg) = failure {
                                message = msg;
                                best = recorded;
                                changed = true;
                                improved = true;
                                continue 'deletion;
                            }
                        }
                    }
                    // Plain drain, for bodies whose draw count follows
                    // the data itself rather than an up-front length.
                    runs += 1;
                    if runs >= MAX_RUNS {
                        break 'deletion;
                    }
                    let mut t = best.clone();
                    t.drain(i..i + w);
                    let (recorded, failure) = execute(body, seed, t);
                    if recorded.len() < best.len() {
                        if let Some(msg) = failure {
                            message = msg;
                            best = recorded;
                            changed = true;
                            improved = true;
                            continue 'deletion;
                        }
                    }
                }
            }
        }
        // Per-entry minimisation pass.
        let mut i = 0usize;
        while i < best.len() && runs < MAX_RUNS {
            // Smallest failing value for entry i in [lo, hi]; `hi` fails.
            let mut lo = 0u64;
            let mut hi = best[i];
            while lo < hi && runs < MAX_RUNS {
                let mid = lo + (hi - lo) / 2;
                runs += 1;
                let mut t = best.clone();
                t[i] = mid;
                let (recorded, failure) = execute(body, seed, t);
                if let Some(msg) = failure {
                    message = msg;
                    hi = mid;
                    // Keep the recorded tape verbatim: lowering one entry
                    // may change how many draws the body makes afterwards.
                    best = recorded;
                    changed = true;
                    if i >= best.len() {
                        break;
                    }
                } else {
                    lo = mid + 1;
                }
            }
            i += 1;
        }
    }
    if message.is_empty() {
        // Nothing shrank (e.g. an all-zero tape): reproduce once for the
        // assertion message.
        let (_, failure) = execute(body, seed, best.clone());
        message = failure.unwrap_or_else(|| "property failed".into());
    }
    (best, message)
}

/// Drive one property: replay persisted regressions, then run fresh seeded
/// cases, shrinking and persisting any new failure. Called by `proptest!`.
pub fn run_property(
    manifest_dir: &str,
    source_file: &str,
    name: &str,
    cfg: &ProptestConfig,
    body: &mut dyn FnMut(&mut TestRng),
) {
    let path = regressions_path(manifest_dir, source_file);
    // 1. Persisted regressions first — a committed counterexample guards
    //    its fix on every run.
    for (seed, tape) in load_regressions(&path, name) {
        let (recorded, failure) = execute(body, seed, tape);
        if let Some(msg) = failure {
            panic!(
                "{name}: persisted regression failed again\n  {}\n  assertion: {msg}",
                format_cc(name, seed, &recorded)
            );
        }
    }
    // 2. Fresh cases.
    let cases = effective_cases(cfg);
    for case in 0..cases {
        let seed = case_seed(name, case);
        let (tape, failure) = execute(body, seed, Vec::new());
        if let Some(first_msg) = failure {
            let (min_tape, min_msg) = shrink(body, seed, tape);
            let cc = format_cc(name, seed, &min_tape);
            persist_regression(&path, &cc);
            panic!(
                "{name}: case {case}/{cases} failed (minimal counterexample \
                 persisted to {}).\n  {cc}\n  original assertion: {first_msg}\n  \
                 shrunken assertion: {min_msg}",
                path.display()
            );
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among heterogeneous strategies with a common `Value`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-style function running `cases` seeded iterations
/// with shrinking and regression persistence.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::run_property(
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                &__cfg,
                &mut |__rng: &mut $crate::TestRng| {
                    let ($($pat,)*) = ($($crate::Strategy::generate(&($strat), __rng),)*);
                    $body
                },
            );
        }
    )*};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::fnv;
    use crate::prelude::*;

    fn parity() -> impl Strategy<Value = bool> {
        (0usize..100).prop_map(|x| x % 2 == 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(
            n in 3usize..17,
            x in -1.5f32..2.5,
            (a, b) in (0usize..4, 10u64..20),
            flag in parity(),
            v in (2usize..5).prop_flat_map(|len| collection::vec(0.0f32..1.0, len)),
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x));
            prop_assert!(a < 4 && (10..20).contains(&b));
            let _ = flag;
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|p| (0.0..1.0).contains(p)));
        }

        #[test]
        fn oneof_picks_each_option(choice in prop_oneof![Just(1usize), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&choice));
        }
    }

    #[test]
    fn properties_are_deterministic() {
        // Same-named test run twice sees the same stream.
        let mut a = TestRng::new(fnv("x"));
        let mut b = TestRng::new(fnv("x"));
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn replay_reproduces_a_recorded_tape() {
        let mut rec = TestRng::new(7);
        let drawn: Vec<u64> = (0..8).map(|_| rec.next_u64()).collect();
        let tape = rec.tape().to_vec();
        let mut rep = TestRng::replaying(7, tape);
        let replayed: Vec<u64> = (0..8).map(|_| rep.next_u64()).collect();
        assert_eq!(drawn, replayed);
        // Draws past the tape fall back to the seed's stream.
        let mut rep2 = TestRng::replaying(7, rec.tape()[..4].to_vec());
        let head: Vec<u64> = (0..8).map(|_| rep2.next_u64()).collect();
        assert_eq!(&head[..4], &drawn[..4]);
        assert_eq!(&head[4..], &drawn[4..], "fallback must continue the stream");
    }

    #[test]
    fn shrinking_minimises_a_failing_draw() {
        // Property: n < 10. Fails for n >= 10; minimal counterexample is
        // the raw draw whose value modulo 1000 is exactly 10.
        let mut body = |rng: &mut TestRng| {
            let n = crate::Strategy::generate(&(0usize..1000), rng);
            assert!(n < 10, "n = {n}");
        };
        // Find a failing seed first.
        let mut seed = 0u64;
        let mut tape = Vec::new();
        for s in 0..100 {
            let (t, failure) = crate::execute(&mut body, s, Vec::new());
            if failure.is_some() {
                seed = s;
                tape = t;
                break;
            }
        }
        assert!(!tape.is_empty(), "expected some failing seed");
        let (min_tape, msg) = crate::shrink(&mut body, seed, tape);
        assert_eq!(min_tape.len(), 1);
        assert_eq!(min_tape[0] % 1000, 10, "shrinks to the boundary: {msg}");
    }

    #[test]
    fn shrinking_reduces_an_event_storm_to_the_single_culprit() {
        // A fault-plan-shaped generator: a drawn number of fixed-width
        // (step, rank, leave?) event records. The property only fails when
        // a Leave of rank 2 is scheduled, so the minimal counterexample
        // must name exactly that one event — the deletion pass excises the
        // irrelevant records, the binary-search pass drops the count.
        let decode = |rng: &mut TestRng| -> Vec<(usize, usize, bool)> {
            let n = crate::Strategy::generate(&(0usize..8), rng);
            (0..n)
                .map(|_| {
                    let step = crate::Strategy::generate(&(1usize..10), rng);
                    let rank = crate::Strategy::generate(&(0usize..4), rng);
                    let leave = crate::Strategy::generate(&(0usize..2), rng) == 0;
                    (step, rank, leave)
                })
                .collect()
        };
        let mut body = |rng: &mut TestRng| {
            let events = decode(rng);
            assert!(
                !events.iter().any(|&(_, r, leave)| leave && r == 2),
                "events = {events:?}"
            );
        };
        // Find a failing seed whose storm has several events.
        let mut found = None;
        for s in 0..500u64 {
            let (t, failure) = crate::execute(&mut body, s, Vec::new());
            if failure.is_some() && t.len() > 7 {
                found = Some((s, t));
                break;
            }
        }
        let (seed, tape) = found.expect("expected a failing multi-event seed");
        let (min_tape, msg) = crate::shrink(&mut body, seed, tape);
        // Replay the minimal tape to see the counterexample it describes.
        let mut rng = TestRng::replaying(seed, min_tape);
        let events = decode(&mut rng);
        assert_eq!(
            events.len(),
            1,
            "the minimal storm names one event: {events:?} ({msg})"
        );
        let (_, rank, leave) = events[0];
        assert!(leave && rank == 2, "and it is the culprit: {events:?}");
    }

    #[test]
    fn cases_env_override_is_parsed() {
        // Not set in the test environment unless CI exports it; both
        // branches are fine, the parse must not panic.
        let cfg = ProptestConfig::with_cases(5);
        let n = crate::effective_cases(&cfg);
        assert!(n >= 1);
    }

    #[test]
    fn regression_lines_roundtrip() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-{}", std::process::id()));
        let path = dir.join("suite.txt");
        let line = crate::format_cc("my_prop", 0xabc, &[1, 2, 0xff]);
        crate::persist_regression(&path, &line);
        crate::persist_regression(&path, &line); // dedupes
        let loaded = crate::load_regressions(&path, "my_prop");
        assert_eq!(loaded, vec![(0xabc, vec![1, 2, 0xff])]);
        assert!(crate::load_regressions(&path, "other").is_empty());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("cc my_prop").count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
