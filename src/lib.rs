//! # burstengine
//!
//! A from-scratch Rust reproduction of **BurstEngine** (SC 2025): an
//! efficient distributed framework for training Transformers on extremely
//! long sequences of over 1M tokens.
//!
//! This meta-crate re-exports the whole workspace:
//!
//! * [`tensor`] — dense `f32` matrices with blocked, rayon-parallel
//!   products;
//! * [`comm`] — the deterministic cluster simulator (rank threads, real
//!   payloads, LogGP-style virtual clock with NVLink/InfiniBand modeling);
//! * [`kernels`] — flash-style attention fwd/bwd, sparse masks, the fused
//!   LM head + loss (Algorithm 3);
//! * [`dattn`] — RingAttention (Alg. 1), BurstAttention (Alg. 2),
//!   topology-aware double rings, Ulysses, USP, and the zigzag/striped
//!   workload-balance layouts;
//! * [`model`] — the LLaMA-style training substrate with hand-written
//!   backward passes, gradient-checkpointing strategies (incl. the paper's
//!   sequence-level selective scheme), FSDP and the training engine;
//! * [`perf`] — analytical performance/memory models that regenerate the
//!   paper's tables and figures at 7B/14B × 1M–4M token scale.
//!
//! ## Quickstart
//!
//! ```
//! use burstengine::prelude::*;
//!
//! // Distributed BurstAttention on a simulated 2-node × 2-GPU cluster,
//! // numerically equivalent to single-device flash attention.
//! let n = 32;
//! let d = 8;
//! let q = randn_mat(n, d, 0.7, 1);
//! let k = randn_mat(n, d, 0.7, 2);
//! let v = randn_mat(n, d, 0.7, 3);
//! let grad_o = randn_mat(n, d, 0.8, 4);
//!
//! let world = World::new(Topology::a800(2, 2));
//! let outs = world.run_results(|comm| {
//!     let idx = Layout::Zigzag.indices(n, 4, comm.rank());
//!     run_attention(
//!         Algo::BurstTopo,
//!         comm,
//!         &q.gather_rows(&idx),
//!         &k.gather_rows(&idx),
//!         &v.gather_rows(&idx),
//!         &grad_o.gather_rows(&idx),
//!         1.0 / (d as f32).sqrt(),
//!         &AttnMask::Causal,
//!         Layout::Zigzag,
//!         n,
//!         &CostModel::a800(),
//!     )
//! });
//! assert_eq!(outs.len(), 4);
//! ```

pub use burst_comm as comm;
pub use burst_dattn as dattn;
pub use burst_kernels as kernels;
pub use burst_model as model;
pub use burst_perf as perf;
pub use burst_tensor as tensor;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use burst_comm::{
        agree_on_eviction, agree_on_join, agree_on_leave, ChurnEvent, ChurnKind, CommError,
        CommStats, Communicator, CrashAt, DetectorCfg, FailureDetector, FaultPlan, Link, LossKind,
        Membership, RetryPolicy, Topology, TransportPolicy, World,
    };
    pub use burst_dattn::{
        run_attention, try_elastic_attention, try_elastic_attention_opts, try_run_attention, Algo,
        AttnFailure, AttnShard, CostModel, DattnError, DoubleRingSpec, ElasticAttnOut, ElasticOpts,
        Layout, OverlapMode, Phase, Ring,
    };
    pub use burst_kernels::{
        flash_backward, flash_forward, fused_lm_loss, AttnMask, BlockSparseMask, OnlineState,
    };
    pub use burst_model::engine::{train, Backend, EngineConfig};
    pub use burst_model::{
        load_sharded, run_span_elastic, save_sharded, train_with_recovery, AdamCfg, ElasticCfg,
        ElasticOutcome, LocalExec, Model, ModelConfig, MultiHeadAttention, RecoveryCfg,
        RecoveryReport, ShardManifest, Strategy, TrainCheckpoint,
    };
    pub use burst_perf::endtoend::{evaluate, BurstOpts, Method};
    pub use burst_perf::machine::{Cluster, PaperModel};
    pub use burst_tensor::{randn_mat, Mat, SeedStream};
}
