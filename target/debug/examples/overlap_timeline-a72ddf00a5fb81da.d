/root/repo/target/debug/examples/overlap_timeline-a72ddf00a5fb81da.d: examples/overlap_timeline.rs

/root/repo/target/debug/examples/overlap_timeline-a72ddf00a5fb81da: examples/overlap_timeline.rs

examples/overlap_timeline.rs:
