/root/repo/target/debug/examples/method_faceoff-c4dbb038168e7560.d: examples/method_faceoff.rs

/root/repo/target/debug/examples/method_faceoff-c4dbb038168e7560: examples/method_faceoff.rs

examples/method_faceoff.rs:
