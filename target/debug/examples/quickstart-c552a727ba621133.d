/root/repo/target/debug/examples/quickstart-c552a727ba621133.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c552a727ba621133: examples/quickstart.rs

examples/quickstart.rs:
