/root/repo/target/debug/examples/train_long_context-40df13424d94c8a4.d: examples/train_long_context.rs

/root/repo/target/debug/examples/train_long_context-40df13424d94c8a4: examples/train_long_context.rs

examples/train_long_context.rs:
