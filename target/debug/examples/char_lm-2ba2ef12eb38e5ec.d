/root/repo/target/debug/examples/char_lm-2ba2ef12eb38e5ec.d: examples/char_lm.rs

/root/repo/target/debug/examples/char_lm-2ba2ef12eb38e5ec: examples/char_lm.rs

examples/char_lm.rs:
