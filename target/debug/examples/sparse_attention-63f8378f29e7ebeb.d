/root/repo/target/debug/examples/sparse_attention-63f8378f29e7ebeb.d: examples/sparse_attention.rs

/root/repo/target/debug/examples/sparse_attention-63f8378f29e7ebeb: examples/sparse_attention.rs

examples/sparse_attention.rs:
