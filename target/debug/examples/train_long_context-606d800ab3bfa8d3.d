/root/repo/target/debug/examples/train_long_context-606d800ab3bfa8d3.d: examples/train_long_context.rs

/root/repo/target/debug/examples/train_long_context-606d800ab3bfa8d3: examples/train_long_context.rs

examples/train_long_context.rs:
