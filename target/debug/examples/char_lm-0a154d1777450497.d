/root/repo/target/debug/examples/char_lm-0a154d1777450497.d: examples/char_lm.rs

/root/repo/target/debug/examples/char_lm-0a154d1777450497: examples/char_lm.rs

examples/char_lm.rs:
