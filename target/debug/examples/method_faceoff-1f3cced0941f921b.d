/root/repo/target/debug/examples/method_faceoff-1f3cced0941f921b.d: examples/method_faceoff.rs

/root/repo/target/debug/examples/method_faceoff-1f3cced0941f921b: examples/method_faceoff.rs

examples/method_faceoff.rs:
