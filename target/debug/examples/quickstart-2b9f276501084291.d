/root/repo/target/debug/examples/quickstart-2b9f276501084291.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2b9f276501084291: examples/quickstart.rs

examples/quickstart.rs:
