/root/repo/target/debug/examples/sparse_attention-5af217e8b56dea64.d: examples/sparse_attention.rs

/root/repo/target/debug/examples/sparse_attention-5af217e8b56dea64: examples/sparse_attention.rs

examples/sparse_attention.rs:
