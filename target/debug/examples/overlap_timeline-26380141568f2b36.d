/root/repo/target/debug/examples/overlap_timeline-26380141568f2b36.d: examples/overlap_timeline.rs

/root/repo/target/debug/examples/overlap_timeline-26380141568f2b36: examples/overlap_timeline.rs

examples/overlap_timeline.rs:
