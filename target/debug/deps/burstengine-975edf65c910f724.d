/root/repo/target/debug/deps/burstengine-975edf65c910f724.d: src/lib.rs

/root/repo/target/debug/deps/burstengine-975edf65c910f724: src/lib.rs

src/lib.rs:
