/root/repo/target/debug/deps/burst_dattn-722aa94bca02ae6c.d: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

/root/repo/target/debug/deps/libburst_dattn-722aa94bca02ae6c.rlib: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

/root/repo/target/debug/deps/libburst_dattn-722aa94bca02ae6c.rmeta: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

crates/dattn/src/lib.rs:
crates/dattn/src/cost.rs:
crates/dattn/src/double_ring.rs:
crates/dattn/src/layout.rs:
crates/dattn/src/ring.rs:
crates/dattn/src/ulysses.rs:
crates/dattn/src/usp.rs:
