/root/repo/target/debug/deps/burst_comm-575683da23a4b6be.d: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

/root/repo/target/debug/deps/burst_comm-575683da23a4b6be: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

crates/comm/src/lib.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/topology.rs:
crates/comm/src/trace.rs:
crates/comm/src/world.rs:
