/root/repo/target/debug/deps/burst_perf-5c14444b4f09459c.d: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

/root/repo/target/debug/deps/burst_perf-5c14444b4f09459c: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

crates/perf/src/lib.rs:
crates/perf/src/commtime.rs:
crates/perf/src/endtoend.rs:
crates/perf/src/flops.rs:
crates/perf/src/machine.rs:
crates/perf/src/memory.rs:
