/root/repo/target/debug/deps/rayon-634468494c192fd5.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-634468494c192fd5.rlib: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-634468494c192fd5.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
