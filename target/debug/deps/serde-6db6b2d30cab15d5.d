/root/repo/target/debug/deps/serde-6db6b2d30cab15d5.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6db6b2d30cab15d5.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6db6b2d30cab15d5.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
