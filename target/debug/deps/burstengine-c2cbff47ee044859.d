/root/repo/target/debug/deps/burstengine-c2cbff47ee044859.d: src/lib.rs

/root/repo/target/debug/deps/libburstengine-c2cbff47ee044859.rlib: src/lib.rs

/root/repo/target/debug/deps/libburstengine-c2cbff47ee044859.rmeta: src/lib.rs

src/lib.rs:
