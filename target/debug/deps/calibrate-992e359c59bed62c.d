/root/repo/target/debug/deps/calibrate-992e359c59bed62c.d: crates/perf/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-992e359c59bed62c: crates/perf/src/bin/calibrate.rs

crates/perf/src/bin/calibrate.rs:
