/root/repo/target/debug/deps/serde-b7a831bdcefa795a.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b7a831bdcefa795a.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b7a831bdcefa795a.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
