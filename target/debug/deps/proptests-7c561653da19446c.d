/root/repo/target/debug/deps/proptests-7c561653da19446c.d: crates/comm/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7c561653da19446c: crates/comm/tests/proptests.rs

crates/comm/tests/proptests.rs:
