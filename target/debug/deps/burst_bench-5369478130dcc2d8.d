/root/repo/target/debug/deps/burst_bench-5369478130dcc2d8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libburst_bench-5369478130dcc2d8.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libburst_bench-5369478130dcc2d8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
