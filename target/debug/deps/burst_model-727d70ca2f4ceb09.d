/root/repo/target/debug/deps/burst_model-727d70ca2f4ceb09.d: crates/model/src/lib.rs crates/model/src/attention.rs crates/model/src/block.rs crates/model/src/checkpoint.rs crates/model/src/checkpoint_io.rs crates/model/src/embedding.rs crates/model/src/engine.rs crates/model/src/ffn.rs crates/model/src/fsdp.rs crates/model/src/linear.rs crates/model/src/memory.rs crates/model/src/model.rs crates/model/src/norm.rs crates/model/src/param.rs crates/model/src/rope.rs

/root/repo/target/debug/deps/libburst_model-727d70ca2f4ceb09.rlib: crates/model/src/lib.rs crates/model/src/attention.rs crates/model/src/block.rs crates/model/src/checkpoint.rs crates/model/src/checkpoint_io.rs crates/model/src/embedding.rs crates/model/src/engine.rs crates/model/src/ffn.rs crates/model/src/fsdp.rs crates/model/src/linear.rs crates/model/src/memory.rs crates/model/src/model.rs crates/model/src/norm.rs crates/model/src/param.rs crates/model/src/rope.rs

/root/repo/target/debug/deps/libburst_model-727d70ca2f4ceb09.rmeta: crates/model/src/lib.rs crates/model/src/attention.rs crates/model/src/block.rs crates/model/src/checkpoint.rs crates/model/src/checkpoint_io.rs crates/model/src/embedding.rs crates/model/src/engine.rs crates/model/src/ffn.rs crates/model/src/fsdp.rs crates/model/src/linear.rs crates/model/src/memory.rs crates/model/src/model.rs crates/model/src/norm.rs crates/model/src/param.rs crates/model/src/rope.rs

crates/model/src/lib.rs:
crates/model/src/attention.rs:
crates/model/src/block.rs:
crates/model/src/checkpoint.rs:
crates/model/src/checkpoint_io.rs:
crates/model/src/embedding.rs:
crates/model/src/engine.rs:
crates/model/src/ffn.rs:
crates/model/src/fsdp.rs:
crates/model/src/linear.rs:
crates/model/src/memory.rs:
crates/model/src/model.rs:
crates/model/src/norm.rs:
crates/model/src/param.rs:
crates/model/src/rope.rs:
