/root/repo/target/debug/deps/burst_tensor-f0c44f92ce236265.d: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs

/root/repo/target/debug/deps/libburst_tensor-f0c44f92ce236265.rlib: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs

/root/repo/target/debug/deps/libburst_tensor-f0c44f92ce236265.rmeta: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs

crates/tensor/src/lib.rs:
crates/tensor/src/bf16.rs:
crates/tensor/src/mat.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/scratch.rs:
crates/tensor/src/testutil.rs:
