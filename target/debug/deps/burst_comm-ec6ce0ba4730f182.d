/root/repo/target/debug/deps/burst_comm-ec6ce0ba4730f182.d: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

/root/repo/target/debug/deps/libburst_comm-ec6ce0ba4730f182.rlib: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

/root/repo/target/debug/deps/libburst_comm-ec6ce0ba4730f182.rmeta: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

crates/comm/src/lib.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/topology.rs:
crates/comm/src/trace.rs:
crates/comm/src/world.rs:
