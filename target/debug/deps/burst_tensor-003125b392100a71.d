/root/repo/target/debug/deps/burst_tensor-003125b392100a71.d: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/testutil.rs

/root/repo/target/debug/deps/burst_tensor-003125b392100a71: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/testutil.rs

crates/tensor/src/lib.rs:
crates/tensor/src/bf16.rs:
crates/tensor/src/mat.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/testutil.rs:
