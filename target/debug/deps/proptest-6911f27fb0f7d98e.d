/root/repo/target/debug/deps/proptest-6911f27fb0f7d98e.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6911f27fb0f7d98e.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6911f27fb0f7d98e.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
