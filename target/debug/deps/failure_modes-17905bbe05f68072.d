/root/repo/target/debug/deps/failure_modes-17905bbe05f68072.d: tests/failure_modes.rs

/root/repo/target/debug/deps/failure_modes-17905bbe05f68072: tests/failure_modes.rs

tests/failure_modes.rs:
