/root/repo/target/debug/deps/bf16_training-a669432f29fe1c6b.d: crates/model/tests/bf16_training.rs

/root/repo/target/debug/deps/bf16_training-a669432f29fe1c6b: crates/model/tests/bf16_training.rs

crates/model/tests/bf16_training.rs:
