/root/repo/target/debug/deps/tables-8f45266a976507ef.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-8f45266a976507ef: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
