/root/repo/target/debug/deps/burst_bench-e81888e531f405f8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/burst_bench-e81888e531f405f8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
