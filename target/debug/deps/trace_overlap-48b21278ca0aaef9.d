/root/repo/target/debug/deps/trace_overlap-48b21278ca0aaef9.d: crates/dattn/tests/trace_overlap.rs

/root/repo/target/debug/deps/trace_overlap-48b21278ca0aaef9: crates/dattn/tests/trace_overlap.rs

crates/dattn/tests/trace_overlap.rs:
