/root/repo/target/debug/deps/burst_tensor-9e5221a5cf69f91d.d: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/testutil.rs

/root/repo/target/debug/deps/libburst_tensor-9e5221a5cf69f91d.rlib: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/testutil.rs

/root/repo/target/debug/deps/libburst_tensor-9e5221a5cf69f91d.rmeta: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/testutil.rs

crates/tensor/src/lib.rs:
crates/tensor/src/bf16.rs:
crates/tensor/src/mat.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/testutil.rs:
