/root/repo/target/debug/deps/ulysses_usp-dda91d49423df7c1.d: crates/dattn/tests/ulysses_usp.rs

/root/repo/target/debug/deps/ulysses_usp-dda91d49423df7c1: crates/dattn/tests/ulysses_usp.rs

crates/dattn/tests/ulysses_usp.rs:
