/root/repo/target/debug/deps/burst_comm-68031837b1437551.d: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

/root/repo/target/debug/deps/libburst_comm-68031837b1437551.rlib: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

/root/repo/target/debug/deps/libburst_comm-68031837b1437551.rmeta: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

crates/comm/src/lib.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/topology.rs:
crates/comm/src/trace.rs:
crates/comm/src/world.rs:
