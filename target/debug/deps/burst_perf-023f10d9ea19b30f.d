/root/repo/target/debug/deps/burst_perf-023f10d9ea19b30f.d: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

/root/repo/target/debug/deps/libburst_perf-023f10d9ea19b30f.rlib: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

/root/repo/target/debug/deps/libburst_perf-023f10d9ea19b30f.rmeta: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

crates/perf/src/lib.rs:
crates/perf/src/commtime.rs:
crates/perf/src/endtoend.rs:
crates/perf/src/flops.rs:
crates/perf/src/machine.rs:
crates/perf/src/memory.rs:
