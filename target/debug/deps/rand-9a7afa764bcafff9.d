/root/repo/target/debug/deps/rand-9a7afa764bcafff9.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-9a7afa764bcafff9.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-9a7afa764bcafff9.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
