/root/repo/target/debug/deps/comm_costs-a6d736facb193cd9.d: crates/dattn/tests/comm_costs.rs

/root/repo/target/debug/deps/comm_costs-a6d736facb193cd9: crates/dattn/tests/comm_costs.rs

crates/dattn/tests/comm_costs.rs:
