/root/repo/target/debug/deps/full_stack-9dcd17e57ce831be.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-9dcd17e57ce831be: tests/full_stack.rs

tests/full_stack.rs:
