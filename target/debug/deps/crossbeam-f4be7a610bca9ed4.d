/root/repo/target/debug/deps/crossbeam-f4be7a610bca9ed4.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-f4be7a610bca9ed4.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-f4be7a610bca9ed4.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
