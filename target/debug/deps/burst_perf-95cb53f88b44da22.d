/root/repo/target/debug/deps/burst_perf-95cb53f88b44da22.d: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

/root/repo/target/debug/deps/libburst_perf-95cb53f88b44da22.rlib: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

/root/repo/target/debug/deps/libburst_perf-95cb53f88b44da22.rmeta: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

crates/perf/src/lib.rs:
crates/perf/src/commtime.rs:
crates/perf/src/endtoend.rs:
crates/perf/src/flops.rs:
crates/perf/src/machine.rs:
crates/perf/src/memory.rs:
