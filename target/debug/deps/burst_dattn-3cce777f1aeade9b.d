/root/repo/target/debug/deps/burst_dattn-3cce777f1aeade9b.d: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

/root/repo/target/debug/deps/libburst_dattn-3cce777f1aeade9b.rlib: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

/root/repo/target/debug/deps/libburst_dattn-3cce777f1aeade9b.rmeta: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

crates/dattn/src/lib.rs:
crates/dattn/src/cost.rs:
crates/dattn/src/double_ring.rs:
crates/dattn/src/layout.rs:
crates/dattn/src/ring.rs:
crates/dattn/src/ulysses.rs:
crates/dattn/src/usp.rs:
