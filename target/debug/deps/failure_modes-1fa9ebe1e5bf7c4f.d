/root/repo/target/debug/deps/failure_modes-1fa9ebe1e5bf7c4f.d: tests/failure_modes.rs

/root/repo/target/debug/deps/failure_modes-1fa9ebe1e5bf7c4f: tests/failure_modes.rs

tests/failure_modes.rs:
