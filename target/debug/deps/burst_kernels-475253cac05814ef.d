/root/repo/target/debug/deps/burst_kernels-475253cac05814ef.d: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

/root/repo/target/debug/deps/burst_kernels-475253cac05814ef: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

crates/kernels/src/lib.rs:
crates/kernels/src/flash.rs:
crates/kernels/src/lmhead.rs:
crates/kernels/src/mask.rs:
crates/kernels/src/naive.rs:
crates/kernels/src/online.rs:
