/root/repo/target/debug/deps/burstengine-06e3b0eb9e1dac95.d: src/lib.rs

/root/repo/target/debug/deps/burstengine-06e3b0eb9e1dac95: src/lib.rs

src/lib.rs:
