/root/repo/target/debug/deps/distributed_correctness-fc5c4ef41e7c22b7.d: crates/dattn/tests/distributed_correctness.rs

/root/repo/target/debug/deps/distributed_correctness-fc5c4ef41e7c22b7: crates/dattn/tests/distributed_correctness.rs

crates/dattn/tests/distributed_correctness.rs:
