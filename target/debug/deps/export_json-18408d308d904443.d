/root/repo/target/debug/deps/export_json-18408d308d904443.d: crates/bench/src/bin/export_json.rs

/root/repo/target/debug/deps/export_json-18408d308d904443: crates/bench/src/bin/export_json.rs

crates/bench/src/bin/export_json.rs:
