/root/repo/target/debug/deps/proptests-249320d09903b044.d: crates/kernels/tests/proptests.rs

/root/repo/target/debug/deps/proptests-249320d09903b044: crates/kernels/tests/proptests.rs

crates/kernels/tests/proptests.rs:
