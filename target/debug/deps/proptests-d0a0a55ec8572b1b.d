/root/repo/target/debug/deps/proptests-d0a0a55ec8572b1b.d: crates/dattn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d0a0a55ec8572b1b: crates/dattn/tests/proptests.rs

crates/dattn/tests/proptests.rs:
