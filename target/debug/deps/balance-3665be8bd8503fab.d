/root/repo/target/debug/deps/balance-3665be8bd8503fab.d: crates/dattn/tests/balance.rs

/root/repo/target/debug/deps/balance-3665be8bd8503fab: crates/dattn/tests/balance.rs

crates/dattn/tests/balance.rs:
