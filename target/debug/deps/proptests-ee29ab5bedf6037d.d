/root/repo/target/debug/deps/proptests-ee29ab5bedf6037d.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ee29ab5bedf6037d: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
