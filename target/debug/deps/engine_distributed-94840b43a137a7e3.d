/root/repo/target/debug/deps/engine_distributed-94840b43a137a7e3.d: crates/model/tests/engine_distributed.rs

/root/repo/target/debug/deps/engine_distributed-94840b43a137a7e3: crates/model/tests/engine_distributed.rs

crates/model/tests/engine_distributed.rs:
