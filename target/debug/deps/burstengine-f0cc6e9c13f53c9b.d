/root/repo/target/debug/deps/burstengine-f0cc6e9c13f53c9b.d: src/lib.rs

/root/repo/target/debug/deps/libburstengine-f0cc6e9c13f53c9b.rlib: src/lib.rs

/root/repo/target/debug/deps/libburstengine-f0cc6e9c13f53c9b.rmeta: src/lib.rs

src/lib.rs:
