/root/repo/target/debug/deps/burst_kernels-9860db719cf126d5.d: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

/root/repo/target/debug/deps/libburst_kernels-9860db719cf126d5.rlib: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

/root/repo/target/debug/deps/libburst_kernels-9860db719cf126d5.rmeta: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

crates/kernels/src/lib.rs:
crates/kernels/src/flash.rs:
crates/kernels/src/lmhead.rs:
crates/kernels/src/mask.rs:
crates/kernels/src/naive.rs:
crates/kernels/src/online.rs:
