/root/repo/target/debug/deps/full_stack-cf49e971bdc5955b.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-cf49e971bdc5955b: tests/full_stack.rs

tests/full_stack.rs:
