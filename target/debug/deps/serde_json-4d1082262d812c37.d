/root/repo/target/debug/deps/serde_json-4d1082262d812c37.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-4d1082262d812c37.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-4d1082262d812c37.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
