/root/repo/target/debug/deps/serde-3e41f8eb9d7c4399.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-3e41f8eb9d7c4399: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
