/root/repo/target/debug/deps/burst_dattn-932cd29b11be4e5e.d: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

/root/repo/target/debug/deps/burst_dattn-932cd29b11be4e5e: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

crates/dattn/src/lib.rs:
crates/dattn/src/cost.rs:
crates/dattn/src/double_ring.rs:
crates/dattn/src/layout.rs:
crates/dattn/src/ring.rs:
crates/dattn/src/ulysses.rs:
crates/dattn/src/usp.rs:
