/root/repo/target/debug/deps/serde_derive-5e3cc6448c32bac8.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-5e3cc6448c32bac8.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
