/root/repo/target/debug/deps/burst_kernels-71fca54f8131c1d6.d: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

/root/repo/target/debug/deps/libburst_kernels-71fca54f8131c1d6.rlib: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

/root/repo/target/debug/deps/libburst_kernels-71fca54f8131c1d6.rmeta: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

crates/kernels/src/lib.rs:
crates/kernels/src/flash.rs:
crates/kernels/src/lmhead.rs:
crates/kernels/src/mask.rs:
crates/kernels/src/naive.rs:
crates/kernels/src/online.rs:
