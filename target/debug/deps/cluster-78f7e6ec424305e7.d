/root/repo/target/debug/deps/cluster-78f7e6ec424305e7.d: crates/comm/tests/cluster.rs

/root/repo/target/debug/deps/cluster-78f7e6ec424305e7: crates/comm/tests/cluster.rs

crates/comm/tests/cluster.rs:
