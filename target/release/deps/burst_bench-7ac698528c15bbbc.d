/root/repo/target/release/deps/burst_bench-7ac698528c15bbbc.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libburst_bench-7ac698528c15bbbc.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libburst_bench-7ac698528c15bbbc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
