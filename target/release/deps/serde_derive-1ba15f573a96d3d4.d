/root/repo/target/release/deps/serde_derive-1ba15f573a96d3d4.d: shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-1ba15f573a96d3d4.so: shims/serde_derive/src/lib.rs Cargo.toml

shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
