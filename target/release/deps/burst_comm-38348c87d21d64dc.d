/root/repo/target/release/deps/burst_comm-38348c87d21d64dc.d: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

/root/repo/target/release/deps/burst_comm-38348c87d21d64dc: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

crates/comm/src/lib.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/topology.rs:
crates/comm/src/trace.rs:
crates/comm/src/world.rs:
