/root/repo/target/release/deps/serde_derive-7dbac6bba8b89aef.d: shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-7dbac6bba8b89aef.rmeta: shims/serde_derive/src/lib.rs Cargo.toml

shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
