/root/repo/target/release/deps/burstengine-9340a209837256d1.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libburstengine-9340a209837256d1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
