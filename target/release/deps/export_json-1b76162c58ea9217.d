/root/repo/target/release/deps/export_json-1b76162c58ea9217.d: crates/bench/src/bin/export_json.rs

/root/repo/target/release/deps/export_json-1b76162c58ea9217: crates/bench/src/bin/export_json.rs

crates/bench/src/bin/export_json.rs:
