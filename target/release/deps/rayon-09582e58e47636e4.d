/root/repo/target/release/deps/rayon-09582e58e47636e4.d: shims/rayon/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librayon-09582e58e47636e4.rmeta: shims/rayon/src/lib.rs Cargo.toml

shims/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
