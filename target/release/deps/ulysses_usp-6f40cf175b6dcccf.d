/root/repo/target/release/deps/ulysses_usp-6f40cf175b6dcccf.d: crates/dattn/tests/ulysses_usp.rs

/root/repo/target/release/deps/ulysses_usp-6f40cf175b6dcccf: crates/dattn/tests/ulysses_usp.rs

crates/dattn/tests/ulysses_usp.rs:
