/root/repo/target/release/deps/rand-8e42a458ab9ab8be.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-8e42a458ab9ab8be.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-8e42a458ab9ab8be.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
