/root/repo/target/release/deps/rayon-8cfcdf5e2d9c02d3.d: shims/rayon/src/lib.rs

/root/repo/target/release/deps/rayon-8cfcdf5e2d9c02d3: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
