/root/repo/target/release/deps/tables-00dad4ea2c595df2.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-00dad4ea2c595df2: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
