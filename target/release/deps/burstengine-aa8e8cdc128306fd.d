/root/repo/target/release/deps/burstengine-aa8e8cdc128306fd.d: src/lib.rs

/root/repo/target/release/deps/burstengine-aa8e8cdc128306fd: src/lib.rs

src/lib.rs:
