/root/repo/target/release/deps/burst_kernels-97089631d9cacf30.d: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

/root/repo/target/release/deps/burst_kernels-97089631d9cacf30: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

crates/kernels/src/lib.rs:
crates/kernels/src/flash.rs:
crates/kernels/src/lmhead.rs:
crates/kernels/src/mask.rs:
crates/kernels/src/naive.rs:
crates/kernels/src/online.rs:
