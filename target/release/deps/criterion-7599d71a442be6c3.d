/root/repo/target/release/deps/criterion-7599d71a442be6c3.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-7599d71a442be6c3.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
