/root/repo/target/release/deps/burst_dattn-038792c8bfad1755.d: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

/root/repo/target/release/deps/burst_dattn-038792c8bfad1755: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

crates/dattn/src/lib.rs:
crates/dattn/src/cost.rs:
crates/dattn/src/double_ring.rs:
crates/dattn/src/layout.rs:
crates/dattn/src/ring.rs:
crates/dattn/src/ulysses.rs:
crates/dattn/src/usp.rs:
