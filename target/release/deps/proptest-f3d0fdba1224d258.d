/root/repo/target/release/deps/proptest-f3d0fdba1224d258.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-f3d0fdba1224d258.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
