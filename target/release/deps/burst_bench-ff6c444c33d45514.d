/root/repo/target/release/deps/burst_bench-ff6c444c33d45514.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libburst_bench-ff6c444c33d45514.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libburst_bench-ff6c444c33d45514.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
