/root/repo/target/release/deps/export_json-8bf490dabbf1c892.d: crates/bench/src/bin/export_json.rs

/root/repo/target/release/deps/export_json-8bf490dabbf1c892: crates/bench/src/bin/export_json.rs

crates/bench/src/bin/export_json.rs:
