/root/repo/target/release/deps/balance-7ad1dbf4ccf852bf.d: crates/dattn/tests/balance.rs

/root/repo/target/release/deps/balance-7ad1dbf4ccf852bf: crates/dattn/tests/balance.rs

crates/dattn/tests/balance.rs:
