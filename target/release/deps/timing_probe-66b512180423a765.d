/root/repo/target/release/deps/timing_probe-66b512180423a765.d: crates/tensor/tests/timing_probe.rs

/root/repo/target/release/deps/timing_probe-66b512180423a765: crates/tensor/tests/timing_probe.rs

crates/tensor/tests/timing_probe.rs:
