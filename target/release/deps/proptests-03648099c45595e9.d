/root/repo/target/release/deps/proptests-03648099c45595e9.d: crates/kernels/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-03648099c45595e9.rmeta: crates/kernels/tests/proptests.rs Cargo.toml

crates/kernels/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
