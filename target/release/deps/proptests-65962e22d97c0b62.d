/root/repo/target/release/deps/proptests-65962e22d97c0b62.d: crates/dattn/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-65962e22d97c0b62.rmeta: crates/dattn/tests/proptests.rs Cargo.toml

crates/dattn/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
