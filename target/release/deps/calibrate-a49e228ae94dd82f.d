/root/repo/target/release/deps/calibrate-a49e228ae94dd82f.d: crates/perf/src/bin/calibrate.rs Cargo.toml

/root/repo/target/release/deps/libcalibrate-a49e228ae94dd82f.rmeta: crates/perf/src/bin/calibrate.rs Cargo.toml

crates/perf/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
