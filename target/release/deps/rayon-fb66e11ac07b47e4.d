/root/repo/target/release/deps/rayon-fb66e11ac07b47e4.d: shims/rayon/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librayon-fb66e11ac07b47e4.rmeta: shims/rayon/src/lib.rs Cargo.toml

shims/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
