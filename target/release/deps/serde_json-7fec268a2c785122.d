/root/repo/target/release/deps/serde_json-7fec268a2c785122.d: shims/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-7fec268a2c785122.rmeta: shims/serde_json/src/lib.rs Cargo.toml

shims/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
