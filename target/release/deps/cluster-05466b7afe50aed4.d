/root/repo/target/release/deps/cluster-05466b7afe50aed4.d: crates/comm/tests/cluster.rs

/root/repo/target/release/deps/cluster-05466b7afe50aed4: crates/comm/tests/cluster.rs

crates/comm/tests/cluster.rs:
