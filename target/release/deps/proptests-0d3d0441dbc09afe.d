/root/repo/target/release/deps/proptests-0d3d0441dbc09afe.d: crates/tensor/tests/proptests.rs

/root/repo/target/release/deps/proptests-0d3d0441dbc09afe: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
