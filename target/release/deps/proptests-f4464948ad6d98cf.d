/root/repo/target/release/deps/proptests-f4464948ad6d98cf.d: crates/comm/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-f4464948ad6d98cf.rmeta: crates/comm/tests/proptests.rs Cargo.toml

crates/comm/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
