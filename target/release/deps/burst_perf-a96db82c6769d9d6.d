/root/repo/target/release/deps/burst_perf-a96db82c6769d9d6.d: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs Cargo.toml

/root/repo/target/release/deps/libburst_perf-a96db82c6769d9d6.rmeta: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs Cargo.toml

crates/perf/src/lib.rs:
crates/perf/src/commtime.rs:
crates/perf/src/endtoend.rs:
crates/perf/src/flops.rs:
crates/perf/src/machine.rs:
crates/perf/src/memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
