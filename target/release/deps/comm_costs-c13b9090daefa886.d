/root/repo/target/release/deps/comm_costs-c13b9090daefa886.d: crates/dattn/tests/comm_costs.rs

/root/repo/target/release/deps/comm_costs-c13b9090daefa886: crates/dattn/tests/comm_costs.rs

crates/dattn/tests/comm_costs.rs:
