/root/repo/target/release/deps/serde-a9fc7c0f3403b2a9.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-a9fc7c0f3403b2a9.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-a9fc7c0f3403b2a9.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
