/root/repo/target/release/deps/criterion-b54d7becb8d8fbbb.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-b54d7becb8d8fbbb.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
