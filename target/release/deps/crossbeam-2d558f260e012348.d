/root/repo/target/release/deps/crossbeam-2d558f260e012348.d: shims/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-2d558f260e012348.rmeta: shims/crossbeam/src/lib.rs Cargo.toml

shims/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
