/root/repo/target/release/deps/burst_perf-7afd3dd50e7ad636.d: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

/root/repo/target/release/deps/burst_perf-7afd3dd50e7ad636: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

crates/perf/src/lib.rs:
crates/perf/src/commtime.rs:
crates/perf/src/endtoend.rs:
crates/perf/src/flops.rs:
crates/perf/src/machine.rs:
crates/perf/src/memory.rs:
