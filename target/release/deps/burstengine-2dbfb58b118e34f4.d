/root/repo/target/release/deps/burstengine-2dbfb58b118e34f4.d: src/lib.rs

/root/repo/target/release/deps/libburstengine-2dbfb58b118e34f4.rlib: src/lib.rs

/root/repo/target/release/deps/libburstengine-2dbfb58b118e34f4.rmeta: src/lib.rs

src/lib.rs:
