/root/repo/target/release/deps/proptests-54a7271b687b8190.d: crates/dattn/tests/proptests.rs

/root/repo/target/release/deps/proptests-54a7271b687b8190: crates/dattn/tests/proptests.rs

crates/dattn/tests/proptests.rs:
