/root/repo/target/release/deps/failure_modes-3250cfe3f2743ad7.d: tests/failure_modes.rs Cargo.toml

/root/repo/target/release/deps/libfailure_modes-3250cfe3f2743ad7.rmeta: tests/failure_modes.rs Cargo.toml

tests/failure_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
