/root/repo/target/release/deps/burst_perf-ce271d53059eee4c.d: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

/root/repo/target/release/deps/libburst_perf-ce271d53059eee4c.rlib: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

/root/repo/target/release/deps/libburst_perf-ce271d53059eee4c.rmeta: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

crates/perf/src/lib.rs:
crates/perf/src/commtime.rs:
crates/perf/src/endtoend.rs:
crates/perf/src/flops.rs:
crates/perf/src/machine.rs:
crates/perf/src/memory.rs:
