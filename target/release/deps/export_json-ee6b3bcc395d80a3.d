/root/repo/target/release/deps/export_json-ee6b3bcc395d80a3.d: crates/bench/src/bin/export_json.rs

/root/repo/target/release/deps/export_json-ee6b3bcc395d80a3: crates/bench/src/bin/export_json.rs

crates/bench/src/bin/export_json.rs:
