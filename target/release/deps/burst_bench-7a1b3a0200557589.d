/root/repo/target/release/deps/burst_bench-7a1b3a0200557589.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libburst_bench-7a1b3a0200557589.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libburst_bench-7a1b3a0200557589.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
