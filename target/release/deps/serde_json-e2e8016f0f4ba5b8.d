/root/repo/target/release/deps/serde_json-e2e8016f0f4ba5b8.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-e2e8016f0f4ba5b8.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-e2e8016f0f4ba5b8.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
