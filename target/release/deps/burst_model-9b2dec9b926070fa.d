/root/repo/target/release/deps/burst_model-9b2dec9b926070fa.d: crates/model/src/lib.rs crates/model/src/attention.rs crates/model/src/block.rs crates/model/src/checkpoint.rs crates/model/src/checkpoint_io.rs crates/model/src/embedding.rs crates/model/src/engine.rs crates/model/src/ffn.rs crates/model/src/fsdp.rs crates/model/src/linear.rs crates/model/src/memory.rs crates/model/src/model.rs crates/model/src/norm.rs crates/model/src/param.rs crates/model/src/rope.rs Cargo.toml

/root/repo/target/release/deps/libburst_model-9b2dec9b926070fa.rmeta: crates/model/src/lib.rs crates/model/src/attention.rs crates/model/src/block.rs crates/model/src/checkpoint.rs crates/model/src/checkpoint_io.rs crates/model/src/embedding.rs crates/model/src/engine.rs crates/model/src/ffn.rs crates/model/src/fsdp.rs crates/model/src/linear.rs crates/model/src/memory.rs crates/model/src/model.rs crates/model/src/norm.rs crates/model/src/param.rs crates/model/src/rope.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/attention.rs:
crates/model/src/block.rs:
crates/model/src/checkpoint.rs:
crates/model/src/checkpoint_io.rs:
crates/model/src/embedding.rs:
crates/model/src/engine.rs:
crates/model/src/ffn.rs:
crates/model/src/fsdp.rs:
crates/model/src/linear.rs:
crates/model/src/memory.rs:
crates/model/src/model.rs:
crates/model/src/norm.rs:
crates/model/src/param.rs:
crates/model/src/rope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
