/root/repo/target/release/deps/engine_distributed-201fd821b973f398.d: crates/model/tests/engine_distributed.rs

/root/repo/target/release/deps/engine_distributed-201fd821b973f398: crates/model/tests/engine_distributed.rs

crates/model/tests/engine_distributed.rs:
