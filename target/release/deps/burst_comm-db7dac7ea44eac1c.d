/root/repo/target/release/deps/burst_comm-db7dac7ea44eac1c.d: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

/root/repo/target/release/deps/libburst_comm-db7dac7ea44eac1c.rlib: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

/root/repo/target/release/deps/libburst_comm-db7dac7ea44eac1c.rmeta: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

crates/comm/src/lib.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/topology.rs:
crates/comm/src/trace.rs:
crates/comm/src/world.rs:
