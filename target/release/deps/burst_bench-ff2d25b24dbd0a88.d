/root/repo/target/release/deps/burst_bench-ff2d25b24dbd0a88.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libburst_bench-ff2d25b24dbd0a88.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
