/root/repo/target/release/deps/burst_bench-008f5581306cfa0f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libburst_bench-008f5581306cfa0f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
