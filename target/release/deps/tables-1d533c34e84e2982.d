/root/repo/target/release/deps/tables-1d533c34e84e2982.d: crates/bench/src/bin/tables.rs Cargo.toml

/root/repo/target/release/deps/libtables-1d533c34e84e2982.rmeta: crates/bench/src/bin/tables.rs Cargo.toml

crates/bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
