/root/repo/target/release/deps/burst_dattn-0ed846c0e4857ebf.d: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs Cargo.toml

/root/repo/target/release/deps/libburst_dattn-0ed846c0e4857ebf.rmeta: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs Cargo.toml

crates/dattn/src/lib.rs:
crates/dattn/src/cost.rs:
crates/dattn/src/double_ring.rs:
crates/dattn/src/layout.rs:
crates/dattn/src/ring.rs:
crates/dattn/src/ulysses.rs:
crates/dattn/src/usp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
