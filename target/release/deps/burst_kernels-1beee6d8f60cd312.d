/root/repo/target/release/deps/burst_kernels-1beee6d8f60cd312.d: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs Cargo.toml

/root/repo/target/release/deps/libburst_kernels-1beee6d8f60cd312.rmeta: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/flash.rs:
crates/kernels/src/lmhead.rs:
crates/kernels/src/mask.rs:
crates/kernels/src/naive.rs:
crates/kernels/src/online.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
