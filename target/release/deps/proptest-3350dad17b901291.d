/root/repo/target/release/deps/proptest-3350dad17b901291.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-3350dad17b901291: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
