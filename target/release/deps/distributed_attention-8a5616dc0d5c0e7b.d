/root/repo/target/release/deps/distributed_attention-8a5616dc0d5c0e7b.d: crates/bench/benches/distributed_attention.rs Cargo.toml

/root/repo/target/release/deps/libdistributed_attention-8a5616dc0d5c0e7b.rmeta: crates/bench/benches/distributed_attention.rs Cargo.toml

crates/bench/benches/distributed_attention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
