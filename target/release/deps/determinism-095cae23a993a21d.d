/root/repo/target/release/deps/determinism-095cae23a993a21d.d: crates/kernels/tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-095cae23a993a21d.rmeta: crates/kernels/tests/determinism.rs Cargo.toml

crates/kernels/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
