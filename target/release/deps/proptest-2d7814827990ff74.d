/root/repo/target/release/deps/proptest-2d7814827990ff74.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-2d7814827990ff74.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
