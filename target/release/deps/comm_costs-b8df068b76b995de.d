/root/repo/target/release/deps/comm_costs-b8df068b76b995de.d: crates/dattn/tests/comm_costs.rs Cargo.toml

/root/repo/target/release/deps/libcomm_costs-b8df068b76b995de.rmeta: crates/dattn/tests/comm_costs.rs Cargo.toml

crates/dattn/tests/comm_costs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
