/root/repo/target/release/deps/distributed_correctness-20f81e1e59723428.d: crates/dattn/tests/distributed_correctness.rs

/root/repo/target/release/deps/distributed_correctness-20f81e1e59723428: crates/dattn/tests/distributed_correctness.rs

crates/dattn/tests/distributed_correctness.rs:
