/root/repo/target/release/deps/calibrate-239038553061c1ef.d: crates/perf/src/bin/calibrate.rs Cargo.toml

/root/repo/target/release/deps/libcalibrate-239038553061c1ef.rmeta: crates/perf/src/bin/calibrate.rs Cargo.toml

crates/perf/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
