/root/repo/target/release/deps/burst_model-7b9479f751aad237.d: crates/model/src/lib.rs crates/model/src/attention.rs crates/model/src/block.rs crates/model/src/checkpoint.rs crates/model/src/checkpoint_io.rs crates/model/src/embedding.rs crates/model/src/engine.rs crates/model/src/ffn.rs crates/model/src/fsdp.rs crates/model/src/linear.rs crates/model/src/memory.rs crates/model/src/model.rs crates/model/src/norm.rs crates/model/src/param.rs crates/model/src/rope.rs

/root/repo/target/release/deps/libburst_model-7b9479f751aad237.rlib: crates/model/src/lib.rs crates/model/src/attention.rs crates/model/src/block.rs crates/model/src/checkpoint.rs crates/model/src/checkpoint_io.rs crates/model/src/embedding.rs crates/model/src/engine.rs crates/model/src/ffn.rs crates/model/src/fsdp.rs crates/model/src/linear.rs crates/model/src/memory.rs crates/model/src/model.rs crates/model/src/norm.rs crates/model/src/param.rs crates/model/src/rope.rs

/root/repo/target/release/deps/libburst_model-7b9479f751aad237.rmeta: crates/model/src/lib.rs crates/model/src/attention.rs crates/model/src/block.rs crates/model/src/checkpoint.rs crates/model/src/checkpoint_io.rs crates/model/src/embedding.rs crates/model/src/engine.rs crates/model/src/ffn.rs crates/model/src/fsdp.rs crates/model/src/linear.rs crates/model/src/memory.rs crates/model/src/model.rs crates/model/src/norm.rs crates/model/src/param.rs crates/model/src/rope.rs

crates/model/src/lib.rs:
crates/model/src/attention.rs:
crates/model/src/block.rs:
crates/model/src/checkpoint.rs:
crates/model/src/checkpoint_io.rs:
crates/model/src/embedding.rs:
crates/model/src/engine.rs:
crates/model/src/ffn.rs:
crates/model/src/fsdp.rs:
crates/model/src/linear.rs:
crates/model/src/memory.rs:
crates/model/src/model.rs:
crates/model/src/norm.rs:
crates/model/src/param.rs:
crates/model/src/rope.rs:
