/root/repo/target/release/deps/distributed_correctness-93067adba155d288.d: crates/dattn/tests/distributed_correctness.rs Cargo.toml

/root/repo/target/release/deps/libdistributed_correctness-93067adba155d288.rmeta: crates/dattn/tests/distributed_correctness.rs Cargo.toml

crates/dattn/tests/distributed_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
