/root/repo/target/release/deps/serde-bfba37f7deda2327.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-bfba37f7deda2327.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
