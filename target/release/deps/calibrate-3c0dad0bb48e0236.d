/root/repo/target/release/deps/calibrate-3c0dad0bb48e0236.d: crates/perf/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-3c0dad0bb48e0236: crates/perf/src/bin/calibrate.rs

crates/perf/src/bin/calibrate.rs:
