/root/repo/target/release/deps/workload_balance-bc1f970a0dfa82f7.d: crates/bench/benches/workload_balance.rs Cargo.toml

/root/repo/target/release/deps/libworkload_balance-bc1f970a0dfa82f7.rmeta: crates/bench/benches/workload_balance.rs Cargo.toml

crates/bench/benches/workload_balance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
