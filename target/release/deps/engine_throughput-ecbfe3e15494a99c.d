/root/repo/target/release/deps/engine_throughput-ecbfe3e15494a99c.d: crates/bench/benches/engine_throughput.rs Cargo.toml

/root/repo/target/release/deps/libengine_throughput-ecbfe3e15494a99c.rmeta: crates/bench/benches/engine_throughput.rs Cargo.toml

crates/bench/benches/engine_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
