/root/repo/target/release/deps/serde_json-b4f495e6de6f8b74.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-b4f495e6de6f8b74: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
