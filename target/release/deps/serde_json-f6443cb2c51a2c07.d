/root/repo/target/release/deps/serde_json-f6443cb2c51a2c07.d: shims/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-f6443cb2c51a2c07.rmeta: shims/serde_json/src/lib.rs Cargo.toml

shims/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
