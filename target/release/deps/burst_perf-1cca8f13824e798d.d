/root/repo/target/release/deps/burst_perf-1cca8f13824e798d.d: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs Cargo.toml

/root/repo/target/release/deps/libburst_perf-1cca8f13824e798d.rmeta: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs Cargo.toml

crates/perf/src/lib.rs:
crates/perf/src/commtime.rs:
crates/perf/src/endtoend.rs:
crates/perf/src/flops.rs:
crates/perf/src/machine.rs:
crates/perf/src/memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
