/root/repo/target/release/deps/burst_tensor-fac4a15f2d90cc07.d: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs Cargo.toml

/root/repo/target/release/deps/libburst_tensor-fac4a15f2d90cc07.rmeta: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/bf16.rs:
crates/tensor/src/mat.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/scratch.rs:
crates/tensor/src/testutil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
