/root/repo/target/release/deps/crossbeam-49e397a842aa4c5d.d: shims/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-49e397a842aa4c5d.rmeta: shims/crossbeam/src/lib.rs Cargo.toml

shims/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
