/root/repo/target/release/deps/comm_primitives-5e5ab1c1c700768f.d: crates/bench/benches/comm_primitives.rs Cargo.toml

/root/repo/target/release/deps/libcomm_primitives-5e5ab1c1c700768f.rmeta: crates/bench/benches/comm_primitives.rs Cargo.toml

crates/bench/benches/comm_primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
