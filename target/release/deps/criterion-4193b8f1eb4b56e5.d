/root/repo/target/release/deps/criterion-4193b8f1eb4b56e5.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-4193b8f1eb4b56e5: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
