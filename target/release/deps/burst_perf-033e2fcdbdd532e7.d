/root/repo/target/release/deps/burst_perf-033e2fcdbdd532e7.d: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

/root/repo/target/release/deps/libburst_perf-033e2fcdbdd532e7.rlib: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

/root/repo/target/release/deps/libburst_perf-033e2fcdbdd532e7.rmeta: crates/perf/src/lib.rs crates/perf/src/commtime.rs crates/perf/src/endtoend.rs crates/perf/src/flops.rs crates/perf/src/machine.rs crates/perf/src/memory.rs

crates/perf/src/lib.rs:
crates/perf/src/commtime.rs:
crates/perf/src/endtoend.rs:
crates/perf/src/flops.rs:
crates/perf/src/machine.rs:
crates/perf/src/memory.rs:
