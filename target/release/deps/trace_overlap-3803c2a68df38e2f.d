/root/repo/target/release/deps/trace_overlap-3803c2a68df38e2f.d: crates/dattn/tests/trace_overlap.rs

/root/repo/target/release/deps/trace_overlap-3803c2a68df38e2f: crates/dattn/tests/trace_overlap.rs

crates/dattn/tests/trace_overlap.rs:
