/root/repo/target/release/deps/burst_bench-57a27679a4e42da5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/burst_bench-57a27679a4e42da5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
