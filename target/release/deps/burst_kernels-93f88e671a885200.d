/root/repo/target/release/deps/burst_kernels-93f88e671a885200.d: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

/root/repo/target/release/deps/libburst_kernels-93f88e671a885200.rlib: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

/root/repo/target/release/deps/libburst_kernels-93f88e671a885200.rmeta: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

crates/kernels/src/lib.rs:
crates/kernels/src/flash.rs:
crates/kernels/src/lmhead.rs:
crates/kernels/src/mask.rs:
crates/kernels/src/naive.rs:
crates/kernels/src/online.rs:
