/root/repo/target/release/deps/burst_tensor-393a8dcc58342c09.d: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs

/root/repo/target/release/deps/libburst_tensor-393a8dcc58342c09.rlib: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs

/root/repo/target/release/deps/libburst_tensor-393a8dcc58342c09.rmeta: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs

crates/tensor/src/lib.rs:
crates/tensor/src/bf16.rs:
crates/tensor/src/mat.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/scratch.rs:
crates/tensor/src/testutil.rs:
