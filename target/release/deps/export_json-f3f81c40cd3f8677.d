/root/repo/target/release/deps/export_json-f3f81c40cd3f8677.d: crates/bench/src/bin/export_json.rs Cargo.toml

/root/repo/target/release/deps/libexport_json-f3f81c40cd3f8677.rmeta: crates/bench/src/bin/export_json.rs Cargo.toml

crates/bench/src/bin/export_json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
