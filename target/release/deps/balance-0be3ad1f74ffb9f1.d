/root/repo/target/release/deps/balance-0be3ad1f74ffb9f1.d: crates/dattn/tests/balance.rs Cargo.toml

/root/repo/target/release/deps/libbalance-0be3ad1f74ffb9f1.rmeta: crates/dattn/tests/balance.rs Cargo.toml

crates/dattn/tests/balance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
