/root/repo/target/release/deps/crossbeam-58409bfff95f61aa.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-58409bfff95f61aa.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-58409bfff95f61aa.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
