/root/repo/target/release/deps/cluster-c99f9941591c30cf.d: crates/comm/tests/cluster.rs Cargo.toml

/root/repo/target/release/deps/libcluster-c99f9941591c30cf.rmeta: crates/comm/tests/cluster.rs Cargo.toml

crates/comm/tests/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
