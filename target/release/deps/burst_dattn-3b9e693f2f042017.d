/root/repo/target/release/deps/burst_dattn-3b9e693f2f042017.d: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs Cargo.toml

/root/repo/target/release/deps/libburst_dattn-3b9e693f2f042017.rmeta: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs Cargo.toml

crates/dattn/src/lib.rs:
crates/dattn/src/cost.rs:
crates/dattn/src/double_ring.rs:
crates/dattn/src/layout.rs:
crates/dattn/src/ring.rs:
crates/dattn/src/ulysses.rs:
crates/dattn/src/usp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
