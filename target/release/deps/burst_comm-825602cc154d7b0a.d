/root/repo/target/release/deps/burst_comm-825602cc154d7b0a.d: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs Cargo.toml

/root/repo/target/release/deps/libburst_comm-825602cc154d7b0a.rmeta: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/topology.rs:
crates/comm/src/trace.rs:
crates/comm/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
