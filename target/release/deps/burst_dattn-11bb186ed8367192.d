/root/repo/target/release/deps/burst_dattn-11bb186ed8367192.d: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

/root/repo/target/release/deps/libburst_dattn-11bb186ed8367192.rlib: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

/root/repo/target/release/deps/libburst_dattn-11bb186ed8367192.rmeta: crates/dattn/src/lib.rs crates/dattn/src/cost.rs crates/dattn/src/double_ring.rs crates/dattn/src/layout.rs crates/dattn/src/ring.rs crates/dattn/src/ulysses.rs crates/dattn/src/usp.rs

crates/dattn/src/lib.rs:
crates/dattn/src/cost.rs:
crates/dattn/src/double_ring.rs:
crates/dattn/src/layout.rs:
crates/dattn/src/ring.rs:
crates/dattn/src/ulysses.rs:
crates/dattn/src/usp.rs:
