/root/repo/target/release/deps/trace_overlap-c5b88ef3fedcaf37.d: crates/dattn/tests/trace_overlap.rs Cargo.toml

/root/repo/target/release/deps/libtrace_overlap-c5b88ef3fedcaf37.rmeta: crates/dattn/tests/trace_overlap.rs Cargo.toml

crates/dattn/tests/trace_overlap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
