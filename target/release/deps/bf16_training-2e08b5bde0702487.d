/root/repo/target/release/deps/bf16_training-2e08b5bde0702487.d: crates/model/tests/bf16_training.rs

/root/repo/target/release/deps/bf16_training-2e08b5bde0702487: crates/model/tests/bf16_training.rs

crates/model/tests/bf16_training.rs:
