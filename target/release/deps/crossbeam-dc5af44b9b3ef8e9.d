/root/repo/target/release/deps/crossbeam-dc5af44b9b3ef8e9.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-dc5af44b9b3ef8e9: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
