/root/repo/target/release/deps/full_stack-989be9adacaa5c76.d: tests/full_stack.rs

/root/repo/target/release/deps/full_stack-989be9adacaa5c76: tests/full_stack.rs

tests/full_stack.rs:
