/root/repo/target/release/deps/tables-61b711e52b485be2.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-61b711e52b485be2: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
