/root/repo/target/release/deps/ulysses_usp-d3c95f0e5a004f05.d: crates/dattn/tests/ulysses_usp.rs Cargo.toml

/root/repo/target/release/deps/libulysses_usp-d3c95f0e5a004f05.rmeta: crates/dattn/tests/ulysses_usp.rs Cargo.toml

crates/dattn/tests/ulysses_usp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
