/root/repo/target/release/deps/tables-449f0565b99d2e92.d: crates/bench/src/bin/tables.rs Cargo.toml

/root/repo/target/release/deps/libtables-449f0565b99d2e92.rmeta: crates/bench/src/bin/tables.rs Cargo.toml

crates/bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
