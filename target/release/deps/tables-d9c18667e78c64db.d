/root/repo/target/release/deps/tables-d9c18667e78c64db.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-d9c18667e78c64db: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
