/root/repo/target/release/deps/rand-af7f7446a3bac649.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-af7f7446a3bac649.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
