/root/repo/target/release/deps/burstengine-ef4fdf24b6b72fdf.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libburstengine-ef4fdf24b6b72fdf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
