/root/repo/target/release/deps/serde_json-73ce2302401b2691.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-73ce2302401b2691.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-73ce2302401b2691.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
