/root/repo/target/release/deps/burst_comm-dceeb8aa928885ae.d: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

/root/repo/target/release/deps/libburst_comm-dceeb8aa928885ae.rlib: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

/root/repo/target/release/deps/libburst_comm-dceeb8aa928885ae.rmeta: crates/comm/src/lib.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/topology.rs crates/comm/src/trace.rs crates/comm/src/world.rs

crates/comm/src/lib.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/topology.rs:
crates/comm/src/trace.rs:
crates/comm/src/world.rs:
