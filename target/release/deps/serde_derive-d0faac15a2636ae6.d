/root/repo/target/release/deps/serde_derive-d0faac15a2636ae6.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-d0faac15a2636ae6.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
