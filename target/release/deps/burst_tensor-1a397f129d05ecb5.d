/root/repo/target/release/deps/burst_tensor-1a397f129d05ecb5.d: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs

/root/repo/target/release/deps/libburst_tensor-1a397f129d05ecb5.rlib: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs

/root/repo/target/release/deps/libburst_tensor-1a397f129d05ecb5.rmeta: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs

crates/tensor/src/lib.rs:
crates/tensor/src/bf16.rs:
crates/tensor/src/mat.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/scratch.rs:
crates/tensor/src/testutil.rs:
