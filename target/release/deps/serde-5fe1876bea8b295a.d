/root/repo/target/release/deps/serde-5fe1876bea8b295a.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-5fe1876bea8b295a.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-5fe1876bea8b295a.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
