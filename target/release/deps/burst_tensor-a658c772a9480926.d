/root/repo/target/release/deps/burst_tensor-a658c772a9480926.d: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs Cargo.toml

/root/repo/target/release/deps/libburst_tensor-a658c772a9480926.rmeta: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/mat.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/scratch.rs crates/tensor/src/testutil.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/bf16.rs:
crates/tensor/src/mat.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/scratch.rs:
crates/tensor/src/testutil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
