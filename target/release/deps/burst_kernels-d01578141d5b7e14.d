/root/repo/target/release/deps/burst_kernels-d01578141d5b7e14.d: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

/root/repo/target/release/deps/libburst_kernels-d01578141d5b7e14.rlib: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

/root/repo/target/release/deps/libburst_kernels-d01578141d5b7e14.rmeta: crates/kernels/src/lib.rs crates/kernels/src/flash.rs crates/kernels/src/lmhead.rs crates/kernels/src/mask.rs crates/kernels/src/naive.rs crates/kernels/src/online.rs

crates/kernels/src/lib.rs:
crates/kernels/src/flash.rs:
crates/kernels/src/lmhead.rs:
crates/kernels/src/mask.rs:
crates/kernels/src/naive.rs:
crates/kernels/src/online.rs:
