/root/repo/target/release/deps/bf16_training-057479ce7b003d53.d: crates/model/tests/bf16_training.rs Cargo.toml

/root/repo/target/release/deps/libbf16_training-057479ce7b003d53.rmeta: crates/model/tests/bf16_training.rs Cargo.toml

crates/model/tests/bf16_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
