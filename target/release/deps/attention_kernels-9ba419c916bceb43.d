/root/repo/target/release/deps/attention_kernels-9ba419c916bceb43.d: crates/bench/benches/attention_kernels.rs Cargo.toml

/root/repo/target/release/deps/libattention_kernels-9ba419c916bceb43.rmeta: crates/bench/benches/attention_kernels.rs Cargo.toml

crates/bench/benches/attention_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
