/root/repo/target/release/deps/engine_distributed-316310f3d0d8c866.d: crates/model/tests/engine_distributed.rs Cargo.toml

/root/repo/target/release/deps/libengine_distributed-316310f3d0d8c866.rmeta: crates/model/tests/engine_distributed.rs Cargo.toml

crates/model/tests/engine_distributed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
