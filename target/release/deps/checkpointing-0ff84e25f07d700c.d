/root/repo/target/release/deps/checkpointing-0ff84e25f07d700c.d: crates/bench/benches/checkpointing.rs Cargo.toml

/root/repo/target/release/deps/libcheckpointing-0ff84e25f07d700c.rmeta: crates/bench/benches/checkpointing.rs Cargo.toml

crates/bench/benches/checkpointing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
