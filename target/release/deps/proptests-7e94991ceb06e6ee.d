/root/repo/target/release/deps/proptests-7e94991ceb06e6ee.d: crates/comm/tests/proptests.rs

/root/repo/target/release/deps/proptests-7e94991ceb06e6ee: crates/comm/tests/proptests.rs

crates/comm/tests/proptests.rs:
