/root/repo/target/release/deps/rand-88647aaacc528053.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-88647aaacc528053.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
