/root/repo/target/release/deps/criterion-bfdf134d7c15a0c0.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-bfdf134d7c15a0c0.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-bfdf134d7c15a0c0.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
