/root/repo/target/release/deps/export_json-078b267951e216d8.d: crates/bench/src/bin/export_json.rs Cargo.toml

/root/repo/target/release/deps/libexport_json-078b267951e216d8.rmeta: crates/bench/src/bin/export_json.rs Cargo.toml

crates/bench/src/bin/export_json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
