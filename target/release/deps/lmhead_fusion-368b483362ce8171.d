/root/repo/target/release/deps/lmhead_fusion-368b483362ce8171.d: crates/bench/benches/lmhead_fusion.rs Cargo.toml

/root/repo/target/release/deps/liblmhead_fusion-368b483362ce8171.rmeta: crates/bench/benches/lmhead_fusion.rs Cargo.toml

crates/bench/benches/lmhead_fusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
