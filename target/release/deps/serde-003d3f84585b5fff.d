/root/repo/target/release/deps/serde-003d3f84585b5fff.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-003d3f84585b5fff.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
