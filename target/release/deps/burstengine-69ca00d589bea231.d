/root/repo/target/release/deps/burstengine-69ca00d589bea231.d: src/lib.rs

/root/repo/target/release/deps/libburstengine-69ca00d589bea231.rlib: src/lib.rs

/root/repo/target/release/deps/libburstengine-69ca00d589bea231.rmeta: src/lib.rs

src/lib.rs:
