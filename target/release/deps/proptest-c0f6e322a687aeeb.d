/root/repo/target/release/deps/proptest-c0f6e322a687aeeb.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c0f6e322a687aeeb.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c0f6e322a687aeeb.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
