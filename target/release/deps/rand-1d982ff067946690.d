/root/repo/target/release/deps/rand-1d982ff067946690.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-1d982ff067946690: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
