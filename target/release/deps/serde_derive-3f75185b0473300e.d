/root/repo/target/release/deps/serde_derive-3f75185b0473300e.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-3f75185b0473300e: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
