/root/repo/target/release/deps/timing_probe-d7f347739e3a2ce1.d: crates/tensor/tests/timing_probe.rs

/root/repo/target/release/deps/timing_probe-d7f347739e3a2ce1: crates/tensor/tests/timing_probe.rs

crates/tensor/tests/timing_probe.rs:
