/root/repo/target/release/deps/proptests-733150ec4641ae0d.d: crates/tensor/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-733150ec4641ae0d.rmeta: crates/tensor/tests/proptests.rs Cargo.toml

crates/tensor/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
