/root/repo/target/release/deps/proptests-af96792b4e77e175.d: crates/kernels/tests/proptests.rs

/root/repo/target/release/deps/proptests-af96792b4e77e175: crates/kernels/tests/proptests.rs

crates/kernels/tests/proptests.rs:
