/root/repo/target/release/deps/full_stack-9c7c64a555a332ed.d: tests/full_stack.rs Cargo.toml

/root/repo/target/release/deps/libfull_stack-9c7c64a555a332ed.rmeta: tests/full_stack.rs Cargo.toml

tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
