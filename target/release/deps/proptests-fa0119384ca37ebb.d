/root/repo/target/release/deps/proptests-fa0119384ca37ebb.d: crates/tensor/tests/proptests.rs

/root/repo/target/release/deps/proptests-fa0119384ca37ebb: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
