/root/repo/target/release/deps/rayon-a85fd4b8696354aa.d: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-a85fd4b8696354aa.rlib: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-a85fd4b8696354aa.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
