/root/repo/target/release/deps/failure_modes-e16063c10ad6532c.d: tests/failure_modes.rs

/root/repo/target/release/deps/failure_modes-e16063c10ad6532c: tests/failure_modes.rs

tests/failure_modes.rs:
