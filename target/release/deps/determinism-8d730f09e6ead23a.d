/root/repo/target/release/deps/determinism-8d730f09e6ead23a.d: crates/kernels/tests/determinism.rs

/root/repo/target/release/deps/determinism-8d730f09e6ead23a: crates/kernels/tests/determinism.rs

crates/kernels/tests/determinism.rs:
