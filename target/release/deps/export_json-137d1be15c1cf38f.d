/root/repo/target/release/deps/export_json-137d1be15c1cf38f.d: crates/bench/src/bin/export_json.rs

/root/repo/target/release/deps/export_json-137d1be15c1cf38f: crates/bench/src/bin/export_json.rs

crates/bench/src/bin/export_json.rs:
