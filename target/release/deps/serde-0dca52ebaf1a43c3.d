/root/repo/target/release/deps/serde-0dca52ebaf1a43c3.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/serde-0dca52ebaf1a43c3: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
