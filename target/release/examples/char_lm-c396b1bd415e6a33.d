/root/repo/target/release/examples/char_lm-c396b1bd415e6a33.d: examples/char_lm.rs

/root/repo/target/release/examples/char_lm-c396b1bd415e6a33: examples/char_lm.rs

examples/char_lm.rs:
