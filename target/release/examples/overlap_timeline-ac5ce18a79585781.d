/root/repo/target/release/examples/overlap_timeline-ac5ce18a79585781.d: examples/overlap_timeline.rs Cargo.toml

/root/repo/target/release/examples/liboverlap_timeline-ac5ce18a79585781.rmeta: examples/overlap_timeline.rs Cargo.toml

examples/overlap_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
