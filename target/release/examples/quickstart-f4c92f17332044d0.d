/root/repo/target/release/examples/quickstart-f4c92f17332044d0.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-f4c92f17332044d0.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
