/root/repo/target/release/examples/train_long_context-2f427609ec06f01d.d: examples/train_long_context.rs

/root/repo/target/release/examples/train_long_context-2f427609ec06f01d: examples/train_long_context.rs

examples/train_long_context.rs:
