/root/repo/target/release/examples/char_lm-4afea2215e8e7eb3.d: examples/char_lm.rs Cargo.toml

/root/repo/target/release/examples/libchar_lm-4afea2215e8e7eb3.rmeta: examples/char_lm.rs Cargo.toml

examples/char_lm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
