/root/repo/target/release/examples/sparse_attention-4f0a275f56bf8be1.d: examples/sparse_attention.rs Cargo.toml

/root/repo/target/release/examples/libsparse_attention-4f0a275f56bf8be1.rmeta: examples/sparse_attention.rs Cargo.toml

examples/sparse_attention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
