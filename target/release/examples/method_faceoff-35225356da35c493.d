/root/repo/target/release/examples/method_faceoff-35225356da35c493.d: examples/method_faceoff.rs

/root/repo/target/release/examples/method_faceoff-35225356da35c493: examples/method_faceoff.rs

examples/method_faceoff.rs:
