/root/repo/target/release/examples/method_faceoff-daeb54f321afcc11.d: examples/method_faceoff.rs Cargo.toml

/root/repo/target/release/examples/libmethod_faceoff-daeb54f321afcc11.rmeta: examples/method_faceoff.rs Cargo.toml

examples/method_faceoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
