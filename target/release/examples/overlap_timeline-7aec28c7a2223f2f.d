/root/repo/target/release/examples/overlap_timeline-7aec28c7a2223f2f.d: examples/overlap_timeline.rs

/root/repo/target/release/examples/overlap_timeline-7aec28c7a2223f2f: examples/overlap_timeline.rs

examples/overlap_timeline.rs:
