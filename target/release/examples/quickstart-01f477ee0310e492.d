/root/repo/target/release/examples/quickstart-01f477ee0310e492.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-01f477ee0310e492: examples/quickstart.rs

examples/quickstart.rs:
