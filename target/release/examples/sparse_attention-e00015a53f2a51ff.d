/root/repo/target/release/examples/sparse_attention-e00015a53f2a51ff.d: examples/sparse_attention.rs

/root/repo/target/release/examples/sparse_attention-e00015a53f2a51ff: examples/sparse_attention.rs

examples/sparse_attention.rs:
