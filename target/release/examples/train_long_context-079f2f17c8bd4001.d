/root/repo/target/release/examples/train_long_context-079f2f17c8bd4001.d: examples/train_long_context.rs Cargo.toml

/root/repo/target/release/examples/libtrain_long_context-079f2f17c8bd4001.rmeta: examples/train_long_context.rs Cargo.toml

examples/train_long_context.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
