//! Failure-injection and misuse tests: the library must fail loudly and
//! precisely, not silently corrupt results.

use burstengine::prelude::*;

#[test]
fn mismatched_recv_type_panics_with_context() {
    let result = std::panic::catch_unwind(|| {
        let world = World::new(Topology::single_node(2));
        world.run_results(|comm| {
            if comm.rank() == 0 {
                comm.send_vec(1, &[1.0, 2.0]);
            } else {
                // Expecting a matrix where a vector was sent.
                let _ = comm.recv_mat(0);
            }
        });
    });
    assert!(result.is_err(), "type-confused receive must panic");
}

#[test]
fn rank_panic_propagates_to_the_caller() {
    let result = std::panic::catch_unwind(|| {
        let world = World::new(Topology::single_node(2));
        world.run_results(|comm| {
            if comm.rank() == 1 {
                panic!("injected rank failure");
            }
            // Rank 0 performs no communication with rank 1, so it completes.
            comm.rank()
        });
    });
    assert!(result.is_err(), "a dead rank must abort the job");
}

#[test]
fn shape_mismatched_collective_is_rejected() {
    let result = std::panic::catch_unwind(|| {
        let world = World::new(Topology::single_node(2));
        world.run_results(|comm| {
            // Ranks contribute different lengths to an all-reduce.
            let v = vec![0.0f32; 2 + comm.rank()];
            comm.all_reduce_vec(&v)
        });
    });
    assert!(result.is_err(), "length mismatch must be detected");
}

#[test]
fn layout_rejects_indivisible_sequences() {
    let result = std::panic::catch_unwind(|| Layout::Zigzag.indices(30, 4, 0));
    assert!(result.is_err(), "zigzag needs 2G-divisible sequences");
}

#[test]
fn attention_rejects_inconsistent_shard_shapes() {
    let result = std::panic::catch_unwind(|| {
        let world = World::new(Topology::single_node(2));
        let n = 16;
        world.run_results(|comm| {
            // K shard deliberately has the wrong row count.
            let q = randn_mat(n / 2, 4, 1.0, 1);
            let k = randn_mat(n / 2 + 1, 4, 1.0, 2);
            let v = randn_mat(n / 2 + 1, 4, 1.0, 3);
            let go = randn_mat(n / 2, 4, 1.0, 4);
            run_attention(
                Algo::BurstFlat,
                comm,
                &q,
                &k,
                &v,
                &go,
                0.5,
                &AttnMask::Causal,
                Layout::Contiguous,
                n,
                &CostModel::free(),
            )
        });
    });
    assert!(result.is_err(), "inconsistent shard shapes must panic");
}

#[test]
fn ulysses_error_is_typed_not_a_panic() {
    use burstengine::dattn::ulysses::{ulysses_forward, UlyssesError};
    let world = World::new(Topology::single_node(2));
    let outs = world.run_results(|comm| {
        let members = vec![0usize, 1];
        let idx = vec![vec![0usize, 1], vec![2usize, 3]];
        let heads: Vec<Mat> = (0..3).map(|h| randn_mat(2, 4, 1.0, h)).collect();
        ulysses_forward(
            comm,
            &members,
            &idx,
            &heads,
            &heads,
            &heads,
            0.5,
            &AttnMask::Causal,
            &CostModel::free(),
        )
        .err()
    });
    for e in outs {
        assert_eq!(
            e,
            Some(UlyssesError::HeadsNotDivisible { heads: 3, group: 2 })
        );
    }
}

#[test]
fn oom_and_head_failures_are_reported_not_panicked() {
    use burstengine::perf::endtoend::Infeasible;
    let c = Cluster::a800(4, 8);
    let r = evaluate(
        &Method::MegatronCp,
        &c,
        &PaperModel::llama_14b(),
        &AttnMask::Causal,
        1 << 20,
    );
    match r {
        Err(Infeasible::Oom {
            required_gb,
            budget_gb,
        }) => {
            assert!(required_gb > budget_gb);
            // The error formats into the string the tables harness prints.
            let msg = format!(
                "{}",
                Infeasible::Oom {
                    required_gb,
                    budget_gb
                }
            );
            assert!(msg.contains("OOM"));
        }
        other => panic!("expected OOM, got {other:?}"),
    }
}
