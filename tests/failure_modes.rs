//! Failure-injection and misuse tests: the library must fail loudly and
//! precisely, not silently corrupt results.

use burstengine::prelude::*;

#[test]
fn mismatched_recv_type_is_a_typed_shape_mismatch() {
    let world = World::new(Topology::single_node(2));
    let outs = world.run_faulty::<_, CommError, _>(|comm| {
        if comm.rank() == 0 {
            comm.try_send_vec(1, &[1.0, 2.0])?;
            Ok(())
        } else {
            // Expecting a matrix where a vector was sent.
            comm.try_recv_mat(0).map(|_| ())
        }
    });
    assert!(outs[0].result.is_ok(), "sender is unaffected");
    match &outs[1].result {
        Err(CommError::ShapeMismatch {
            rank,
            src,
            expected,
            got,
        }) => {
            assert_eq!((*rank, *src), (1, 0), "error must name both ends");
            assert_eq!(*expected, "Mat");
            assert!(got.contains("Vec"), "got must describe the payload: {got}");
        }
        other => panic!("expected a typed ShapeMismatch, got {other:?}"),
    }
}

#[test]
fn rank_panic_surfaces_as_typed_panicked_error() {
    let world = World::new(Topology::single_node(2));
    let outs = world.run_faulty::<_, CommError, _>(|comm| {
        if comm.rank() == 1 {
            panic!("injected rank failure");
        }
        // Rank 0 performs no communication with rank 1, so it completes.
        Ok(comm.rank())
    });
    assert_eq!(outs[0].result, Ok(0), "healthy rank completes");
    match &outs[1].result {
        Err(CommError::Panicked { rank, detail }) => {
            assert_eq!(*rank, 1, "error must name the dead rank");
            assert!(
                detail.contains("injected rank failure"),
                "detail must carry the panic message: {detail}"
            );
        }
        other => panic!("expected a typed Panicked error, got {other:?}"),
    }
}

#[test]
fn shape_mismatched_collective_is_a_typed_rejection() {
    let world = World::new(Topology::single_node(2));
    let outs = world.run_faulty::<_, CommError, _>(|comm| {
        // Ranks contribute different lengths to an all-reduce.
        let v = vec![0.0f32; 2 + comm.rank()];
        comm.try_all_reduce_vec(&v).map(|_| ())
    });
    // Rank 0 (the reducer) detects the mismatch; rank 1 then loses its peer.
    match &outs[0].result {
        Err(CommError::ShapeMismatch { rank, src, got, .. }) => {
            assert_eq!((*rank, *src), (0, 1));
            assert!(
                got.contains("Vec[3]") && got.contains("Vec[2]"),
                "mismatch must report both lengths: {got}"
            );
        }
        other => panic!("expected a typed ShapeMismatch, got {other:?}"),
    }
    assert!(
        matches!(
            outs[1].result,
            Err(CommError::PeerLost {
                rank: 1,
                src: 0,
                ..
            })
        ),
        "the other rank must observe the aborted reducer: {:?}",
        outs[1].result
    );
}

#[test]
fn layout_rejects_indivisible_sequences() {
    let panic_message = |f: Box<dyn FnOnce() -> Vec<usize>>| -> String {
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .expect_err("indivisible layout must be rejected");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload must be a message")
    };
    // 30 tokens on 4 ranks trips the general divisibility check …
    let msg = panic_message(Box::new(|| Layout::Zigzag.indices(30, 4, 0)));
    assert!(
        msg.contains("sequence 30 not divisible by 4 ranks"),
        "rejection must name the sequence and rank count: {msg}"
    );
    // … while 12 tokens divide by 4 ranks but not into 2G = 8 zigzag
    // chunks, tripping the zigzag-specific check with its own message.
    let msg = panic_message(Box::new(|| Layout::Zigzag.indices(12, 4, 0)));
    assert!(
        msg.contains("zigzag: sequence 12 must divide into 2G = 8 chunks"),
        "rejection must name the zigzag chunk requirement: {msg}"
    );
}

#[test]
fn attention_rejects_inconsistent_shard_shapes() {
    let world = World::new(Topology::single_node(2));
    let n = 16;
    let outs = world.run_faulty::<_, AttnFailure, _>(|comm| {
        // K shard deliberately has the wrong row count.
        let q = randn_mat(n / 2, 4, 1.0, 1);
        let k = randn_mat(n / 2 + 1, 4, 1.0, 2);
        let v = randn_mat(n / 2 + 1, 4, 1.0, 3);
        let go = randn_mat(n / 2, 4, 1.0, 4);
        try_run_attention(
            Algo::BurstFlat,
            comm,
            &q,
            &k,
            &v,
            &go,
            0.5,
            &AttnMask::Causal,
            Layout::Contiguous,
            n,
            &CostModel::free(),
        )
    });
    for out in &outs {
        assert!(
            out.result.is_err(),
            "rank {}: inconsistent shard shapes must fail",
            out.rank
        );
    }
    // The failure is typed, not an unwinding panic: whichever rank tripped
    // the internal shape check reports Panicked with its rank attached,
    // and any peer mid-exchange observes the loss as a comm error.
    assert!(
        outs.iter().any(|o| matches!(
            o.result.as_ref().unwrap_err().source,
            CommError::Panicked { rank, .. } if rank == o.rank
        )),
        "some rank must report the shape check it tripped: {outs:?}"
    );
}

#[test]
fn ulysses_error_is_typed_not_a_panic() {
    use burstengine::dattn::ulysses::{ulysses_forward, UlyssesError};
    let world = World::new(Topology::single_node(2));
    let outs = world.run_results(|comm| {
        let members = vec![0usize, 1];
        let idx = vec![vec![0usize, 1], vec![2usize, 3]];
        let heads: Vec<Mat> = (0..3).map(|h| randn_mat(2, 4, 1.0, h)).collect();
        ulysses_forward(
            comm,
            &members,
            &idx,
            &heads,
            &heads,
            &heads,
            0.5,
            &AttnMask::Causal,
            &CostModel::free(),
        )
        .err()
    });
    for e in outs {
        assert_eq!(
            e,
            Some(UlyssesError::HeadsNotDivisible { heads: 3, group: 2 })
        );
    }
}

#[test]
fn oom_and_head_failures_are_reported_not_panicked() {
    use burstengine::perf::endtoend::Infeasible;
    let c = Cluster::a800(4, 8);
    let r = evaluate(
        &Method::MegatronCp,
        &c,
        &PaperModel::llama_14b(),
        &AttnMask::Causal,
        1 << 20,
    );
    match r {
        Err(Infeasible::Oom {
            required_gb,
            budget_gb,
        }) => {
            assert!(required_gb > budget_gb);
            // The error formats into the string the tables harness prints.
            let msg = format!(
                "{}",
                Infeasible::Oom {
                    required_gb,
                    budget_gb
                }
            );
            assert!(msg.contains("OOM"));
        }
        other => panic!("expected OOM, got {other:?}"),
    }
}

/// Fault-injection seed for the plans below; the CI matrix overrides it via
/// the `FAULT_SEED` environment variable to prove determinism holds for any
/// seed, not just the default.
fn fault_seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

#[test]
fn straggler_link_times_out_with_typed_error() {
    // Link 0→1 is a 10-virtual-second straggler; the receiver only waits 1s.
    let plan = FaultPlan::new(fault_seed())
        .delay_link(0, 1, 10.0, 0.0)
        .recv_deadline(1.0);
    let world = World::with_faults(Topology::single_node(2), plan);
    let outs = world.run_faulty::<_, CommError, _>(|comm| {
        if comm.rank() == 0 {
            comm.try_send_vec(1, &[1.0, 2.0])
        } else {
            comm.try_recv_vec(0).map(|_| ())
        }
    });
    assert!(outs[0].result.is_ok(), "sender is unaffected");
    match &outs[1].result {
        Err(CommError::Timeout { rank, src, .. }) => {
            assert_eq!((*rank, *src), (1, 0), "timeout must name both ends");
        }
        other => panic!("expected a typed timeout, got {other:?}"),
    }
}

#[test]
fn dropped_message_surfaces_as_timeout_not_deadlock() {
    let plan = FaultPlan::new(fault_seed())
        .drop_msg(0, 1, 0)
        .recv_deadline(1.0);
    let world = World::with_faults(Topology::single_node(2), plan);
    let outs = world.run_faulty::<_, CommError, _>(|comm| {
        if comm.rank() == 0 {
            comm.try_send_vec(1, &[3.0])
        } else {
            comm.try_recv_vec(0).map(|_| ())
        }
    });
    assert!(
        matches!(
            outs[1].result,
            Err(CommError::Timeout {
                rank: 1,
                src: 0,
                ..
            })
        ),
        "dropped message must become a deadline timeout: {:?}",
        outs[1].result
    );
}

#[test]
fn corrupted_message_is_detected_by_checksum() {
    let plan = FaultPlan::new(fault_seed()).corrupt_msg(0, 1, 0);
    let world = World::with_faults(Topology::single_node(2), plan);
    let outs = world.run_faulty::<_, CommError, _>(|comm| {
        if comm.rank() == 0 {
            comm.try_send_vec(1, &[1.0, -2.0, 3.0])
        } else {
            comm.try_recv_vec(0).map(|_| ())
        }
    });
    match &outs[1].result {
        Err(CommError::Corrupt { rank, src, detail }) => {
            assert_eq!((*rank, *src), (1, 0));
            assert!(detail.contains("checksum"), "detail must explain: {detail}");
        }
        other => panic!("expected a corruption error, got {other:?}"),
    }
}

#[test]
fn crash_mid_ring_attention_names_rank_and_round() {
    let n = 32;
    let d = 8;
    let g = 4;
    let crashed = 2usize;
    // Rank 2 dies after a handful of communication ops — mid-ring.
    let plan = FaultPlan::new(fault_seed())
        .crash_at_op(crashed, 4)
        .recv_deadline(60.0);
    let world = World::with_faults(Topology::single_node(g), plan);
    let q = randn_mat(n, d, 0.7, 1);
    let k = randn_mat(n, d, 0.7, 2);
    let v = randn_mat(n, d, 0.7, 3);
    let go = randn_mat(n, d, 0.8, 4);
    let outs = world.run_faulty::<_, AttnFailure, _>(|comm| {
        let idx = Layout::Zigzag.indices(n, g, comm.rank());
        try_run_attention(
            Algo::BurstFlat,
            comm,
            &q.gather_rows(&idx),
            &k.gather_rows(&idx),
            &v.gather_rows(&idx),
            &go.gather_rows(&idx),
            1.0 / (d as f32).sqrt(),
            &AttnMask::Causal,
            Layout::Zigzag,
            n,
            &CostModel::free(),
        )
    });
    for out in &outs {
        assert!(
            out.result.is_err(),
            "rank {}: a mid-ring crash must fail every rank",
            out.rank
        );
    }
    let failures: Vec<&AttnFailure> = outs
        .iter()
        .map(|o| o.result.as_ref().unwrap_err())
        .collect();
    assert!(
        matches!(failures[crashed].source, CommError::Crashed { rank, .. } if rank == crashed),
        "the crashed rank reports its own crash: {:?}",
        failures[crashed]
    );
    assert!(
        failures
            .iter()
            .enumerate()
            .any(|(r, e)| r != crashed && e.source.peer() == Some(crashed)),
        "some survivor must name rank {crashed} as the failed peer: {failures:?}"
    );
    let located = failures
        .iter()
        .find(|e| e.context.is_some())
        .expect("at least one failure carries (phase, round) context");
    let msg = located.to_string();
    assert!(
        msg.contains("round") && (msg.contains("forward") || msg.contains("backward")),
        "failure must name the phase and ring round: {msg}"
    );
}

#[test]
fn fault_injection_is_deterministic_for_a_fixed_seed() {
    let run = || {
        let plan = FaultPlan::new(fault_seed())
            .delay_link(0, 1, 0.9, 0.3)
            .drop_msg(1, 0, 1)
            .recv_deadline(1.0);
        let world = World::with_faults(Topology::single_node(2), plan);
        let outs = world.run_faulty::<_, CommError, _>(|comm| {
            let peer = 1 - comm.rank();
            for _ in 0..3 {
                comm.try_send_vec(peer, &[comm.rank() as f32])?;
                comm.try_recv_vec(peer)?;
            }
            Ok(())
        });
        outs.iter()
            .map(|o| (o.rank, format!("{:?}", o.result), o.time.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed must reproduce the same failures");
}

#[test]
fn transient_faults_split_into_healed_vs_escalated() {
    // One plan, two fates: the drop on 0→1 is transient (a single lost
    // transmission — the transport heals it), while the 10-second flap on
    // 0→2 outlives the whole retry budget (the transport gives up and the
    // failure escalates to the receiver). The counters must record that
    // split exactly: one healed incident, one give-up, and a receiver
    // timeout only where healing failed.
    let tp = TransportPolicy::default();
    let plan = |reliable: bool| {
        let p = FaultPlan::new(fault_seed())
            .drop_msg(0, 1, 0)
            .flap_link(0, 2, 0.0, 10.0)
            .recv_deadline(1.0);
        if reliable {
            p.reliable()
        } else {
            p
        }
    };
    let run = |reliable: bool| {
        let world = World::with_faults(Topology::single_node(3), plan(reliable));
        world.run_faulty::<_, CommError, _>(|comm| match comm.rank() {
            0 => {
                comm.try_send_vec(1, &[4.0, 5.0])?;
                comm.try_send_vec(2, &[6.0, 7.0])?;
                Ok(vec![])
            }
            1 => comm.try_recv_vec(0),
            _ => comm.try_recv_vec(0),
        })
    };

    let healed = run(true);
    assert_eq!(
        healed[1].result.as_deref(),
        Ok(&[4.0, 5.0][..]),
        "the transient drop must heal invisibly"
    );
    assert!(
        matches!(
            healed[2].result,
            Err(CommError::Timeout {
                rank: 2,
                src: 0,
                ..
            })
        ),
        "the unhealable flap must escalate: {:?}",
        healed[2].result
    );
    assert_eq!(healed[0].faults.healed, 1, "one incident healed");
    assert_eq!(healed[0].faults.giveups, 1, "one incident escalated");
    assert_eq!(
        healed[0].faults.retransmits,
        1 + u64::from(tp.max_resends),
        "one resend heals the drop; the flap burns the whole budget"
    );
    assert_eq!(
        healed[1].faults.timeouts, 0,
        "healed link: no receiver timeout"
    );
    assert_eq!(healed[2].faults.timeouts, 1, "escalated link: exactly one");

    // Retries disabled: the same plan reproduces today's escalation path
    // on BOTH links — no retransmissions, both receivers time out.
    let legacy = run(false);
    assert!(matches!(
        legacy[1].result,
        Err(CommError::Timeout {
            rank: 1,
            src: 0,
            ..
        })
    ));
    assert!(matches!(
        legacy[2].result,
        Err(CommError::Timeout {
            rank: 2,
            src: 0,
            ..
        })
    ));
    assert_eq!(legacy[0].faults.retransmits, 0);
    assert_eq!(legacy[0].faults.healed, 0);
    assert_eq!(legacy[0].faults.giveups, 0);
}

#[test]
fn corrupted_checkpoint_is_rejected_on_load() {
    let cfg = ModelConfig::tiny();
    let m = Model::new(cfg, 99);
    let dir = std::env::temp_dir().join(format!("burstengine-corrupt-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.ckpt");
    m.save(&path).unwrap();
    // Flip one payload byte — a single bit of rot anywhere in the file.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let err = Model::load(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("checksum"),
        "rejection must name the checksum: {err}"
    );
    std::fs::remove_file(&path).ok();
}
