//! Elastic shrink-recovery integration tests: a rank that dies mid-ring is
//! evicted by the survivors, its sequence shard is recovered from
//! checkpoint data, and the re-run on the shrunken ring must be
//! **bit-identical** to a run that started with the smaller world — the
//! paper's fine-grained ring schedules made fault-tolerant without losing
//! numerical exactness.

use burstengine::dattn::ring::{try_burst_backward, try_ring_forward, AttnShard, BackwardInputs};
use burstengine::prelude::*;
use std::path::PathBuf;

const N: usize = 24;
const D: usize = 8;

fn globals() -> (Mat, Mat, Mat, Mat) {
    (
        randn_mat(N, D, 0.7, 1),
        randn_mat(N, D, 0.7, 2),
        randn_mat(N, D, 0.7, 3),
        randn_mat(N, D, 0.8, 4),
    )
}

fn scale() -> f32 {
    1.0 / (D as f32).sqrt()
}

/// Rank `r`'s zigzag shard of the globals under a `world`-rank partition.
fn shard_of(world: usize, r: usize) -> (Mat, Mat, Mat, Mat) {
    let (q, k, v, go) = globals();
    let idx = Layout::Zigzag.indices(N, world, r);
    (
        q.gather_rows(&idx),
        k.gather_rows(&idx),
        v.gather_rows(&idx),
        go.gather_rows(&idx),
    )
}

/// Reference: BurstAttention forward+backward on a fresh `world`-rank
/// cluster that never saw a fault. Returns per-position `(O, Lse, dQ, dK,
/// dV)`.
fn fresh_small_world(world: usize) -> Vec<(Mat, Vec<f32>, Mat, Mat, Mat)> {
    let w = World::new(Topology::single_node(world));
    w.run_results(|comm| {
        let (q, k, v, go) = shard_of(world, comm.rank());
        let shard = AttnShard {
            q: &q,
            k: &k,
            v: &v,
            scale: scale(),
            mask: &AttnMask::Causal,
            layout: Layout::Zigzag,
            seq_len: N,
            cost: CostModel::free(),
            max_token: None,
            skip: false,
        };
        let ring = Ring::global(comm);
        let fwd = try_ring_forward(comm, &ring, &shard).expect("clean forward");
        let back = BackwardInputs {
            o: &fwd.o,
            lse: &fwd.lse,
            grad_o: &go,
        };
        let (dq, dk, dv) =
            try_burst_backward(comm, &ring, &shard, &back, OverlapMode::Fine).expect("clean bwd");
        (fwd.o, fwd.lse, dq, dk, dv)
    })
}

/// Run elastic attention on a possibly-faulty `world`-rank cluster. Each
/// rank returns its output plus the list of original-owner shards its
/// checkpoint loader was asked for.
#[allow(clippy::type_complexity)]
fn elastic_run(
    world: &World,
    orig_world: usize,
) -> Vec<burstengine::comm::RankOutput<Result<(ElasticAttnOut, Vec<usize>), AttnFailure>>> {
    world.run_faulty::<_, AttnFailure, _>(|comm| {
        let mut m = Membership::new(comm.world_size());
        let policy = RetryPolicy::default();
        let (q, k, v, go) = shard_of(orig_world, comm.rank());
        let mut loaded: Vec<usize> = Vec::new();
        let out = {
            let mut load = |r: usize| {
                loaded.push(r);
                shard_of(orig_world, r)
            };
            try_elastic_attention(
                comm,
                &mut m,
                &q,
                &k,
                &v,
                &go,
                scale(),
                &AttnMask::Causal,
                Layout::Zigzag,
                N,
                &CostModel::free(),
                &mut load,
                &policy,
            )?
        };
        Ok((out, loaded))
    })
}

/// Original owners (under the `orig`-rank partition) of the tokens rank
/// `me` holds at ring position `pos` of a `now`-rank partition — what an
/// exact loader must fetch, and nothing more.
fn needed_owners(orig: usize, now: usize, pos: usize, me: usize) -> Vec<usize> {
    let mut home = [usize::MAX; N];
    for r in 0..orig {
        for t in Layout::Zigzag.indices(N, orig, r) {
            home[t] = r;
        }
    }
    let mut owners: Vec<usize> = Layout::Zigzag
        .indices(N, now, pos)
        .into_iter()
        .map(|t| home[t])
        .filter(|&o| o != me)
        .collect();
    owners.sort_unstable();
    owners.dedup();
    owners
}

#[test]
fn mid_ring_crash_shrinks_to_a_bit_identical_small_world_run() {
    // Rank 2 of 4 dies mid-ring. The three survivors must evict it,
    // re-partition (pulling missing rows from checkpoint shards), and
    // produce output bit-identical to a fresh 3-rank run.
    let plan = FaultPlan::new(7).crash_at_op(2, 5).recv_deadline(60.0);
    let world = World::with_faults(Topology::single_node(4), plan);
    let outs = elastic_run(&world, 4);

    match &outs[2].result {
        Err(f) => {
            assert!(
                matches!(f.source, CommError::Crashed { rank: 2, .. }),
                "dead rank reports its own crash: {f:?}"
            );
            assert!(
                f.source.at_time().is_some(),
                "the failure must carry its virtual time"
            );
        }
        Ok(_) => panic!("rank 2 was scheduled to die"),
    }

    let reference = fresh_small_world(3);
    for (pos, &r) in [0usize, 1, 3].iter().enumerate() {
        let (out, loaded) = outs[r].result.as_ref().expect("survivor completes");
        assert_eq!(out.evicted, vec![2], "rank {r}");
        assert_eq!(out.epoch, 1, "one eviction bumps the epoch once");
        assert_eq!(out.attempts, 2, "full-world try, then the shrunken ring");
        assert_eq!(out.idx, Layout::Zigzag.indices(N, 3, pos));

        // Bit-identity against the never-failed 3-rank run.
        let (o, lse, dq, dk, dv) = &reference[pos];
        assert_eq!(&out.o, o, "rank {r}: O");
        assert_eq!(&out.lse, lse, "rank {r}: Lse");
        assert_eq!(&out.dq, dq, "rank {r}: dQ");
        assert_eq!(&out.dk, dk, "rank {r}: dK");
        assert_eq!(&out.dv, dv, "rank {r}: dV");

        // IO accounting: the loader is asked for exactly the shards whose
        // rows this rank's new partition needs — no full-state broadcast.
        let expect = needed_owners(4, 3, pos, r);
        let mut got = loaded.clone();
        got.sort_unstable();
        assert_eq!(got, expect, "rank {r} must load only the shards it needs");
        assert_eq!(out.shards_loaded, expect.len(), "rank {r}");
        assert!(
            !loaded.contains(&r),
            "rank {r} must never reload its own shard"
        );
    }
}

#[test]
fn two_ranks_dying_in_the_same_round_still_converge() {
    let plan = FaultPlan::new(13)
        .crash_at_op(1, 5)
        .crash_at_op(3, 5)
        .recv_deadline(60.0);
    let world = World::with_faults(Topology::single_node(4), plan);
    let outs = elastic_run(&world, 4);

    for dead in [1usize, 3] {
        assert!(
            matches!(
                &outs[dead].result,
                Err(f) if matches!(f.source, CommError::Crashed { .. })
            ),
            "rank {dead} was scheduled to die: {:?}",
            outs[dead].result
        );
    }
    let reference = fresh_small_world(2);
    for (pos, &r) in [0usize, 2].iter().enumerate() {
        let (out, _) = outs[r].result.as_ref().expect("survivor completes");
        let mut evicted = out.evicted.clone();
        evicted.sort_unstable();
        assert_eq!(evicted, vec![1, 3], "rank {r}");
        assert!(
            out.attempts <= 3,
            "both deaths must be absorbed within two shrink rounds, took {}",
            out.attempts
        );
        let (o, lse, dq, dk, dv) = &reference[pos];
        assert_eq!(&out.o, o, "rank {r}: O");
        assert_eq!(&out.lse, lse, "rank {r}: Lse");
        assert_eq!(&out.dq, dq, "rank {r}: dQ");
        assert_eq!(&out.dk, dk, "rank {r}: dK");
        assert_eq!(&out.dv, dv, "rank {r}: dV");
    }
}

#[test]
fn crash_on_the_very_first_ring_op_is_recovered() {
    let plan = FaultPlan::new(17).crash_at_op(1, 0).recv_deadline(60.0);
    let world = World::with_faults(Topology::single_node(3), plan);
    let outs = elastic_run(&world, 3);

    let reference = fresh_small_world(2);
    for (pos, &r) in [0usize, 2].iter().enumerate() {
        let (out, _) = outs[r].result.as_ref().expect("survivor completes");
        assert_eq!(out.evicted, vec![1], "rank {r}");
        let (o, lse, dq, dk, dv) = &reference[pos];
        assert_eq!(&out.o, o, "rank {r}: O");
        assert_eq!(&out.lse, lse, "rank {r}: Lse");
        assert_eq!(&out.dq, dq, "rank {r}: dQ");
        assert_eq!(&out.dk, dk, "rank {r}: dK");
        assert_eq!(&out.dv, dv, "rank {r}: dV");
    }
}

#[test]
fn clean_elastic_run_loads_nothing_and_matches_plain_burst_attention() {
    let world = World::new(Topology::single_node(4));
    let outs = elastic_run(&world, 4);
    let reference = fresh_small_world(4);
    for r in 0..4 {
        let (out, loaded) = outs[r].result.as_ref().expect("no faults");
        assert_eq!(out.attempts, 1);
        assert_eq!(out.epoch, 0);
        assert!(out.evicted.is_empty());
        assert_eq!(out.shards_loaded, 0, "a clean run must not touch storage");
        assert!(loaded.is_empty());
        let (o, lse, dq, dk, dv) = &reference[r];
        assert_eq!(&out.o, o);
        assert_eq!(&out.lse, lse);
        assert_eq!(&out.dq, dq);
        assert_eq!(&out.dk, dk);
        assert_eq!(&out.dv, dv);
    }
}

#[test]
fn slow_compute_straggler_stretches_only_the_afflicted_ranks_clock() {
    let plan = FaultPlan::new(1).slow_compute(1, 4.0);
    let world = World::with_faults(Topology::single_node(2), plan);
    let outs = world.run(|comm| {
        comm.advance_compute(1.0);
        comm.time()
    });
    assert_eq!(outs[0].result, 1.0, "healthy rank pays nominal time");
    assert_eq!(outs[1].result, 4.0, "straggler pays the slowdown factor");
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("burstengine-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn poisoned_gradient_is_skipped_in_lockstep_without_a_restart() {
    let cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
    let steps = 4;
    let dir = scratch("poison-skip");
    let rcfg = RecoveryCfg {
        every: 2,
        path: dir.join("train.ckpt"),
        max_restarts: 0,
        sharded: false,
        shrink: false,
        in_step: false,
        quiet: true,
    };
    let report = train_with_recovery(
        |_, _| {
            let plan = FaultPlan::new(3).poison_grad(1, 1, f32::NAN);
            World::with_faults(Topology::single_node(2), plan)
        },
        &cfg,
        steps,
        &rcfg,
    )
    .expect("a poisoned gradient must not kill the job");
    assert_eq!(report.restarts, 0, "skip-and-rescale needs no restart");
    assert_eq!(report.skipped_steps, 1, "exactly the poisoned step skipped");
    assert_eq!(report.losses.len(), steps);
    assert!(
        report.losses.iter().all(|l| l.is_finite()),
        "gradient poison never reaches the loss history: {:?}",
        report.losses
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poisoned_micro_batch_is_rolled_back_and_rescaled() {
    let mut cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
    cfg.grad_accum = 2;
    let steps = 3;
    let dir = scratch("poison-micro");
    let rcfg = RecoveryCfg {
        every: 2,
        path: dir.join("train.ckpt"),
        max_restarts: 0,
        sharded: false,
        shrink: false,
        in_step: false,
        quiet: true,
    };
    let report = train_with_recovery(
        |_, _| {
            let plan = FaultPlan::new(5).poison_grad_micro(0, 1, 0, f32::INFINITY);
            World::with_faults(Topology::single_node(2), plan)
        },
        &cfg,
        steps,
        &rcfg,
    )
    .expect("a poisoned micro-batch must not kill the job");
    assert_eq!(report.restarts, 0);
    assert_eq!(
        report.skipped_steps, 0,
        "gradient accumulation salvages the step"
    );
    assert_eq!(report.dropped_micros, 1, "one micro rolled back");
    assert_eq!(report.losses.len(), steps);
    assert!(report.losses.iter().all(|l| l.is_finite()));
    std::fs::remove_dir_all(&dir).ok();
}

/// Like [`elastic_run`] but with explicit [`ElasticOpts`] — the
/// topology-aware double-ring entry point.
#[allow(clippy::type_complexity)]
fn elastic_run_opts(
    world: &World,
    orig_world: usize,
    opts: ElasticOpts,
) -> Vec<burstengine::comm::RankOutput<Result<(ElasticAttnOut, Vec<usize>), AttnFailure>>> {
    world.run_faulty::<_, AttnFailure, _>(move |comm| {
        let mut m = Membership::new(comm.world_size());
        let policy = RetryPolicy::default();
        let (q, k, v, go) = shard_of(orig_world, comm.rank());
        let mut loaded: Vec<usize> = Vec::new();
        let out = {
            let mut load = |r: usize| {
                loaded.push(r);
                shard_of(orig_world, r)
            };
            try_elastic_attention_opts(
                comm,
                &mut m,
                &q,
                &k,
                &v,
                &go,
                scale(),
                &AttnMask::Causal,
                Layout::Zigzag,
                N,
                &CostModel::free(),
                &mut load,
                &policy,
                opts,
            )?
        };
        Ok((out, loaded))
    })
}

/// Reference: double-ring forward + Algorithm 2 backward on a fresh
/// `nodes × gpn` cluster that never saw a fault.
fn fresh_double_ring_world(nodes: usize, gpn: usize) -> Vec<(Mat, Vec<f32>, Mat, Mat, Mat)> {
    let w = World::new(Topology::a800(nodes, gpn));
    let g = nodes * gpn;
    w.run_results(|comm| {
        let (q, k, v, go) = shard_of(g, comm.rank());
        let shard = AttnShard {
            q: &q,
            k: &k,
            v: &v,
            scale: scale(),
            mask: &AttnMask::Causal,
            layout: Layout::Zigzag,
            seq_len: N,
            cost: CostModel::free(),
            max_token: None,
            skip: false,
        };
        let fwd = burstengine::dattn::double_ring::try_double_ring_forward(comm, &shard)
            .expect("clean double-ring forward");
        let back = BackwardInputs {
            o: &fwd.o,
            lse: &fwd.lse,
            grad_o: &go,
        };
        let (dq, dk, dv) =
            burstengine::dattn::double_ring::try_double_ring_backward_alg2(comm, &shard, &back)
                .expect("clean double-ring backward");
        (fwd.o, fwd.lse, dq, dk, dv)
    })
}

#[test]
fn ragged_survivors_fall_back_to_the_flat_ring_bit_exactly() {
    // Rank 1 of a 2-node × 2-GPU cluster dies mid-double-ring. The
    // survivor set [0, 2, 3] is ragged across nodes (1 GPU on node 0,
    // 2 on node 1), so no inner/outer split exists: the re-run must land
    // on the flat ring and still be bit-identical to a fresh 3-rank flat
    // run.
    let plan = FaultPlan::new(19).crash_at_op(1, 5).recv_deadline(60.0);
    let world = World::with_faults(Topology::a800(2, 2), plan);
    let opts = ElasticOpts {
        double_ring: true,
        warm_start: false,
        skip_masked_rounds: false,
    };
    let outs = elastic_run_opts(&world, 4, opts);

    let reference = fresh_small_world(3);
    for (pos, &r) in [0usize, 2, 3].iter().enumerate() {
        let (out, _) = outs[r].result.as_ref().expect("survivor completes");
        assert_eq!(out.evicted, vec![1], "rank {r}");
        assert!(
            out.flat_fallbacks >= 1,
            "rank {r}: ragged [0,2,3] has no node-local split, got {} fallbacks",
            out.flat_fallbacks
        );
        let (o, lse, dq, dk, dv) = &reference[pos];
        assert_eq!(&out.o, o, "rank {r}: O");
        assert_eq!(&out.lse, lse, "rank {r}: Lse");
        assert_eq!(&out.dq, dq, "rank {r}: dQ");
        assert_eq!(&out.dk, dk, "rank {r}: dK");
        assert_eq!(&out.dv, dv, "rank {r}: dV");
    }
}

#[test]
fn node_balanced_survivors_keep_the_double_ring() {
    // Ranks 1 and 3 die, one per node. The survivor set [0, 2] is
    // node-balanced (1 GPU per node), so the topology-aware schedule must
    // survive the shrink: the final attempt runs a genuine 2-node × 1-GPU
    // double ring, bit-identical to a fresh cluster of that shape.
    let plan = FaultPlan::new(29)
        .crash_at_op(1, 5)
        .crash_at_op(3, 9)
        .recv_deadline(60.0);
    let world = World::with_faults(Topology::a800(2, 2), plan);
    let opts = ElasticOpts {
        double_ring: true,
        warm_start: false,
        skip_masked_rounds: false,
    };
    let outs = elastic_run_opts(&world, 4, opts);

    let reference = fresh_double_ring_world(2, 1);
    for (pos, &r) in [0usize, 2].iter().enumerate() {
        let (out, _) = outs[r].result.as_ref().expect("survivor completes");
        let mut evicted = out.evicted.clone();
        evicted.sort_unstable();
        assert_eq!(evicted, vec![1, 3], "rank {r}");
        let (o, lse, dq, dk, dv) = &reference[pos];
        assert_eq!(&out.o, o, "rank {r}: O");
        assert_eq!(&out.lse, lse, "rank {r}: Lse");
        assert_eq!(&out.dq, dq, "rank {r}: dQ");
        assert_eq!(&out.dk, dk, "rank {r}: dK");
        assert_eq!(&out.dv, dv, "rank {r}: dV");
    }
}

/// Engine config whose sequence length keeps the zigzag layout valid for
/// every world size the elastic tests pass through: 48 is divisible by
/// `2·g` for g ∈ {2, 3, 4}.
fn elastic_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
    cfg.model.seq_len = 48;
    cfg
}

/// Reference segment: steps `start..end` on a fresh, never-faulted
/// `g`-rank world, warm-started from `warm` flat state (`None` = fresh
/// model). Returns the segment's losses and the final flat state, after
/// checking all ranks agree bit-for-bit.
fn segment(
    g: usize,
    warm: Option<&[f32]>,
    start: usize,
    end: usize,
    cfg: &EngineConfig,
) -> (Vec<f32>, Vec<f32>) {
    let w = World::new(Topology::single_node(g));
    let mut outs = w.run_results(|comm| {
        let mut model = Model::new(cfg.model, cfg.seed);
        if let Some(f) = warm {
            model.load_flat_state(f);
        }
        let out = burstengine::model::engine::run_span(
            comm,
            cfg,
            &mut model,
            start,
            end,
            |_, _, _, _| {},
        )
        .expect("clean reference segment");
        (out.losses, model.flat_state())
    });
    let first = outs.remove(0);
    for o in &outs {
        assert_eq!(o.0, first.0, "reference ranks disagree on losses");
        assert_eq!(o.1, first.1, "reference ranks disagree on state");
    }
    first
}

/// The op count rank `victim` has accumulated after `s` clean elastic
/// steps — used to aim a crash inside a specific step.
fn elastic_ops_after(cfg: &EngineConfig, g: usize, victim: usize, s: usize) -> u64 {
    let outs = World::new(Topology::single_node(g)).run_results(|comm| {
        let mut model = Model::new(cfg.model, cfg.seed);
        run_span_elastic(comm, cfg, &mut model, 0, s, &[], &ElasticCfg::default())
            .expect("clean elastic probe");
        comm.op_count()
    });
    outs[victim]
}

#[test]
fn in_step_recovery_replays_only_the_failed_step_bit_exactly() {
    let cfg = elastic_cfg();
    let steps = 4;
    let f = 2; // the step the crash interrupts
    let victim = 2;
    // Aim the crash mid-step: between the victim's op counts at the end of
    // step f-1 and the end of step f.
    let before = elastic_ops_after(&cfg, 4, victim, f);
    let after = elastic_ops_after(&cfg, 4, victim, f + 1);
    assert!(after > before, "a step must cost comm ops");
    let crash_op = (before + after) / 2;

    let dir = scratch("in-step");
    let rcfg = RecoveryCfg {
        every: 100,
        path: dir.clone(),
        max_restarts: 0,
        sharded: true,
        shrink: false,
        in_step: true,
        quiet: true,
    };
    let report = train_with_recovery(
        |_, _| {
            let plan = FaultPlan::new(11)
                .crash_at_op(victim, crash_op)
                .recv_deadline(60.0);
            World::with_faults(Topology::single_node(4), plan)
        },
        &cfg,
        steps,
        &rcfg,
    )
    .expect("in-step recovery must finish the job without a restart");

    assert_eq!(
        report.restarts, 0,
        "the failure is absorbed inside the step"
    );
    assert_eq!(report.evicted_ranks, vec![victim]);
    assert!(report.rejoined_ranks.is_empty());
    assert_eq!(
        report.steps_replayed, 1,
        "only the interrupted step re-runs"
    );
    assert_eq!(
        report.failures.len(),
        1,
        "the absorbed crash is still reported"
    );
    assert_eq!(report.skipped_steps, 0);

    // Bit-identity against the segmented reference: a fresh 4-rank world
    // over [0, f), then a fresh 3-rank world over [f, steps) warm-started
    // from the first segment's final state.
    let (la, flat_a) = segment(4, None, 0, f, &cfg);
    let (lb, flat_b) = segment(3, Some(&flat_a), f, steps, &cfg);
    let mut expect = la;
    expect.extend(lb);
    assert_eq!(
        report.losses, expect,
        "losses must match the segmented reference bit-for-bit"
    );
    assert_eq!(
        report.final_model.flat_state(),
        flat_b,
        "parameters must match the segmented reference bit-for-bit"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn leave_and_rejoin_runs_bit_identical_to_the_segmented_reference() {
    // Rank 2 of 3 leaves before step 1 and rejoins before step 3,
    // warm-starting from the checkpoint the two survivors committed. The
    // whole run — 3-rank, then 2-rank, then regrown 3-rank — must be
    // bit-identical to three fresh chained reference worlds.
    let cfg = elastic_cfg();
    let steps = 5;
    let dir = scratch("rejoin");
    let rcfg = RecoveryCfg {
        every: 2,
        path: dir.clone(),
        max_restarts: 0,
        sharded: true,
        shrink: false,
        in_step: true,
        quiet: true,
    };
    let report = train_with_recovery(
        |_, _| {
            let plan = FaultPlan::new(23).leave_at(2, 1).join_at(2, 3);
            World::with_faults(Topology::single_node(3), plan)
        },
        &cfg,
        steps,
        &rcfg,
    )
    .expect("a voluntary leave/rejoin cycle must not kill the job");

    assert_eq!(report.restarts, 0);
    assert_eq!(report.rejoined_ranks, vec![2]);
    assert!(
        report.evicted_ranks.is_empty(),
        "a voluntary leave is not an eviction"
    );
    assert_eq!(
        report.steps_replayed, 0,
        "no step is lost to voluntary churn"
    );

    let (la, flat_a) = segment(3, None, 0, 1, &cfg);
    let (lb, flat_b) = segment(2, Some(&flat_a), 1, 3, &cfg);
    let (lc, flat_c) = segment(3, Some(&flat_b), 3, 5, &cfg);
    let mut expect = la;
    expect.extend(lb);
    expect.extend(lc);
    assert_eq!(report.losses, expect, "losses must chain bit-exactly");
    assert_eq!(report.final_model.flat_state(), flat_c);

    // The manifest left on disk describes the regrown 3-rank world.
    let man = burstengine::model::checkpoint_shard::read_manifest(&dir).unwrap();
    assert_eq!(man.world_size, 3);
    assert_eq!(man.step as usize, steps);
    assert_eq!(man.epoch, 2, "one leave + one join bump the epoch twice");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeded_churn_storm_completes_with_bounded_replay() {
    let cfg = elastic_cfg();
    let steps = 8;
    // The CI `elastic-churn` job sweeps FAULT_SEED (which storm) and
    // CHURN_EVENTS (how dense the leave/join schedule is); both default to
    // the committed storm so a plain `cargo test` stays deterministic.
    let events: usize = std::env::var("CHURN_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .map_or(6, |e: usize| e.clamp(1, 6));
    let seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);

    // The storm schedule is a pure function of the seed; regenerate it
    // here to know what to expect.
    let schedule = FaultPlan::new(seed).churn_storm(4, steps as u64, events);
    assert!(
        schedule.churn_events().len() >= events,
        "the storm must schedule at least {events} membership events"
    );
    let mut expect_rejoined: Vec<usize> = schedule
        .churn_events()
        .iter()
        .filter(|e| e.kind == ChurnKind::Join)
        .map(|e| e.rank)
        .collect();
    expect_rejoined.sort_unstable();
    expect_rejoined.dedup();

    let dir = scratch(&format!("churn-storm-{seed}-{events}"));
    let rcfg = RecoveryCfg {
        every: 2,
        path: dir.clone(),
        max_restarts: 0,
        sharded: true,
        shrink: false,
        in_step: true,
        // CI sets RECOVERY_SUMMARY to collect the one-line `[recovery]`
        // summaries as a job artifact.
        quiet: std::env::var("RECOVERY_SUMMARY").is_err(),
    };
    let report = train_with_recovery(
        |_, _| {
            let plan = FaultPlan::new(seed).churn_storm(4, steps as u64, events);
            World::with_faults(Topology::single_node(4), plan)
        },
        &cfg,
        steps,
        &rcfg,
    )
    .expect("the churn storm must not kill the job");

    assert_eq!(report.restarts, 0, "churn is absorbed without restarts");
    assert!(
        report.steps_replayed <= events,
        "replay is bounded by the events injected: {} > {events}",
        report.steps_replayed
    );
    let mut rejoined = report.rejoined_ranks.clone();
    rejoined.sort_unstable();
    rejoined.dedup();
    assert_eq!(
        rejoined, expect_rejoined,
        "every scheduled join is admitted"
    );
    assert_eq!(report.losses.len(), steps);
    assert!(
        report.losses.iter().all(|l| l.is_finite()),
        "churn never corrupts the loss history: {:?}",
        report.losses
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_checkpoints_and_shrink_recover_a_dead_rank() {
    let cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
    let steps = 6;
    // Probe a clean 2-rank run for its op count so the crash lands at ~2/3
    // of the job — safely after the step-2 checkpoint.
    let probe = World::new(Topology::single_node(2)).run_results(|comm| {
        let (losses, _) = burstengine::model::engine::run_rank(comm, &cfg, steps);
        (losses, comm.op_count())
    });
    let crash_op = probe[1].1 * 2 / 3;
    assert!(crash_op > 0);

    let dir = scratch("sharded-shrink");
    let rcfg = RecoveryCfg {
        every: 2,
        path: dir.clone(),
        max_restarts: 2,
        sharded: true,
        shrink: true,
        in_step: false,
        quiet: true,
    };
    let report = train_with_recovery(
        |attempt, shrink_to| {
            let size = shrink_to.unwrap_or(2);
            if attempt == 0 {
                let plan = FaultPlan::new(7)
                    .crash_at_op(1, crash_op)
                    .recv_deadline(60.0);
                World::with_faults(Topology::single_node(size), plan)
            } else {
                World::new(Topology::single_node(size))
            }
        },
        &cfg,
        steps,
        &rcfg,
    )
    .expect("shrink recovery must finish the job");

    assert_eq!(report.restarts, 1);
    assert_eq!(report.evicted_ranks, vec![1], "the dead rank is evicted");
    assert_eq!(
        report.shards_reloaded, 2,
        "the restart restores exactly the two shards of the 2-rank manifest"
    );
    assert_eq!(report.losses.len(), steps);
    assert!(report.losses.iter().all(|l| l.is_finite()));
    // The manifest left on disk describes the final, shrunken world.
    let man = burstengine::model::checkpoint_shard::read_manifest(&dir).unwrap();
    assert_eq!(man.world_size, 1, "final checkpoint is sharded for 1 rank");
    assert_eq!(man.step as usize, steps);
    assert_eq!(man.epoch, 1, "one eviction recorded");
    std::fs::remove_dir_all(&dir).ok();
}
