//! Elastic checkpoint-recovery integration tests: a training job that loses
//! a rank mid-run, restores the last good checkpoint on a fresh world and
//! replays must be **bit-identical** to a job that never failed — the
//! operational guarantee behind the paper's week-long 1M-token runs.

use burstengine::model::checkpoint_io::tmp_path;
use burstengine::model::engine::run_rank;
use burstengine::prelude::*;
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("burstengine-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn recovered_run_is_bit_identical_to_uninterrupted() {
    let cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
    let steps = 6;
    let topo = || Topology::single_node(2);

    // Reference: an uninterrupted run, plus the op count a full run needs so
    // the crash below can be planted at ~2/3 of the job.
    let probe = World::new(topo()).run_results(|comm| {
        let (losses, _) = run_rank(comm, &cfg, steps);
        (losses, comm.op_count())
    });
    let ref_losses = probe[0].0.clone();
    let crash_op = probe[1].1 * 2 / 3;
    assert!(crash_op > 0, "probe run must perform communication");

    let dir = scratch("recovery");
    let rcfg = RecoveryCfg {
        every: 2,
        path: dir.join("train.ckpt"),
        max_restarts: 3,
        sharded: false,
        shrink: false,
        in_step: false,
        quiet: true,
    };
    // Attempt 0 runs on a cluster where rank 1 dies mid-job; every later
    // attempt gets a healthy replacement cluster.
    let report = train_with_recovery(
        |attempt, _| {
            if attempt == 0 {
                let plan = FaultPlan::new(7)
                    .crash_at_op(1, crash_op)
                    .recv_deadline(60.0);
                World::with_faults(topo(), plan)
            } else {
                World::new(topo())
            }
        },
        &cfg,
        steps,
        &rcfg,
    )
    .expect("recovery must succeed within max_restarts");

    assert!(
        report.restarts >= 1,
        "the planted crash must trigger a restart"
    );
    assert_eq!(report.restarts, report.failures.len());
    assert!(
        report.failures.iter().all(|e| matches!(
            e,
            CommError::Crashed { .. } | CommError::PeerLost { .. } | CommError::Timeout { .. }
        )),
        "every failure must be typed: {:?}",
        report.failures
    );
    assert_eq!(
        report.losses, ref_losses,
        "recovered loss history must be bit-identical to the uninterrupted run"
    );

    // A never-failing recovery run reproduces the same final weights —
    // compare the recovered model against it bit for bit.
    let clean_rcfg = RecoveryCfg {
        every: 2,
        path: dir.join("clean.ckpt"),
        max_restarts: 0,
        sharded: false,
        shrink: false,
        in_step: false,
        quiet: true,
    };
    let clean = train_with_recovery(|_, _| World::new(topo()), &cfg, steps, &clean_rcfg)
        .expect("clean run cannot fail");
    assert_eq!(clean.restarts, 0);
    assert_eq!(clean.losses, ref_losses);
    assert_eq!(
        report.final_model.head.w, clean.final_model.head.w,
        "recovered weights must match the uninterrupted run exactly"
    );
    assert_eq!(
        report.final_model.embed.table.w,
        clean.final_model.embed.table.w
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_survives_a_crash_mid_write() {
    let cfg = EngineConfig::tiny(Backend::Local);
    let dir = scratch("atomic-ckpt");
    let path = dir.join("train.ckpt");
    let ck = TrainCheckpoint {
        step: 3,
        losses: vec![1.5, 1.25, 1.0],
        model: Model::new(cfg.model, 5),
    };
    ck.save(&path).unwrap();
    // A later save dies mid-write: garbage sits in the staging file and the
    // publishing rename never happens. The previous checkpoint must still
    // load, and a fresh save must clean up after itself.
    std::fs::write(tmp_path(&path), b"torn page").unwrap();
    let restored = TrainCheckpoint::load(&path).unwrap();
    assert_eq!(restored.step, 3);
    assert_eq!(restored.losses, ck.losses);
    assert_eq!(restored.model.head.w, ck.model.head.w);
    ck.save(&path).unwrap();
    assert!(
        !tmp_path(&path).exists(),
        "save must reclaim the staging file"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_train_checkpoint_fails_recovery_loudly() {
    let cfg = EngineConfig::tiny(Backend::Ring(Algo::RingFlat));
    let dir = scratch("corrupt-resume");
    let path = dir.join("train.ckpt");
    let ck = TrainCheckpoint {
        step: 2,
        losses: vec![2.0, 1.0],
        model: Model::new(cfg.model, 6),
    };
    ck.save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let rcfg = RecoveryCfg {
        every: 2,
        path: path.clone(),
        max_restarts: 1,
        sharded: false,
        shrink: false,
        in_step: false,
        quiet: true,
    };
    let err = train_with_recovery(|_, _| World::new(Topology::single_node(2)), &cfg, 4, &rcfg)
        .expect_err("resuming from a rotten checkpoint must not silently restart from step 0");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_dir_all(&dir).ok();
}
