//! Cross-crate integration tests: the full BurstEngine pipeline from
//! kernels through the simulated cluster to the analytical models.

use burstengine::model::engine::{synthetic_batch, train, Backend, EngineConfig};
use burstengine::prelude::*;

fn tiny_engine(backend: Backend) -> EngineConfig {
    EngineConfig {
        model: ModelConfig {
            layers: 2,
            d_model: 16,
            heads: 4,
            d_ff: 32,
            vocab: 29,
            seq_len: 32,
            rope: true,
        },
        backend,
        layout: Layout::Zigzag,
        strategy: Strategy::SeqSelective { rho: 0.5 },
        mask: AttnMask::Causal,
        cost: CostModel::a800(),
        fsdp: true,
        offload_optimizer: false,
        grad_accum: 1,
        emulate_bf16: false,
        bf16_activations: false,
        overlap: burst_dattn::OverlapMode::Fine,
        skip_masked_rounds: false,
        adam: AdamCfg::default(),
        seed: 101,
    }
}

#[test]
fn whole_stack_trains_identically_distributed_and_local() {
    // The headline integration invariant: the full engine (zigzag shards,
    // BurstTopo attention, sequence-level selective checkpointing, fused
    // LM loss, FSDP) reproduces a single-device training trajectory.
    let steps = 4;
    let mut local = tiny_engine(Backend::Local);
    local.fsdp = false;
    let reference = train(&World::new(Topology::single_node(1)), &local, steps);
    let dist = train(
        &World::new(Topology::a800(2, 2)),
        &tiny_engine(Backend::Ring(Algo::BurstTopo)),
        steps,
    );
    for (d, l) in dist.losses.iter().zip(&reference.losses) {
        assert!((d - l).abs() / (1.0 + l.abs()) < 5e-3, "{d} vs {l}");
    }
}

#[test]
fn burst_engine_beats_ring_attention_end_to_end_in_virtual_time() {
    let steps = 2;
    let ring = train(
        &World::new(Topology::a800(2, 4)),
        &tiny_engine(Backend::Ring(Algo::RingFlat)),
        steps,
    );
    let burst = train(
        &World::new(Topology::a800(2, 4)),
        &tiny_engine(Backend::Ring(Algo::BurstTopo)),
        steps,
    );
    assert!(
        burst.wall_time < ring.wall_time,
        "burst {} vs ring {}",
        burst.wall_time,
        ring.wall_time
    );
    // And it moves fewer bytes.
    assert!(burst.comm.total_elems() < ring.comm.total_elems());
}

#[test]
fn simulator_and_analytic_model_agree_on_ordering() {
    // The executable simulator (small scale) and the analytical model
    // (paper scale) must rank the ring disciplines identically.
    // -- simulator --
    let n = 64;
    let d = 16;
    let q = randn_mat(n, d, 0.7, 31);
    let k = randn_mat(n, d, 0.7, 32);
    let v = randn_mat(n, d, 0.7, 33);
    let go = randn_mat(n, d, 0.8, 34);
    let measure = |algo: Algo| {
        let world = World::new(Topology::a800(2, 4));
        let (_, makespan, _) = world.run_timed(|comm| {
            let idx = Layout::Zigzag.indices(n, 8, comm.rank());
            run_attention(
                algo,
                comm,
                &q.gather_rows(&idx),
                &k.gather_rows(&idx),
                &v.gather_rows(&idx),
                &go.gather_rows(&idx),
                1.0 / (d as f32).sqrt(),
                &AttnMask::Causal,
                Layout::Zigzag,
                n,
                &CostModel::free(),
            );
        });
        makespan
    };
    let sim_ring = measure(Algo::RingFlat);
    let sim_double = measure(Algo::DoubleRing);
    let sim_burst = measure(Algo::BurstTopo);
    assert!(sim_burst < sim_double && sim_double < sim_ring);
    // -- analytic (Table 1) --
    let c = Cluster::a800(2, 4);
    let t = burstengine::perf::commtime::layer_comm_times(&c, 1 << 20, 4096);
    assert!(t.burst < t.double_ring && t.double_ring < t.ring);
}

#[test]
fn fused_lm_loss_used_by_the_model_matches_kernel_reference() {
    use burstengine::kernels::lmhead::{fused_lm_loss, naive_lm_loss};
    let h = randn_mat(24, 8, 0.8, 41);
    let w = randn_mat(37, 8, 0.8, 42);
    let y: Vec<usize> = (0..24).map(|i| (i * 5) % 37).collect();
    let a = fused_lm_loss(&h, &w, &y);
    let b = naive_lm_loss(&h, &w, &y);
    assert!((a.loss - b.loss).abs() < 1e-5);
    burstengine::tensor::testutil::assert_allclose(&a.grad_h, &b.grad_h, 1e-4, "grad_h");
}

#[test]
fn synthetic_batches_are_deterministic_and_in_vocab() {
    let cfg = ModelConfig::tiny();
    let (t1, y1) = synthetic_batch(&cfg, 3);
    let (t2, _) = synthetic_batch(&cfg, 3);
    assert_eq!(t1, t2);
    assert_eq!(t1.len(), cfg.seq_len);
    assert!(t1.iter().chain(&y1).all(|&t| t < cfg.vocab));
}

#[test]
fn paper_scale_headline_numbers_hold() {
    // The paper's abstract in one test: ≥1.15× speedup and ≥20 % memory
    // saving over the strongest baseline at 14B/1M/32 GPUs, plus 1M+
    // training only BurstEngine can complete at 64 GPUs.
    use burstengine::perf::endtoend::Infeasible;
    let c = Cluster::a800(4, 8);
    let m = PaperModel::llama_14b();
    let mask = AttnMask::Causal;
    let burst = evaluate(
        &Method::BurstEngine(BurstOpts::full()),
        &c,
        &m,
        &mask,
        1 << 20,
    )
    .unwrap();
    let usp = evaluate(&Method::LoongTrainUsp, &c, &m, &mask, 1 << 20).unwrap();
    assert!(burst.tgs / usp.tgs > 1.1, "speedup {}", burst.tgs / usp.tgs);
    assert!(
        1.0 - burst.mem_gb / usp.mem_gb > 0.2,
        "memory saving {}",
        1.0 - burst.mem_gb / usp.mem_gb
    );
    let c64 = Cluster::a800(8, 8);
    assert!(evaluate(
        &Method::BurstEngine(BurstOpts::full()),
        &c64,
        &m,
        &mask,
        2 << 20
    )
    .is_ok());
    for b in [
        Method::MegatronCp,
        Method::DeepSpeedUlysses,
        Method::LoongTrainDoubleRing,
        Method::LoongTrainUsp,
    ] {
        let r = evaluate(&b, &c64, &m, &mask, 2 << 20);
        assert!(
            matches!(r, Err(Infeasible::Oom { .. })),
            "{} should OOM at 14B@2M/64: {r:?}",
            b.name()
        );
    }
}

#[test]
fn prelude_exports_cover_the_readme_workflow() {
    // Compile-time check that the public API surface stays intact.
    let _mask: AttnMask = AttnMask::SlidingWindow { window: 4 };
    let _bs = BlockSparseMask::sliding_window_blocks(4, 4, 2);
    let _stream = SeedStream::new(1);
    let _state = OnlineState::empty(2, 2);
    let _stats = CommStats::default();
    let _link = Link::new(1e-6, 1e9);
    let _ring: Option<Ring> = None;
    let _om = OverlapMode::Fine;
    let _mha = MultiHeadAttention::new(8, 2, 1);
    let _exec = LocalExec::new(AttnMask::Causal, 8);
    let _model = Model::new(ModelConfig::tiny(), 1);
}
