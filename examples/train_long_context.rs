//! End-to-end distributed training with the BurstEngine stack.
//!
//! Trains a small LLaMA-style model on a synthetic next-token task across a
//! simulated 2-node × 2-GPU cluster — full pipeline: zigzag sequence
//! sharding, topology-aware BurstAttention, sequence-level selective
//! checkpointing, fused LM head + loss, FSDP weight gathering and gradient
//! reduction, Adam. Compares the loss trajectory against a single-device
//! run (they match to float noise) and prints throughput metrics.
//!
//! ```text
//! cargo run --release --example train_long_context
//! ```

use burstengine::model::engine::{train, Backend, EngineConfig};
use burstengine::prelude::*;

fn main() {
    let model = ModelConfig {
        layers: 2,
        d_model: 32,
        heads: 4,
        d_ff: 64,
        vocab: 53,
        seq_len: 64,
        rope: true,
    };
    let steps = 10;

    let dist_cfg = EngineConfig {
        model,
        backend: Backend::Ring(Algo::BurstTopo),
        layout: Layout::Zigzag,
        strategy: Strategy::SeqSelective { rho: 0.5 },
        mask: AttnMask::Causal,
        cost: CostModel::a800(),
        fsdp: true,
        offload_optimizer: false,
        grad_accum: 1,
        emulate_bf16: false,
        bf16_activations: false,
        overlap: burst_dattn::OverlapMode::Fine,
        skip_masked_rounds: false,
        adam: AdamCfg {
            lr: 2e-3,
            ..AdamCfg::default()
        },
        seed: 7,
    };

    println!(
        "training a {}-layer model ({} params) on {} tokens across 4 simulated GPUs",
        model.layers,
        model.param_count(),
        model.seq_len
    );

    let world = World::new(Topology::a800(2, 2));
    let metrics = train(&world, &dist_cfg, steps);

    // Single-device reference trajectory.
    let mut local_cfg = dist_cfg.clone();
    local_cfg.backend = Backend::Local;
    local_cfg.fsdp = false;
    let reference = train(&World::new(Topology::single_node(1)), &local_cfg, steps);

    println!("\n step   distributed      local        |Δ|");
    for (i, (d, l)) in metrics.losses.iter().zip(&reference.losses).enumerate() {
        println!("{i:>5}   {d:>11.5}  {l:>9.5}  {:>9.2e}", (d - l).abs());
        assert!(
            (d - l).abs() / (1.0 + l.abs()) < 5e-3,
            "distributed training must match the single-device trajectory"
        );
    }
    println!(
        "\nloss {:.4} → {:.4} over {steps} steps",
        metrics.losses[0],
        metrics.losses.last().unwrap()
    );
    println!(
        "virtual step time {:.2} ms · TGS {:.0} tokens/s/GPU · peak activations {} KiB/rank",
        metrics.wall_time / steps as f64 * 1e3,
        metrics.tgs,
        metrics.peak_activation_bytes / 1024
    );
    println!(
        "communication: {:.1} KiB intra-node, {:.1} KiB inter-node",
        metrics.comm.intra_bytes / 1024.0,
        metrics.comm.inter_bytes / 1024.0
    );
    println!("OK");
}
