//! Quickstart: distributed BurstAttention on a simulated cluster.
//!
//! Runs a causal attention forward + backward with the full BurstAttention
//! stack (topology-aware double ring, Algorithm 2 backward, zigzag workload
//! balance) on a simulated 2-node × 4-GPU cluster, verifies the result
//! against single-device flash attention, and prints the communication and
//! virtual-time statistics the paper's claims are made of.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use burstengine::kernels::flash_forward;
use burstengine::prelude::*;

fn main() {
    let n = 256; // global sequence length
    let d = 32; // head dimension
    let topo = Topology::a800(2, 4);
    let g = topo.world_size();
    println!("BurstAttention quickstart: {n} tokens on {g} simulated GPUs (2 nodes)");

    // Global problem, deterministic.
    let q = randn_mat(n, d, 0.7, 1);
    let k = randn_mat(n, d, 0.7, 2);
    let v = randn_mat(n, d, 0.7, 3);
    let grad_o = randn_mat(n, d, 0.8, 4);
    let scale = 1.0 / (d as f32).sqrt();
    let mask = AttnMask::Causal;

    // Single-device reference.
    let idx: Vec<usize> = (0..n).collect();
    let reference = flash_forward(&q, &k, &v, scale, &mask, &idx, &idx);

    // Distributed run: every rank gets its zigzag shard.
    let world = World::new(topo);
    let outs = world.run(|comm| {
        let my = Layout::Zigzag.indices(n, g, comm.rank());
        run_attention(
            Algo::BurstTopo,
            comm,
            &q.gather_rows(&my),
            &k.gather_rows(&my),
            &v.gather_rows(&my),
            &grad_o.gather_rows(&my),
            scale,
            &mask,
            Layout::Zigzag,
            n,
            &CostModel::a800(),
        )
    });

    // Verify each rank's output slice against the reference.
    let mut worst = 0.0f32;
    for out in &outs {
        let my = Layout::Zigzag.indices(n, g, out.rank);
        let expect = reference.o.gather_rows(&my);
        let diff = out.result.0.sub(&expect).max_abs();
        worst = worst.max(diff);
    }
    println!("max |distributed − single-device| over all ranks: {worst:.2e}");
    assert!(
        worst < 1e-3,
        "distributed attention must match the reference"
    );

    // Communication accounting (the 3Nd + 2N claim of Algorithm 2).
    let s = outs[0].stats;
    println!(
        "rank 0 sent {} elements ({} intra-node msgs, {} inter-node msgs)",
        s.total_elems(),
        s.intra_msgs,
        s.inter_msgs
    );
    println!(
        "virtual step time: {:.1} µs (compute {:.1} µs, waiting {:.1} µs)",
        outs.iter().map(|o| o.time).fold(0.0, f64::max) * 1e6,
        s.compute_time * 1e6,
        s.wait_time * 1e6
    );
    println!("OK");
}
