//! Sparse attention integration and workload balance (paper §3.4, Table 3).
//!
//! Runs distributed attention under three sparsity patterns — dense
//! masking, causal, and sliding-window — with naive (contiguous) vs
//! balanced (zigzag/striped) sequence partitions, and shows how the
//! balanced layouts equalise per-rank work and cut the virtual makespan.
//!
//! ```text
//! cargo run --release --example sparse_attention
//! ```

use burstengine::prelude::*;

fn measure(mask: &AttnMask, layout: Layout, n: usize, g: usize) -> (f64, Vec<f64>) {
    let d = 16;
    let q = randn_mat(n, d, 0.7, 21);
    let k = randn_mat(n, d, 0.7, 22);
    let v = randn_mat(n, d, 0.7, 23);
    let grad_o = randn_mat(n, d, 0.8, 24);
    // A deliberately slow simulated device so compute dominates and the
    // balance effect is visible in the makespan.
    let cost = CostModel {
        peak_flops: 1e8,
        efficiency: 1.0,
    };
    let world = World::new(Topology::single_node(g));
    let outs = world.run(|comm| {
        let idx = layout.indices(n, g, comm.rank());
        run_attention(
            Algo::BurstFlat,
            comm,
            &q.gather_rows(&idx),
            &k.gather_rows(&idx),
            &v.gather_rows(&idx),
            &grad_o.gather_rows(&idx),
            1.0 / (d as f32).sqrt(),
            mask,
            layout,
            n,
            &cost,
        );
    });
    let makespan = outs.iter().map(|o| o.time).fold(0.0, f64::max);
    let per_rank: Vec<f64> = outs.iter().map(|o| o.stats.compute_time).collect();
    (makespan, per_rank)
}

fn bar(frac: f64) -> String {
    let filled = (frac * 24.0).round() as usize;
    format!("{}{}", "█".repeat(filled), "░".repeat(24 - filled))
}

fn main() {
    let (n, g) = (128usize, 8usize);
    println!("workload balance on {g} simulated GPUs, {n}-token causal attention\n");

    for (name, mask) in [
        ("dense masking", AttnMask::Full),
        ("causal", AttnMask::Causal),
        (
            "sliding window (32)",
            AttnMask::SlidingWindow { window: 32 },
        ),
    ] {
        println!("-- {name} --");
        let mut base = 0.0;
        for (lname, layout) in [
            ("contiguous", Layout::Contiguous),
            ("zigzag", Layout::Zigzag),
            ("striped", Layout::Striped),
        ] {
            let (t, per_rank) = measure(&mask, layout, n, g);
            if base == 0.0 {
                base = t;
            }
            let max = per_rank.iter().cloned().fold(0.0, f64::max);
            print!(
                "  {lname:<11} makespan {:>8.1} µs ({:>4.2}x)  per-rank load:",
                t * 1e6,
                base / t
            );
            for r in &per_rank {
                print!(" {:>3.0}%", r / max * 100.0);
            }
            println!();
        }
        println!();
    }

    // Visualise causal imbalance.
    println!("contiguous causal per-rank compute (why balance matters):");
    let (_, loads) = measure(&AttnMask::Causal, Layout::Contiguous, n, g);
    let max = loads.iter().cloned().fold(0.0, f64::max);
    for (r, l) in loads.iter().enumerate() {
        println!("  rank {r}: {}", bar(l / max));
    }
    println!("zigzag causal per-rank compute:");
    let (_, loads) = measure(&AttnMask::Causal, Layout::Zigzag, n, g);
    let max = loads.iter().cloned().fold(0.0, f64::max);
    for (r, l) in loads.iter().enumerate() {
        println!("  rank {r}: {}", bar(l / max));
    }
    println!("OK");
}
