//! A character-level language model trained with the full BurstEngine
//! stack on a simulated cluster, then sampled greedily.
//!
//! The training loop runs manually (rather than through the engine helper)
//! to show the pieces: zigzag sharding, a `DistExec` with topology-aware
//! BurstAttention, sequence-level selective checkpointing, FSDP gradient
//! reduction and Adam — then generation on the converged replica.
//!
//! ```text
//! cargo run --release --example char_lm
//! ```

use burstengine::model::engine::{Backend, EngineConfig};
use burstengine::model::fsdp;
use burstengine::model::DistExec;
use burstengine::prelude::*;

const CORPUS: &str = "the ring passes keys and values around the devices while \
queries stay at home; burst attention turns the ring inside out for the backward \
pass, sending queries and their gradients instead, and saves a quarter of the \
traffic. the sequence is cut into zigzag stripes so every device computes the \
same number of attention pairs. ";

fn vocab() -> Vec<char> {
    let mut chars: Vec<char> = CORPUS.chars().collect();
    chars.sort_unstable();
    chars.dedup();
    chars
}

fn encode(text: &str, vocab: &[char]) -> Vec<usize> {
    text.chars()
        .map(|c| vocab.iter().position(|&v| v == c).expect("in vocab"))
        .collect()
}

fn decode(tokens: &[usize], vocab: &[char]) -> String {
    tokens.iter().map(|&t| vocab[t]).collect()
}

fn main() {
    let vocab = vocab();
    let data = encode(CORPUS, &vocab);
    let seq = 64usize;
    let model_cfg = ModelConfig {
        layers: 2,
        d_model: 64,
        heads: 4,
        d_ff: 128,
        vocab: vocab.len(),
        seq_len: seq,
        rope: true,
    };
    let cfg = EngineConfig {
        model: model_cfg,
        backend: Backend::Ring(Algo::BurstTopo),
        layout: Layout::Zigzag,
        strategy: Strategy::SeqSelective { rho: 0.5 },
        mask: AttnMask::Causal,
        cost: CostModel::a800(),
        fsdp: true,
        offload_optimizer: false,
        grad_accum: 1,
        emulate_bf16: false,
        bf16_activations: false,
        overlap: burst_dattn::OverlapMode::Fine,
        skip_masked_rounds: false,
        adam: AdamCfg {
            lr: 3e-3,
            ..AdamCfg::default()
        },
        seed: 2024,
    };
    let steps = 1200usize;
    println!(
        "char-LM: {} params, vocab {}, {} tokens of text, {} steps on 4 simulated GPUs",
        model_cfg.param_count(),
        vocab.len(),
        data.len(),
        steps
    );

    let world = World::new(Topology::a800(2, 2));
    let results = world.run_results(|comm| {
        let g = comm.world_size();
        let mut model = Model::new(cfg.model, cfg.seed);
        let mut printed = Vec::new();
        for step in 0..steps {
            // Slide a window over the corpus.
            let start = (step * 17) % (data.len() - seq - 1);
            let tokens = &data[start..start + seq];
            let targets = &data[start + 1..start + seq + 1];
            model.zero_grads();
            let idx = cfg.layout.indices(seq, g, comm.rank());
            let local_tokens: Vec<usize> = idx.iter().map(|&i| tokens[i]).collect();
            let local_targets: Vec<usize> = idx.iter().map(|&i| targets[i]).collect();
            let mut exec = DistExec::new(
                comm,
                Algo::BurstTopo,
                cfg.layout,
                cfg.mask.clone(),
                seq,
                cfg.cost,
            );
            let out = model.train_step(&local_tokens, &local_targets, &mut exec, cfg.strategy, seq);
            let loss = comm.all_reduce_vec(&[out.loss_sum])[0] / seq as f32;
            fsdp::sync_grads(comm, &mut model.params_mut());
            // Decay the learning rate once the corpus is roughly learned:
            // the tail steps then settle into the memorised optimum instead
            // of oscillating around it.
            let adam = AdamCfg {
                lr: if step < 800 {
                    cfg.adam.lr
                } else {
                    cfg.adam.lr / 3.0
                },
                ..cfg.adam
            };
            model.adam_step(&adam, step as u64 + 1);
            if step % 200 == 0 || step + 1 == steps {
                printed.push((step, loss));
            }
        }
        // Every replica converged identically; rank 0 samples.
        let sample = if comm.rank() == 0 {
            let prompt = &data[..24];
            Some(model.generate(prompt, 48, |n| LocalExec::new(AttnMask::Causal, n)))
        } else {
            None
        };
        (printed, sample)
    });

    for (step, loss) in &results[0].0 {
        println!("  step {step:>4}  loss {loss:.4}");
    }
    let first = results[0].0.first().unwrap().1;
    let last = results[0].0.last().unwrap().1;
    assert!(last < first, "training must reduce the loss");
    let sample = results[0].1.as_ref().unwrap();
    let text = decode(sample, &vocab);
    println!("\nprompt + continuation:\n  {text:?}");
    assert!(
        text.starts_with("the ring passes keys and values around"),
        "the memorised corpus should continue correctly"
    );
    println!("OK");
}
