//! Paper-scale method comparison (Fig. 12–13 in one command).
//!
//! Evaluates all five systems — Megatron-CP, DeepSpeed-Ulysses,
//! LoongTrain-DoubleRing, LoongTrain-USP, and BurstEngine — on the paper's
//! hardware settings using the analytical performance/memory model, and
//! reports throughput, MFU, per-GPU memory, and failure modes.
//!
//! ```text
//! cargo run --release --example method_faceoff
//! cargo run --release --example method_faceoff -- 14b 1M 4   # model seq nodes
//! ```

use burstengine::kernels::AttnMask;
use burstengine::perf::endtoend::{evaluate, Method};
use burstengine::perf::machine::{Cluster, PaperModel};

fn parse_seq(s: &str) -> usize {
    let s = s.to_lowercase();
    if let Some(m) = s.strip_suffix('m') {
        m.parse::<usize>().unwrap() << 20
    } else if let Some(k) = s.strip_suffix('k') {
        k.parse::<usize>().unwrap() << 10
    } else {
        s.parse().unwrap()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (model, name) = match args.first().map(String::as_str) {
        Some("7b") => (PaperModel::llama_7b(), "7B"),
        Some("14b") | None => (PaperModel::llama_14b(), "14B"),
        Some(other) => panic!("unknown model {other} (use 7b or 14b)"),
    };
    let seq = args.get(1).map(|s| parse_seq(s)).unwrap_or(1 << 20);
    let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let cluster = Cluster::a800(nodes, 8);

    println!(
        "{name} model, {:.1}M tokens, {} × A800 ({} nodes × 8 GPUs)\n",
        seq as f64 / (1 << 20) as f64,
        cluster.world(),
        nodes
    );
    println!(
        "{:<24} {:>10} {:>8} {:>10} {:>12}",
        "method", "TGS", "MFU", "memory", "exposed comm"
    );
    let mut best_baseline: Option<(f64, f64)> = None;
    let mut burst: Option<(f64, f64)> = None;
    for method in Method::all() {
        match evaluate(&method, &cluster, &model, &AttnMask::Causal, seq) {
            Ok(e) => {
                println!(
                    "{:<24} {:>10.2} {:>7.1}% {:>8.1} GB {:>11.1}s",
                    method.name(),
                    e.tgs,
                    e.mfu * 100.0,
                    e.mem_gb,
                    e.comm_exposed
                );
                if matches!(method, Method::BurstEngine(_)) {
                    burst = Some((e.tgs, e.mem_gb));
                } else {
                    let cur = best_baseline.unwrap_or((0.0, f64::INFINITY));
                    best_baseline = Some((cur.0.max(e.tgs), cur.1.min(e.mem_gb)));
                }
            }
            Err(err) => println!("{:<24} {err}", method.name()),
        }
    }
    if let (Some((btgs, bmem)), Some((tgs, mem))) = (burst, best_baseline) {
        println!(
            "\nBurstEngine speedup over best baseline: {:.2}x  (paper: 1.15–1.2x)",
            btgs / tgs
        );
        println!(
            "memory saving vs most memory-efficient baseline: {:.1}%  (paper: 24–26%)",
            (1.0 - bmem / mem) * 100.0
        );
    } else if burst.is_some() {
        println!("\nall baselines infeasible at this setting — only BurstEngine runs");
    }
}
