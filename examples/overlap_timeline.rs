//! Visualise the paper's Fig. 5: how BurstAttention's fine-grained overlap
//! hides communication under compute.
//!
//! Traces one distributed attention forward+backward per algorithm on a
//! simulated 2-node × 4-GPU cluster with a deliberately slow device (so
//! compute and communication are comparable) and renders each rank's
//! virtual timeline: `#` = compute, `.` = blocked on communication.
//!
//! ```text
//! cargo run --release --example overlap_timeline
//! ```

use burstengine::comm::{ascii_lane, summarize};
use burstengine::prelude::*;

fn main() {
    let n = 128;
    let d = 32;
    let topo = Topology::a800(2, 4);
    let g = topo.world_size();
    let q = randn_mat(n, d, 0.7, 1);
    let k = randn_mat(n, d, 0.7, 2);
    let v = randn_mat(n, d, 0.7, 3);
    let go = randn_mat(n, d, 0.8, 4);
    let mask = AttnMask::Causal;
    // A slow simulated device: per-step compute is comparable to the ring
    // transfers, which is where overlap discipline matters.
    let cost = CostModel {
        peak_flops: 5e9,
        efficiency: 1.0,
    };

    for algo in [Algo::RingFlat, Algo::DoubleRing, Algo::BurstTopo] {
        let world = World::new(topo.clone());
        let outs = world.run_results(|comm| {
            comm.start_trace();
            let idx = Layout::Zigzag.indices(n, g, comm.rank());
            run_attention(
                algo,
                comm,
                &q.gather_rows(&idx),
                &k.gather_rows(&idx),
                &v.gather_rows(&idx),
                &go.gather_rows(&idx),
                1.0 / (d as f32).sqrt(),
                &mask,
                Layout::Zigzag,
                n,
                &cost,
            );
            (comm.take_trace(), comm.time())
        });
        let t_end = outs.iter().map(|(_, t)| *t).fold(0.0, f64::max);
        println!("\n== {algo:?} — makespan {:.1} µs ==", t_end * 1e6);
        println!("   (each lane is one rank: '#' compute, '.' blocked on comm)");
        let mut total_wait = 0.0;
        let mut total_compute = 0.0;
        let mut inter_sends = 0;
        for (rank, (trace, _)) in outs.iter().enumerate() {
            let lane = ascii_lane(trace, t_end, 72);
            let s = summarize(trace);
            total_wait += s.wait_secs;
            total_compute += s.compute_secs;
            inter_sends += s.inter_sends;
            println!("  r{rank} |{lane}|");
        }
        println!(
            "  blocked/compute ratio: {:.1}%  ({inter_sends} inter-node sends total)",
            total_wait / total_compute * 100.0,
        );
    }
    println!("\nThe flat ring stalls on its NIC-gated hops; the double ring shrinks");
    println!("them; BurstAttention's early-posted activations and delayed gradient");
    println!("stream leave almost nothing exposed. OK");
}
