//! Attention sparsity patterns over global token indices.
//!
//! Distributed workload balance (paper §3.4) hands each device
//! *non-contiguous* pieces of the sequence, so masks are always evaluated on
//! global indices. The tile classifier [`AttnMask::tile_state`] lets kernels
//! skip fully-masked tiles entirely and run the dense fast path on
//! fully-allowed tiles — that skip is precisely the "workload" whose balance
//! the paper's Table 3 measures.

/// Block-sparse pattern: the sequence is cut into `block`-token blocks and
/// `allowed[bi * nblocks + bj]` says whether queries in block `bi` may attend
/// to keys in block `bj`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSparseMask {
    pub block: usize,
    pub nblocks: usize,
    pub allowed: Vec<bool>,
}

impl BlockSparseMask {
    #[track_caller]
    pub fn new(block: usize, nblocks: usize, allowed: Vec<bool>) -> Self {
        assert!(block > 0, "BlockSparseMask: zero block size");
        assert_eq!(
            allowed.len(),
            nblocks * nblocks,
            "BlockSparseMask: allowed matrix must be nblocks² entries"
        );
        BlockSparseMask {
            block,
            nblocks,
            allowed,
        }
    }

    /// A sliding-window pattern at block granularity: block `bi` attends to
    /// blocks `bj` with `bi - w_blocks < bj <= bi` (causal block window).
    pub fn sliding_window_blocks(block: usize, nblocks: usize, w_blocks: usize) -> Self {
        let mut allowed = vec![false; nblocks * nblocks];
        for bi in 0..nblocks {
            for bj in 0..nblocks {
                if bj <= bi && bi - bj < w_blocks {
                    allowed[bi * nblocks + bj] = true;
                }
            }
        }
        BlockSparseMask::new(block, nblocks, allowed)
    }

    #[inline]
    pub fn block_allowed(&self, bi: usize, bj: usize) -> bool {
        if bi >= self.nblocks || bj >= self.nblocks {
            return false;
        }
        self.allowed[bi * self.nblocks + bj]
    }
}

/// The attention mask kinds the engine integrates (paper §3.4).
#[derive(Debug, Clone, PartialEq)]
pub enum AttnMask {
    /// Dense attention, no masking.
    Full,
    /// Token `i` attends to tokens `j <= i`.
    Causal,
    /// Causal with a window: `j <= i` and `i - j < window`.
    SlidingWindow { window: usize },
    /// Dilated causal attention (LongNet-style): within a window of
    /// `window` tokens, attend only to keys at multiples of `step`
    /// (`j <= i`, `i − j < window`, `(i − j) % step == 0`).
    Dilated { window: usize, step: usize },
    /// Block-wise sparse pattern.
    BlockSparse(BlockSparseMask),
}

/// Classification of a (q-tile, k-tile) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileState {
    /// Every (q, k) pair in the tile is allowed: dense fast path, no
    /// per-element checks.
    FullyAllowed,
    /// No pair is allowed: the tile is skipped entirely (zero work).
    FullyMasked,
    /// Mixed: per-element masking applies.
    Partial,
}

impl AttnMask {
    /// May global query `i` attend to global key `j`?
    #[inline]
    pub fn allowed(&self, i: usize, j: usize) -> bool {
        match self {
            AttnMask::Full => true,
            AttnMask::Causal => j <= i,
            AttnMask::SlidingWindow { window } => j <= i && i - j < *window,
            AttnMask::Dilated { window, step } => {
                j <= i && i - j < *window && (i - j).is_multiple_of(*step.max(&1))
            }
            AttnMask::BlockSparse(bs) => bs.block_allowed(i / bs.block, j / bs.block),
        }
    }

    /// Classify a tile given the global index sets of its rows and columns.
    ///
    /// Exact for arbitrary index sets: conservative short-cuts via min/max
    /// bounds handle the common contiguous/strided cases without scanning,
    /// and a scan settles the rest.
    pub fn tile_state(&self, q_idx: &[usize], k_idx: &[usize]) -> TileState {
        if q_idx.is_empty() || k_idx.is_empty() {
            return TileState::FullyMasked;
        }
        let (qmin, qmax) = min_max(q_idx);
        let (kmin, kmax) = min_max(k_idx);
        match self {
            AttnMask::Full => TileState::FullyAllowed,
            AttnMask::Causal => {
                if kmax <= qmin {
                    TileState::FullyAllowed
                } else if kmin > qmax {
                    TileState::FullyMasked
                } else {
                    TileState::Partial
                }
            }
            AttnMask::SlidingWindow { window } => {
                let all = kmax <= qmin && qmax - kmin < *window;
                if all {
                    TileState::FullyAllowed
                } else if kmin > qmax || qmin >= kmax + *window {
                    // Every key is after every query, or every key fell out
                    // of even the latest query's window.
                    TileState::FullyMasked
                } else {
                    self.scan_tile(q_idx, k_idx)
                }
            }
            AttnMask::Dilated { window, .. } => {
                if kmin > qmax || qmin >= kmax + *window {
                    TileState::FullyMasked
                } else {
                    self.scan_tile(q_idx, k_idx)
                }
            }
            AttnMask::BlockSparse(bs) => {
                // Block-granular fast path: the pattern is constant on
                // block-aligned token rectangles, so classifying the
                // *covered* block pairs is exact — every tile pair lands in
                // some covered (bi, bj), and every covered (bi, bj) holds at
                // least one tile pair. Two edge rules keep it in agreement
                // with the per-token scan on ragged shapes
                // (`seq_len % block != 0`, or indices past the pattern's
                // extent): covered blocks come from the actual indices,
                // never from the [min/block, max/block] range (strided
                // tiles touch gaps that range would claim), and block
                // indices `>= nblocks` participate as masked, exactly as
                // `block_allowed` answers for them.
                let qb = covered_blocks(q_idx, bs.block);
                let kb = covered_blocks(k_idx, bs.block);
                let mut any = false;
                let mut all = true;
                for &bi in &qb {
                    for &bj in &kb {
                        if bs.block_allowed(bi, bj) {
                            any = true;
                        } else {
                            all = false;
                        }
                        if any && !all {
                            return TileState::Partial;
                        }
                    }
                }
                if all {
                    TileState::FullyAllowed
                } else if any {
                    TileState::Partial
                } else {
                    TileState::FullyMasked
                }
            }
        }
    }

    /// Exact tile classification by scanning all pairs.
    fn scan_tile(&self, q_idx: &[usize], k_idx: &[usize]) -> TileState {
        let mut any = false;
        let mut all = true;
        for &i in q_idx {
            for &j in k_idx {
                if self.allowed(i, j) {
                    any = true;
                } else {
                    all = false;
                }
                if any && !all {
                    return TileState::Partial;
                }
            }
        }
        if all {
            TileState::FullyAllowed
        } else if any {
            TileState::Partial
        } else {
            TileState::FullyMasked
        }
    }

    /// Number of allowed (query, key) pairs in an `n × n` attention — the
    /// exact FLOP-relevant workload of the pattern (used by the balance
    /// benches and the perf model).
    pub fn allowed_pairs(&self, n: usize) -> u128 {
        match self {
            AttnMask::Full => (n as u128) * (n as u128),
            AttnMask::Causal => (n as u128) * (n as u128 + 1) / 2,
            AttnMask::SlidingWindow { window } => {
                let w = *window as u128;
                let n = n as u128;
                if w >= n {
                    n * (n + 1) / 2
                } else {
                    // First w rows form a triangle; the rest see w keys each.
                    w * (w + 1) / 2 + (n - w) * w
                }
            }
            AttnMask::Dilated { window, step } => {
                let step = (*step).max(1) as u128;
                let w = *window as u128;
                // Row i contributes ceil(min(i+1, w) / step) allowed keys.
                (0..n as u128).map(|i| (i + 1).min(w).div_ceil(step)).sum()
            }
            AttnMask::BlockSparse(bs) => {
                let mut pairs = 0u128;
                // Include the trailing partial block; block_span clips each
                // block's extent to n.
                let touched_blocks = n.div_ceil(bs.block).min(bs.nblocks);
                for bi in 0..touched_blocks {
                    for bj in 0..bs.nblocks {
                        if !bs.block_allowed(bi, bj) {
                            continue;
                        }
                        let rows = block_span(bi, bs.block, n);
                        let cols = block_span(bj, bs.block, n);
                        pairs += (rows as u128) * (cols as u128);
                    }
                }
                pairs
            }
        }
    }
}

fn block_span(b: usize, block: usize, n: usize) -> usize {
    let start = b * block;
    if start >= n {
        0
    } else {
        block.min(n - start)
    }
}

/// Distinct block indices actually touched by `idx`, ascending.
fn covered_blocks(idx: &[usize], block: usize) -> Vec<usize> {
    let mut blocks: Vec<usize> = idx.iter().map(|&i| i / block).collect();
    blocks.sort_unstable();
    blocks.dedup();
    blocks
}

fn min_max(idx: &[usize]) -> (usize, usize) {
    let mut lo = usize::MAX;
    let mut hi = 0;
    for &i in idx {
        lo = lo.min(i);
        hi = hi.max(i);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_allows_past_only() {
        let m = AttnMask::Causal;
        assert!(m.allowed(5, 5));
        assert!(m.allowed(5, 0));
        assert!(!m.allowed(5, 6));
    }

    #[test]
    fn sliding_window_bounds() {
        let m = AttnMask::SlidingWindow { window: 3 };
        assert!(m.allowed(10, 10));
        assert!(m.allowed(10, 8));
        assert!(!m.allowed(10, 7)); // distance 3 >= window
        assert!(!m.allowed(10, 11));
    }

    #[test]
    fn block_sparse_indexing() {
        let bs = BlockSparseMask::sliding_window_blocks(4, 3, 2);
        let m = AttnMask::BlockSparse(bs);
        // Block layout (3 blocks of 4): block 2 attends to blocks 1, 2.
        assert!(m.allowed(8, 4)); // b(2,1)
        assert!(m.allowed(8, 11)); // b(2,2)
        assert!(!m.allowed(8, 0)); // b(2,0) outside window
        assert!(!m.allowed(0, 4)); // non-causal block
    }

    #[test]
    fn tile_state_causal_contiguous() {
        let m = AttnMask::Causal;
        let q: Vec<usize> = (8..16).collect();
        assert_eq!(
            m.tile_state(&q, &(0..8).collect::<Vec<_>>()),
            TileState::FullyAllowed
        );
        assert_eq!(
            m.tile_state(&q, &(16..24).collect::<Vec<_>>()),
            TileState::FullyMasked
        );
        assert_eq!(
            m.tile_state(&q, &(8..16).collect::<Vec<_>>()),
            TileState::Partial
        );
    }

    #[test]
    fn tile_state_matches_scan_for_strided_indices() {
        // Striped layout: rank 1 of 4 owns tokens 1, 5, 9, 13.
        let m = AttnMask::Causal;
        let q = vec![1usize, 5, 9, 13];
        let k = vec![2usize, 6, 10, 14];
        assert_eq!(m.tile_state(&q, &k), TileState::Partial);
        let k_early = vec![0usize];
        assert_eq!(m.tile_state(&q, &k_early), TileState::FullyAllowed);
    }

    #[test]
    fn tile_state_full_mask() {
        let m = AttnMask::Full;
        assert_eq!(m.tile_state(&[0, 1], &[5, 6]), TileState::FullyAllowed);
        assert_eq!(m.tile_state(&[], &[5]), TileState::FullyMasked);
    }

    #[test]
    fn sliding_window_tile_states() {
        let m = AttnMask::SlidingWindow { window: 4 };
        let q: Vec<usize> = (100..104).collect();
        // Keys immediately before and inside window.
        assert_eq!(
            m.tile_state(&q, &(100..104).collect::<Vec<_>>()),
            TileState::Partial
        );
        // Keys far in the past: fully masked.
        assert_eq!(
            m.tile_state(&q, &(0..4).collect::<Vec<_>>()),
            TileState::FullyMasked
        );
        // Keys in the future: fully masked.
        assert_eq!(
            m.tile_state(&q, &(200..204).collect::<Vec<_>>()),
            TileState::FullyMasked
        );
    }

    #[test]
    fn allowed_pairs_formulas() {
        assert_eq!(AttnMask::Full.allowed_pairs(10), 100);
        assert_eq!(AttnMask::Causal.allowed_pairs(10), 55);
        // Window 3 over 10 tokens: 3·4/2 + 7·3 = 6 + 21 = 27.
        assert_eq!(AttnMask::SlidingWindow { window: 3 }.allowed_pairs(10), 27);
        // Window >= n degrades to causal.
        assert_eq!(
            AttnMask::SlidingWindow { window: 100 }.allowed_pairs(10),
            55
        );
    }

    #[test]
    fn dilated_mask_semantics() {
        let m = AttnMask::Dilated { window: 8, step: 2 };
        assert!(m.allowed(10, 10)); // distance 0
        assert!(m.allowed(10, 8)); // distance 2
        assert!(!m.allowed(10, 9)); // distance 1: off the dilation grid
        assert!(!m.allowed(10, 1)); // distance 9: outside window
        assert!(!m.allowed(10, 11)); // future
    }

    #[test]
    fn dilated_tile_states_are_conservative_and_correct() {
        let m = AttnMask::Dilated { window: 8, step: 2 };
        let q: Vec<usize> = (100..104).collect();
        assert_eq!(
            m.tile_state(&q, &(0..4).collect::<Vec<_>>()),
            TileState::FullyMasked
        );
        assert_eq!(
            m.tile_state(&q, &(200..204).collect::<Vec<_>>()),
            TileState::FullyMasked
        );
        assert_eq!(
            m.tile_state(&q, &(98..102).collect::<Vec<_>>()),
            TileState::Partial
        );
    }

    #[test]
    fn allowed_pairs_matches_bruteforce() {
        let masks = [
            AttnMask::Full,
            AttnMask::Causal,
            AttnMask::SlidingWindow { window: 5 },
            AttnMask::Dilated { window: 6, step: 2 },
            AttnMask::Dilated { window: 5, step: 3 },
            AttnMask::Dilated { window: 4, step: 1 },
            AttnMask::BlockSparse(BlockSparseMask::sliding_window_blocks(4, 4, 2)),
        ];
        let n = 16;
        for m in &masks {
            let brute: u128 = (0..n)
                .flat_map(|i| (0..n).map(move |j| (i, j)))
                .filter(|&(i, j)| m.allowed(i, j))
                .count() as u128;
            assert_eq!(m.allowed_pairs(n), brute, "mask {m:?}");
        }
    }
}
