//! Online-softmax state and its merge operator.
//!
//! The pair `(O, Lse)` — a partially aggregated attention output and the
//! log-sum-exp of the scores that produced it — is the exchange currency of
//! the whole system: FlashAttention accumulates k-tiles into it,
//! RingAttention/BurstAttention accumulate *remote* partitions into it, and
//! Algorithm 3 accumulates vocabulary tiles into its `Lse`. The merge is
//! associative and commutative up to floating-point rounding, which is what
//! makes the ring order irrelevant to the result (property-tested).

use burst_tensor::Mat;

/// A partially aggregated attention state for a block of queries.
#[derive(Debug, Clone)]
pub struct OnlineState {
    /// Aggregated (softmax-weighted) output, `rows × d`.
    pub o: Mat,
    /// Per-row log-sum-exp of all scores aggregated so far; `-inf` means the
    /// row has absorbed no mass yet (identity element).
    pub lse: Vec<f32>,
}

impl OnlineState {
    /// The identity state: zero output, `-inf` log-sum-exp.
    pub fn empty(rows: usize, d: usize) -> Self {
        OnlineState {
            o: Mat::zeros(rows, d),
            lse: vec![f32::NEG_INFINITY; rows],
        }
    }

    /// Build from a tile's local softmax result.
    #[track_caller]
    pub fn new(o: Mat, lse: Vec<f32>) -> Self {
        assert_eq!(o.rows(), lse.len(), "OnlineState: O/Lse row mismatch");
        OnlineState { o, lse }
    }

    /// Stable log-sum-exp of two scalars.
    #[inline]
    pub fn merge_lse(a: f32, b: f32) -> f32 {
        if a == f32::NEG_INFINITY {
            return b;
        }
        if b == f32::NEG_INFINITY {
            return a;
        }
        let m = a.max(b);
        m + ((a - m).exp() + (b - m).exp()).ln()
    }

    /// Fold `other` into `self`:
    ///
    /// ```text
    /// lse' = logaddexp(lse, other.lse)
    /// o'   = exp(lse - lse')·o + exp(other.lse - lse')·other.o
    /// ```
    #[track_caller]
    pub fn merge(&mut self, other: &OnlineState) {
        assert_eq!(self.o.shape(), other.o.shape(), "OnlineState::merge shape");
        for r in 0..self.o.rows() {
            let la = self.lse[r];
            let lb = other.lse[r];
            let lnew = Self::merge_lse(la, lb);
            let wa = if la == f32::NEG_INFINITY {
                0.0
            } else {
                (la - lnew).exp()
            };
            let wb = if lb == f32::NEG_INFINITY {
                0.0
            } else {
                (lb - lnew).exp()
            };
            let dst = self.o.row_mut(r);
            let src = other.o.row(r);
            for (d, s) in dst.iter_mut().zip(src) {
                *d = wa * *d + wb * *s;
            }
            self.lse[r] = lnew;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::assert_allclose;

    fn state(seed: u64, rows: usize, d: usize) -> OnlineState {
        let o = randn_mat(rows, d, 1.0, seed);
        let lse = randn_mat(rows, 1, 1.0, seed + 1000).into_vec();
        OnlineState::new(o, lse)
    }

    #[test]
    fn identity_element_is_neutral() {
        let s = state(1, 4, 3);
        let mut left = OnlineState::empty(4, 3);
        left.merge(&s);
        assert_allclose(&left.o, &s.o, 1e-6, "empty ∘ s = s (O)");
        let mut right = s.clone();
        right.merge(&OnlineState::empty(4, 3));
        assert_allclose(&right.o, &s.o, 1e-6, "s ∘ empty = s (O)");
        for (a, b) in right.lse.iter().zip(&s.lse) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn merge_is_commutative() {
        let a = state(2, 4, 3);
        let b = state(3, 4, 3);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_allclose(&ab.o, &ba.o, 1e-5, "commutativity (O)");
        for (x, y) in ab.lse.iter().zip(&ba.lse) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn merge_is_associative() {
        let a = state(4, 3, 2);
        let b = state(5, 3, 2);
        let c = state(6, 3, 2);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_allclose(&left.o, &right.o, 1e-4, "associativity (O)");
        for (x, y) in left.lse.iter().zip(&right.lse) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn merge_reproduces_global_softmax() {
        // Softmax over concatenated scores == merge of per-part softmaxes.
        let scores = randn_mat(2, 8, 2.0, 9);
        let v = randn_mat(8, 3, 1.0, 10);
        // Global reference.
        let p = scores.softmax_rows();
        let o_ref = p.matmul(&v);
        // Two halves aggregated online.
        let mut acc = OnlineState::empty(2, 3);
        for half in 0..2 {
            let s_half = scores.slice_cols(half * 4, (half + 1) * 4);
            let v_half = v.slice_rows(half * 4, (half + 1) * 4);
            let lse = s_half.lse_rows();
            let p_half = s_half.exp_sub_rowwise(&lse);
            let o_half = p_half.matmul(&v_half);
            acc.merge(&OnlineState::new(o_half, lse));
        }
        assert_allclose(&acc.o, &o_ref, 1e-5, "online == global softmax");
        let lse_ref = scores.lse_rows();
        for (x, y) in acc.lse.iter().zip(&lse_ref) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn merge_lse_handles_infinities() {
        assert_eq!(OnlineState::merge_lse(f32::NEG_INFINITY, 2.0), 2.0);
        assert_eq!(OnlineState::merge_lse(2.0, f32::NEG_INFINITY), 2.0);
        assert_eq!(
            OnlineState::merge_lse(f32::NEG_INFINITY, f32::NEG_INFINITY),
            f32::NEG_INFINITY
        );
        let m = OnlineState::merge_lse(0.0, 0.0);
        assert!((m - (2.0f32).ln()).abs() < 1e-6);
    }
}
