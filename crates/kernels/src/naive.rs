//! Explicit-matrix reference attention, used to validate the blocked
//! kernels. Materialises the full `S` and `P` matrices — only ever run on
//! small shapes in tests and benches.

use crate::mask::AttnMask;
use burst_tensor::Mat;

/// Reference forward pass: returns `(O, Lse)` with the mask applied on
/// global indices.
#[track_caller]
pub fn naive_forward(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
) -> (Mat, Vec<f32>) {
    assert_eq!(q.rows(), q_idx.len(), "naive_forward: q_idx length");
    assert_eq!(k.rows(), k_idx.len(), "naive_forward: k_idx length");
    assert_eq!(k.rows(), v.rows(), "naive_forward: K/V row mismatch");
    let mut s = q.matmul_nt(k);
    s.scale(scale);
    for (r, &gi) in q_idx.iter().enumerate() {
        for (c, &gj) in k_idx.iter().enumerate() {
            if !mask.allowed(gi, gj) {
                s.set(r, c, f32::NEG_INFINITY);
            }
        }
    }
    let lse = s.lse_rows();
    let p = s.exp_sub_rowwise(&lse);
    (p.matmul(v), lse)
}

/// Reference backward pass: gradients of a scalar loss w.r.t. `Q`, `K`, `V`
/// given `∇O`, via the explicit softmax Jacobian.
#[allow(clippy::too_many_arguments)]
#[track_caller]
pub fn naive_backward(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
) -> (Mat, Mat, Mat) {
    let mut s = q.matmul_nt(k);
    s.scale(scale);
    for (r, &gi) in q_idx.iter().enumerate() {
        for (c, &gj) in k_idx.iter().enumerate() {
            if !mask.allowed(gi, gj) {
                s.set(r, c, f32::NEG_INFINITY);
            }
        }
    }
    let lse = s.lse_rows();
    let p = s.exp_sub_rowwise(&lse);
    // ∇V = Pᵀ ∇O
    let grad_v = p.matmul_tn(grad_o);
    // ∇P = ∇O Vᵀ
    let grad_p = grad_o.matmul_nt(v);
    // ∇S = P ∘ (∇P − D), D_r = Σ_c P_rc ∇P_rc = rowsum(∇O ∘ O)
    let d = p.rowsum_hadamard(&grad_p);
    let mut grad_s = Mat::zeros(p.rows(), p.cols());
    for (r, &dr) in d.iter().enumerate() {
        for c in 0..p.cols() {
            grad_s.set(r, c, p.get(r, c) * (grad_p.get(r, c) - dr));
        }
    }
    // ∇Q = scale · ∇S K ; ∇K = scale · ∇Sᵀ Q
    let mut grad_q = grad_s.matmul(k);
    grad_q.scale(scale);
    let mut grad_k = grad_s.matmul_tn(q);
    grad_k.scale(scale);
    (grad_q, grad_k, grad_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::{assert_allclose, numerical_grad};

    fn idx(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn full_mask_matches_direct_softmax() {
        let (n, d) = (6, 4);
        let q = randn_mat(n, d, 1.0, 1);
        let k = randn_mat(n, d, 1.0, 2);
        let v = randn_mat(n, d, 1.0, 3);
        let scale = 1.0 / (d as f32).sqrt();
        let (o, _) = naive_forward(&q, &k, &v, scale, &AttnMask::Full, &idx(n), &idx(n));
        let mut s = q.matmul_nt(&k);
        s.scale(scale);
        let o_ref = s.softmax_rows().matmul(&v);
        assert_allclose(&o, &o_ref, 1e-5, "naive vs direct");
    }

    #[test]
    fn causal_first_row_attends_to_itself_only() {
        let (n, d) = (4, 3);
        let q = randn_mat(n, d, 1.0, 4);
        let k = randn_mat(n, d, 1.0, 5);
        let v = randn_mat(n, d, 1.0, 6);
        let (o, _) = naive_forward(&q, &k, &v, 1.0, &AttnMask::Causal, &idx(n), &idx(n));
        // Row 0 sees only key 0 → output equals V row 0 exactly.
        for (a, b) in o.row(0).iter().zip(v.row(0)) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let (n, d) = (5, 3);
        let q = randn_mat(n, d, 0.8, 7);
        let k = randn_mat(n, d, 0.8, 8);
        let v = randn_mat(n, d, 0.8, 9);
        let grad_o = randn_mat(n, d, 1.0, 10);
        let scale = 1.0 / (d as f32).sqrt();
        let mask = AttnMask::Causal;
        let (gq, gk, gv) = naive_backward(&q, &k, &v, &grad_o, scale, &mask, &idx(n), &idx(n));

        // Loss = <O, grad_o>; numerical gradients w.r.t. each input.
        let loss = |q: &Mat, k: &Mat, v: &Mat| -> f32 {
            let (o, _) = naive_forward(q, k, v, scale, &mask, &idx(n), &idx(n));
            o.as_slice()
                .iter()
                .zip(grad_o.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let nq = numerical_grad(&q, 1e-2, |m| loss(m, &k, &v));
        let nk = numerical_grad(&k, 1e-2, |m| loss(&q, m, &v));
        let nv = numerical_grad(&v, 1e-2, |m| loss(&q, &k, m));
        assert_allclose(&gq, &nq, 3e-2, "dQ");
        assert_allclose(&gk, &nk, 3e-2, "dK");
        assert_allclose(&gv, &nv, 3e-2, "dV");
    }

    #[test]
    fn masked_keys_get_no_value_gradient() {
        // With sliding window 1, each query sees exactly one key, so dV for
        // key j comes only from query j.
        let (n, d) = (4, 2);
        let q = randn_mat(n, d, 1.0, 11);
        let k = randn_mat(n, d, 1.0, 12);
        let v = randn_mat(n, d, 1.0, 13);
        let grad_o = Mat::zeros(n, d);
        let mut g = grad_o.clone();
        g.row_mut(2).copy_from_slice(&[1.0, 1.0]); // only query 2 has gradient
        let mask = AttnMask::SlidingWindow { window: 1 };
        let (_, _, gv) = naive_backward(&q, &k, &v, &g, 1.0, &mask, &idx(n), &idx(n));
        for r in 0..n {
            if r == 2 {
                assert!(gv.row(r).iter().any(|&x| x != 0.0));
            } else {
                assert!(
                    gv.row(r).iter().all(|&x| x == 0.0),
                    "row {r} {:?}",
                    gv.row(r)
                );
            }
        }
    }
}
