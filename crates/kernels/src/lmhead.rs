//! Sequence-level fusion of the LM head and cross-entropy loss
//! (paper §3.3, Algorithm 3).
//!
//! The LM head `Logits = H W_headᵀ` produces an `N × v` matrix — at 1M
//! tokens and a 128K vocabulary, half a terabyte in bf16 (paper Fig. 8). The
//! fused kernel tiles `H` along the sequence (`B_s` rows) and `W_head` along
//! the vocabulary (`B_v` rows), accumulates the per-row log-sum-exp online,
//! and runs the backward **immediately after** each row tile's forward,
//! while that tile's (unnormalised) probabilities are still live — so the
//! logits are never recomputed and the live working set is `B_s × v`
//! instead of `N × v`.
//!
//! The forward stores `P̃ = exp(logits − rowmax)` per vocabulary tile, which
//! makes the backward exp-free: `∇Logits = P̃ · exp(max − Lse) / N` is a pure
//! row scaling. One `exp` per logit total.
//!
//! Large problems run two parallel passes with a decomposition fixed by the
//! tile sizes — row tiles own disjoint `∇H`/loss rows, vocabulary tiles own
//! disjoint `∇W` rows — and the per-tile loss sum uses a fixed-shape tree
//! reduction, so results are bit-identical for any thread count. (The
//! parallel path recomputes each logits tile once in the `∇W` pass and
//! keeps one live row tile *per task*, trading the serial path's strict
//! `B_s × v` bound for speed.)
//!
//! Gradient convention: mean-reduced cross-entropy, i.e.
//! `∇Logits = (softmax(Logits) − onehot(Y)) / N`.

use crate::flash::row_blocks;
use crate::online::OnlineState;
use burst_tensor::{
    axpy_rows_slice, matmul_into, matmul_nt_into, matmul_tn_into, simd, tree_sum, Mat, MatRef,
    Scratch,
};

/// Default sequence-tile rows.
pub const DEFAULT_BLOCK_S: usize = 32;
/// Default vocabulary-tile rows.
pub const DEFAULT_BLOCK_V: usize = 64;

/// Problem volume (`n · v · d`) below which the kernel stays serial.
const PAR_VOLUME: usize = 64 * 64 * 16;

/// Result of an LM-head + loss evaluation (forward **and** backward).
#[derive(Debug, Clone)]
pub struct LmLossOut {
    /// Mean cross-entropy over the `N` positions.
    pub loss: f32,
    /// Per-position losses.
    pub losses: Vec<f32>,
    /// Gradient w.r.t. the hidden states, `N × d`.
    pub grad_h: Mat,
    /// Gradient w.r.t. the head weights, `v × d`.
    pub grad_w: Mat,
    /// Per-position log-sum-exp over the vocabulary.
    pub lse: Vec<f32>,
    /// Peak number of live logit elements — the quantity Fig. 8 plots.
    pub peak_logits_elems: usize,
}

/// Unfused reference: materialises the full `N × v` logits matrix.
#[track_caller]
pub fn naive_lm_loss(h: &Mat, w: &Mat, targets: &[usize]) -> LmLossOut {
    let n = h.rows();
    let v = w.rows();
    assert_eq!(targets.len(), n, "naive_lm_loss: target length");
    assert!(
        targets.iter().all(|&t| t < v),
        "naive_lm_loss: target out of vocabulary"
    );
    let logits = h.matmul_nt(w);
    let lse = logits.lse_rows();
    let losses: Vec<f32> = (0..n).map(|r| lse[r] - logits.get(r, targets[r])).collect();
    let loss = losses.iter().sum::<f32>() / n as f32;
    // ∇Logits = (softmax − onehot) / N
    let mut grad_logits = logits.exp_sub_rowwise(&lse);
    let inv_n = 1.0 / n as f32;
    for r in 0..n {
        let row = grad_logits.row_mut(r);
        for x in row.iter_mut() {
            *x *= inv_n;
        }
        row[targets[r]] -= inv_n;
    }
    let grad_h = grad_logits.matmul(w);
    let grad_w = grad_logits.matmul_tn(h);
    LmLossOut {
        loss,
        losses,
        grad_h,
        grad_w,
        lse,
        peak_logits_elems: n * v,
    }
}

/// Borrowed problem description threaded through the tile loops.
#[derive(Clone, Copy)]
struct LmCtx<'a> {
    h: MatRef<'a>,
    w: MatRef<'a>,
    targets: &'a [usize],
    inv_n: f32,
    block_s: usize,
    block_v: usize,
}

/// Forward one row tile `[r0, r1)`: for each vocabulary tile, leave
/// `P̃ = exp(logits − rowmax)` in `scratch.vtiles[j]` and the row maxes in
/// `scratch.tile_max[j·rows..]`, folding the tile LSEs into `lse_rows`
/// online. Also writes the per-position losses.
fn lm_forward_rows(
    ctx: &LmCtx<'_>,
    r0: usize,
    r1: usize,
    losses_rows: &mut [f32],
    lse_rows: &mut [f32],
    scratch: &mut Scratch,
) {
    let rows = r1 - r0;
    let v = ctx.w.rows();
    let hb = ctx.h.rows_view(r0, r1);
    let n_vtiles = v.div_ceil(ctx.block_v);
    scratch.ensure_vtiles(n_vtiles);
    scratch.tile_max.clear();
    scratch.tile_max.resize(n_vtiles * rows, 0.0);
    lse_rows.fill(f32::NEG_INFINITY);
    let Scratch {
        vtiles, tile_max, ..
    } = scratch;
    for (j, pt) in vtiles.iter_mut().take(n_vtiles).enumerate() {
        let c0 = j * ctx.block_v;
        let c1 = (c0 + ctx.block_v).min(v);
        matmul_nt_into(hb, ctx.w.rows_view(c0, c1), pt);
        let maxes = &mut tile_max[j * rows..(j + 1) * rows];
        for r in 0..rows {
            let row = pt.row_mut(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if m == f32::NEG_INFINITY {
                row.fill(0.0);
                maxes[r] = f32::NEG_INFINITY;
                continue;
            }
            let sum = simd::exp_shift_sum_inplace(row, m);
            maxes[r] = m;
            lse_rows[r] = OnlineState::merge_lse(lse_rows[r], m + sum.ln());
        }
    }
    // ℒ_r = Lse_r − h_r · w_{y_r}
    for r in 0..rows {
        let y = ctx.targets[r0 + r];
        let dot: f32 = hb.row(r).iter().zip(ctx.w.row(y)).map(|(a, b)| a * b).sum();
        losses_rows[r] = lse_rows[r] - dot;
    }
}

/// Scale a retained `P̃` tile into `∇Logits` in place:
/// `∇Logits = P̃ · exp(max − Lse) / N − onehot(Y) / N`. No `exp` per element.
#[allow(clippy::too_many_arguments)]
fn scale_to_grad_logits(
    pt: &mut Mat,
    maxes: &[f32],
    lse_rows: &[f32],
    inv_n: f32,
    targets: &[usize],
    r0: usize,
    c0: usize,
    c1: usize,
) {
    for r in 0..pt.rows() {
        let sr = (maxes[r] - lse_rows[r]).exp() * inv_n;
        let row = pt.row_mut(r);
        simd::scale_slice(row, sr);
        let y = targets[r0 + r];
        if (c0..c1).contains(&y) {
            row[y - c0] -= inv_n;
        }
    }
}

/// Serial backward for one row tile, reusing the live `P̃` tiles: both
/// `∇H` rows and every `∇W` tile.
fn lm_backward_rows(
    ctx: &LmCtx<'_>,
    r0: usize,
    r1: usize,
    lse_rows: &[f32],
    grad_h_rows: &mut [f32],
    grad_w: &mut [f32],
    scratch: &mut Scratch,
) {
    let rows = r1 - r0;
    let v = ctx.w.rows();
    let hb = ctx.h.rows_view(r0, r1);
    let n_vtiles = v.div_ceil(ctx.block_v);
    let Scratch {
        vtiles,
        tile_max,
        gtmp,
        ..
    } = scratch;
    for (j, pt) in vtiles.iter_mut().take(n_vtiles).enumerate() {
        let c0 = j * ctx.block_v;
        let c1 = (c0 + ctx.block_v).min(v);
        let maxes = &tile_max[j * rows..(j + 1) * rows];
        scale_to_grad_logits(pt, maxes, lse_rows, ctx.inv_n, ctx.targets, r0, c0, c1);
        // ∇H_block += ∇Logits_tile · W_tile
        matmul_into(pt.view(), ctx.w.rows_view(c0, c1), gtmp);
        axpy_rows_slice(grad_h_rows, 0, 1.0, gtmp);
        // ∇W_tile += ∇Logitsᵀ · H_block
        matmul_tn_into(pt.view(), hb, gtmp);
        axpy_rows_slice(grad_w, c0, 1.0, gtmp);
    }
}

/// Pass H of the parallel schedule: forward + losses + `∇H` for one row
/// tile. Identical arithmetic to the serial path for everything it writes.
fn lm_pass_h_rows(
    ctx: &LmCtx<'_>,
    r0: usize,
    r1: usize,
    losses_rows: &mut [f32],
    lse_rows: &mut [f32],
    grad_h_rows: &mut [f32],
    scratch: &mut Scratch,
) {
    lm_forward_rows(ctx, r0, r1, losses_rows, lse_rows, scratch);
    let rows = r1 - r0;
    let v = ctx.w.rows();
    let n_vtiles = v.div_ceil(ctx.block_v);
    let Scratch {
        vtiles,
        tile_max,
        gtmp,
        ..
    } = scratch;
    for (j, pt) in vtiles.iter_mut().take(n_vtiles).enumerate() {
        let c0 = j * ctx.block_v;
        let c1 = (c0 + ctx.block_v).min(v);
        let maxes = &tile_max[j * rows..(j + 1) * rows];
        scale_to_grad_logits(pt, maxes, lse_rows, ctx.inv_n, ctx.targets, r0, c0, c1);
        matmul_into(pt.view(), ctx.w.rows_view(c0, c1), gtmp);
        axpy_rows_slice(grad_h_rows, 0, 1.0, gtmp);
    }
}

/// Pass W of the parallel schedule: `∇W` rows `[c0, c1)`, folding row tiles
/// in ascending order — the order the serial path uses — after recomputing
/// each `P̃` tile with the exact serial arithmetic.
fn lm_pass_w_tile(
    ctx: &LmCtx<'_>,
    c0: usize,
    c1: usize,
    lse_all: &[f32],
    gw_rows: &mut [f32],
    scratch: &mut Scratch,
) {
    let n = ctx.h.rows();
    let wb = ctx.w.rows_view(c0, c1);
    let Scratch {
        score,
        gtmp,
        tile_max,
        ..
    } = scratch;
    let mut r0 = 0;
    while r0 < n {
        let r1 = (r0 + ctx.block_s).min(n);
        let hb = ctx.h.rows_view(r0, r1);
        matmul_nt_into(hb, wb, score);
        tile_max.clear();
        for r in 0..score.rows() {
            let row = score.row_mut(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if m == f32::NEG_INFINITY {
                row.fill(0.0);
                tile_max.push(f32::NEG_INFINITY);
                continue;
            }
            simd::exp_shift_inplace(row, m);
            tile_max.push(m);
        }
        scale_to_grad_logits(
            score,
            tile_max,
            &lse_all[r0..r1],
            ctx.inv_n,
            ctx.targets,
            r0,
            c0,
            c1,
        );
        matmul_tn_into(score.view(), hb, gtmp);
        axpy_rows_slice(gw_rows, 0, 1.0, gtmp);
        r0 = r1;
    }
}

fn lm_par_h(
    ctx: &LmCtx<'_>,
    blocks: &[(usize, usize)],
    losses: &mut [f32],
    lse: &mut [f32],
    gh: &mut [f32],
) {
    let Some(&(base, _)) = blocks.first() else {
        return;
    };
    if blocks.len() == 1 {
        let (r0, r1) = blocks[0];
        lm_pass_h_rows(ctx, r0, r1, losses, lse, gh, &mut Scratch::new());
        return;
    }
    let (lo, hi) = blocks.split_at(blocks.len() / 2);
    let cut = hi[0].0 - base;
    let (lo_losses, hi_losses) = losses.split_at_mut(cut);
    let (lo_lse, hi_lse) = lse.split_at_mut(cut);
    let (lo_gh, hi_gh) = gh.split_at_mut(cut * ctx.h.cols());
    rayon::join(
        || lm_par_h(ctx, lo, lo_losses, lo_lse, lo_gh),
        || lm_par_h(ctx, hi, hi_losses, hi_lse, hi_gh),
    );
}

fn lm_par_w(ctx: &LmCtx<'_>, blocks: &[(usize, usize)], lse_all: &[f32], gw: &mut [f32]) {
    let Some(&(base, _)) = blocks.first() else {
        return;
    };
    if blocks.len() == 1 {
        let (c0, c1) = blocks[0];
        lm_pass_w_tile(ctx, c0, c1, lse_all, gw, &mut Scratch::new());
        return;
    }
    let (lo, hi) = blocks.split_at(blocks.len() / 2);
    let (lo_gw, hi_gw) = gw.split_at_mut((hi[0].0 - base) * ctx.w.cols());
    rayon::join(
        || lm_par_w(ctx, lo, lse_all, lo_gw),
        || lm_par_w(ctx, hi, lse_all, hi_gw),
    );
}

/// Algorithm 3 with default tile sizes.
pub fn fused_lm_loss(h: &Mat, w: &Mat, targets: &[usize]) -> LmLossOut {
    fused_lm_loss_with_blocks(h, w, targets, DEFAULT_BLOCK_S, DEFAULT_BLOCK_V)
}

/// Algorithm 3: tiled, fused forward + backward of LM head and loss.
#[track_caller]
pub fn fused_lm_loss_with_blocks(
    h: &Mat,
    w: &Mat,
    targets: &[usize],
    block_s: usize,
    block_v: usize,
) -> LmLossOut {
    assert!(block_s > 0 && block_v > 0, "fused_lm_loss: zero tile size");
    let n = h.rows();
    let v = w.rows();
    let d = h.cols();
    assert_eq!(w.cols(), d, "fused_lm_loss: H/W dim mismatch");
    assert_eq!(targets.len(), n, "fused_lm_loss: target length");
    assert!(
        targets.iter().all(|&t| t < v),
        "fused_lm_loss: target out of vocabulary"
    );

    let inv_n = 1.0 / n as f32;
    let mut losses = vec![0.0f32; n];
    let mut lse_all = vec![0.0f32; n];
    let mut grad_h = Mat::zeros(n, d);
    let mut grad_w = Mat::zeros(v, d);
    // Live logits on the serial path: one row tile × the whole vocabulary
    // (B_s × v), reused across row tiles — the fusion's memory win.
    let peak_logits_elems = block_s.min(n) * v;
    let ctx = LmCtx {
        h: h.view(),
        w: w.view(),
        targets,
        inv_n,
        block_s,
        block_v,
    };
    let sblocks = row_blocks(n, block_s);
    let vblocks = row_blocks(v, block_v);
    let parallel = (sblocks.len() > 1 || vblocks.len() > 1)
        && n * v * d >= PAR_VOLUME
        && rayon::current_num_threads() > 1;
    if parallel {
        lm_par_h(
            &ctx,
            &sblocks,
            &mut losses,
            &mut lse_all,
            grad_h.as_mut_slice(),
        );
        lm_par_w(&ctx, &vblocks, &lse_all, grad_w.as_mut_slice());
    } else {
        let mut scratch = Scratch::new();
        for &(r0, r1) in &sblocks {
            lm_forward_rows(
                &ctx,
                r0,
                r1,
                &mut losses[r0..r1],
                &mut lse_all[r0..r1],
                &mut scratch,
            );
            lm_backward_rows(
                &ctx,
                r0,
                r1,
                &lse_all[r0..r1],
                &mut grad_h.as_mut_slice()[r0 * d..r1 * d],
                grad_w.as_mut_slice(),
                &mut scratch,
            );
        }
    }
    let loss = tree_sum(&losses) * inv_n;
    LmLossOut {
        loss,
        losses,
        grad_h,
        grad_w,
        lse: lse_all,
        peak_logits_elems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::{assert_allclose, assert_allclose_vec, numerical_grad};
    use rand::prelude::*;

    fn targets(n: usize, v: usize, seed: u64) -> Vec<usize> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..v)).collect()
    }

    #[test]
    fn fused_matches_naive_across_tilings() {
        let (n, d, v) = (13, 6, 23);
        let h = randn_mat(n, d, 0.8, 100);
        let w = randn_mat(v, d, 0.8, 101);
        let y = targets(n, v, 102);
        let reference = naive_lm_loss(&h, &w, &y);
        for (bs, bv) in [(1, 1), (4, 8), (5, 7), (32, 64), (13, 23)] {
            let fused = fused_lm_loss_with_blocks(&h, &w, &y, bs, bv);
            assert!(
                (fused.loss - reference.loss).abs() < 1e-4,
                "loss mismatch at tiles ({bs},{bv})"
            );
            assert_allclose(&fused.grad_h, &reference.grad_h, 1e-4, "∇H");
            assert_allclose(&fused.grad_w, &reference.grad_w, 1e-4, "∇W");
            assert_allclose_vec(&fused.lse, &reference.lse, 1e-4, "lse");
            assert_allclose_vec(&fused.losses, &reference.losses, 1e-4, "losses");
        }
    }

    #[test]
    fn loss_is_negative_log_probability_of_target() {
        let (n, d, v) = (4, 3, 7);
        let h = randn_mat(n, d, 1.0, 110);
        let w = randn_mat(v, d, 1.0, 111);
        let y = targets(n, v, 112);
        let out = fused_lm_loss(&h, &w, &y);
        let logits = h.matmul_nt(&w);
        let p = logits.softmax_rows();
        for (r, &yr) in y.iter().enumerate() {
            let expect = -p.get(r, yr).ln();
            assert!(
                (out.losses[r] - expect).abs() < 1e-4,
                "row {r}: {} vs {}",
                out.losses[r],
                expect
            );
        }
    }

    #[test]
    fn gradients_match_numerical() {
        let (n, d, v) = (5, 3, 6);
        let h = randn_mat(n, d, 0.7, 120);
        let w = randn_mat(v, d, 0.7, 121);
        let y = targets(n, v, 122);
        let out = fused_lm_loss(&h, &w, &y);
        let y2 = y.clone();
        let w2 = w.clone();
        let nh = numerical_grad(&h, 1e-2, move |m| fused_lm_loss(m, &w2, &y2).loss);
        assert_allclose(&out.grad_h, &nh, 2e-2, "∇H numerical");
        let y3 = y.clone();
        let h2 = h.clone();
        let nw = numerical_grad(&w, 1e-2, move |m| fused_lm_loss(&h2, m, &y3).loss);
        assert_allclose(&out.grad_w, &nw, 2e-2, "∇W numerical");
    }

    #[test]
    fn peak_logits_memory_is_bounded_by_row_tile() {
        let (n, d, v) = (64, 4, 50);
        let h = randn_mat(n, d, 1.0, 130);
        let w = randn_mat(v, d, 1.0, 131);
        let y = targets(n, v, 132);
        let naive = naive_lm_loss(&h, &w, &y);
        let fused = fused_lm_loss_with_blocks(&h, &w, &y, 8, 16);
        assert_eq!(naive.peak_logits_elems, n * v);
        assert_eq!(fused.peak_logits_elems, 8 * v);
        assert!(fused.peak_logits_elems < naive.peak_logits_elems / 4);
    }

    #[test]
    fn gradient_sums_to_zero_over_vocabulary() {
        // Column sums of ∇W are Σ_r ∇Logits[r, :]ᵀ h_r; the softmax−onehot
        // rows each sum to zero, so Σ_v ∇W[v] = Σ_r (Σ_c ∇Logits[r,c]) h_r = 0.
        let (n, d, v) = (6, 4, 9);
        let h = randn_mat(n, d, 1.0, 140);
        let w = randn_mat(v, d, 1.0, 141);
        let y = targets(n, v, 142);
        let out = fused_lm_loss(&h, &w, &y);
        for c in 0..d {
            let col_sum: f32 = (0..v).map(|r| out.grad_w.get(r, c)).sum();
            assert!(col_sum.abs() < 1e-4, "col {c} sums to {col_sum}");
        }
    }

    #[test]
    #[should_panic(expected = "target out of vocabulary")]
    fn rejects_out_of_vocab_target() {
        let h = randn_mat(2, 2, 1.0, 150);
        let w = randn_mat(3, 2, 1.0, 151);
        let _ = fused_lm_loss(&h, &w, &[0, 3]);
    }
}
