//! Sequence-level fusion of the LM head and cross-entropy loss
//! (paper §3.3, Algorithm 3).
//!
//! The LM head `Logits = H W_headᵀ` produces an `N × v` matrix — at 1M
//! tokens and a 128K vocabulary, half a terabyte in bf16 (paper Fig. 8). The
//! fused kernel tiles `H` along the sequence (`B_s` rows) and `W_head` along
//! the vocabulary (`B_v` rows), accumulates the per-row log-sum-exp online,
//! and runs the backward **immediately after** each row tile's forward,
//! while that tile's logits are still live — so nothing is recomputed and
//! the live working set is `B_s × v` instead of `N × v`.
//!
//! Gradient convention: mean-reduced cross-entropy, i.e.
//! `∇Logits = (softmax(Logits) − onehot(Y)) / N`.

use burst_tensor::Mat;

/// Default sequence-tile rows.
pub const DEFAULT_BLOCK_S: usize = 32;
/// Default vocabulary-tile rows.
pub const DEFAULT_BLOCK_V: usize = 64;

/// Result of an LM-head + loss evaluation (forward **and** backward).
#[derive(Debug, Clone)]
pub struct LmLossOut {
    /// Mean cross-entropy over the `N` positions.
    pub loss: f32,
    /// Per-position losses.
    pub losses: Vec<f32>,
    /// Gradient w.r.t. the hidden states, `N × d`.
    pub grad_h: Mat,
    /// Gradient w.r.t. the head weights, `v × d`.
    pub grad_w: Mat,
    /// Per-position log-sum-exp over the vocabulary.
    pub lse: Vec<f32>,
    /// Peak number of live logit elements — the quantity Fig. 8 plots.
    pub peak_logits_elems: usize,
}

/// Unfused reference: materialises the full `N × v` logits matrix.
#[track_caller]
pub fn naive_lm_loss(h: &Mat, w: &Mat, targets: &[usize]) -> LmLossOut {
    let n = h.rows();
    let v = w.rows();
    assert_eq!(targets.len(), n, "naive_lm_loss: target length");
    assert!(
        targets.iter().all(|&t| t < v),
        "naive_lm_loss: target out of vocabulary"
    );
    let logits = h.matmul_nt(w);
    let lse = logits.lse_rows();
    let losses: Vec<f32> = (0..n).map(|r| lse[r] - logits.get(r, targets[r])).collect();
    let loss = losses.iter().sum::<f32>() / n as f32;
    // ∇Logits = (softmax − onehot) / N
    let mut grad_logits = logits.exp_sub_rowwise(&lse);
    let inv_n = 1.0 / n as f32;
    for r in 0..n {
        let row = grad_logits.row_mut(r);
        for x in row.iter_mut() {
            *x *= inv_n;
        }
        row[targets[r]] -= inv_n;
    }
    let grad_h = grad_logits.matmul(w);
    let grad_w = grad_logits.matmul_tn(h);
    LmLossOut {
        loss,
        losses,
        grad_h,
        grad_w,
        lse,
        peak_logits_elems: n * v,
    }
}

/// Algorithm 3 with default tile sizes.
pub fn fused_lm_loss(h: &Mat, w: &Mat, targets: &[usize]) -> LmLossOut {
    fused_lm_loss_with_blocks(h, w, targets, DEFAULT_BLOCK_S, DEFAULT_BLOCK_V)
}

/// Algorithm 3: tiled, fused forward + backward of LM head and loss.
#[track_caller]
pub fn fused_lm_loss_with_blocks(
    h: &Mat,
    w: &Mat,
    targets: &[usize],
    block_s: usize,
    block_v: usize,
) -> LmLossOut {
    assert!(block_s > 0 && block_v > 0, "fused_lm_loss: zero tile size");
    let n = h.rows();
    let v = w.rows();
    let d = h.cols();
    assert_eq!(w.cols(), d, "fused_lm_loss: H/W dim mismatch");
    assert_eq!(targets.len(), n, "fused_lm_loss: target length");
    assert!(
        targets.iter().all(|&t| t < v),
        "fused_lm_loss: target out of vocabulary"
    );

    let inv_n = 1.0 / n as f32;
    let mut losses = vec![0.0f32; n];
    let mut lse_all = vec![0.0f32; n];
    let mut grad_h = Mat::zeros(n, d);
    let mut grad_w = Mat::zeros(v, d);
    let n_vtiles = v.div_ceil(block_v);
    // Live logits: one row tile × the whole vocabulary (B_s × v), reused
    // across row tiles — this bounded buffer is the fusion's memory win.
    let peak_logits_elems = block_s.min(n) * v;

    let mut r0 = 0;
    while r0 < n {
        let r1 = (r0 + block_s).min(n);
        let hb = h.slice_rows(r0, r1);
        let rows = r1 - r0;
        // ---- forward over vocabulary tiles: logits + online LSE ----
        let mut tiles: Vec<Mat> = Vec::with_capacity(n_vtiles);
        let mut lse = vec![f32::NEG_INFINITY; rows];
        let mut c0 = 0;
        while c0 < v {
            let c1 = (c0 + block_v).min(v);
            let wb = w.slice_rows(c0, c1);
            let logits = hb.matmul_nt(&wb);
            let tile_lse = logits.lse_rows();
            for (acc, t) in lse.iter_mut().zip(&tile_lse) {
                *acc = crate::online::OnlineState::merge_lse(*acc, *t);
            }
            tiles.push(logits);
            c0 = c1;
        }
        // ---- loss: ℒ_r = Lse_r − h_r · w_{y_r} ----
        for r in 0..rows {
            let y = targets[r0 + r];
            let dot: f32 = hb.row(r).iter().zip(w.row(y)).map(|(a, b)| a * b).sum();
            losses[r0 + r] = lse[r] - dot;
        }
        lse_all[r0..r1].copy_from_slice(&lse);
        // ---- backward immediately, reusing the live logits tiles ----
        for (j, logits) in tiles.iter().enumerate() {
            let c0 = j * block_v;
            let c1 = (c0 + block_v).min(v);
            let wb = w.slice_rows(c0, c1);
            let mut grad_logits = logits.exp_sub_rowwise(&lse);
            for r in 0..rows {
                let row = grad_logits.row_mut(r);
                for x in row.iter_mut() {
                    *x *= inv_n;
                }
                let y = targets[r0 + r];
                if (c0..c1).contains(&y) {
                    row[y - c0] -= inv_n;
                }
            }
            // ∇H_block += ∇Logits_tile · W_tile
            let gh = grad_logits.matmul(&wb);
            for (r, gr) in (r0..r1).zip(0..gh.rows()) {
                let dst = grad_h.row_mut(r);
                for (o, x) in dst.iter_mut().zip(gh.row(gr)) {
                    *o += x;
                }
            }
            // ∇W_tile += ∇Logitsᵀ · H_block
            let gw = grad_logits.matmul_tn(&hb);
            for (r, gr) in (c0..c1).zip(0..gw.rows()) {
                let dst = grad_w.row_mut(r);
                for (o, x) in dst.iter_mut().zip(gw.row(gr)) {
                    *o += x;
                }
            }
        }
        r0 = r1;
    }
    let loss = losses.iter().sum::<f32>() * inv_n;
    LmLossOut {
        loss,
        losses,
        grad_h,
        grad_w,
        lse: lse_all,
        peak_logits_elems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::{assert_allclose, assert_allclose_vec, numerical_grad};
    use rand::prelude::*;

    fn targets(n: usize, v: usize, seed: u64) -> Vec<usize> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..v)).collect()
    }

    #[test]
    fn fused_matches_naive_across_tilings() {
        let (n, d, v) = (13, 6, 23);
        let h = randn_mat(n, d, 0.8, 100);
        let w = randn_mat(v, d, 0.8, 101);
        let y = targets(n, v, 102);
        let reference = naive_lm_loss(&h, &w, &y);
        for (bs, bv) in [(1, 1), (4, 8), (5, 7), (32, 64), (13, 23)] {
            let fused = fused_lm_loss_with_blocks(&h, &w, &y, bs, bv);
            assert!(
                (fused.loss - reference.loss).abs() < 1e-4,
                "loss mismatch at tiles ({bs},{bv})"
            );
            assert_allclose(&fused.grad_h, &reference.grad_h, 1e-4, "∇H");
            assert_allclose(&fused.grad_w, &reference.grad_w, 1e-4, "∇W");
            assert_allclose_vec(&fused.lse, &reference.lse, 1e-4, "lse");
            assert_allclose_vec(&fused.losses, &reference.losses, 1e-4, "losses");
        }
    }

    #[test]
    fn loss_is_negative_log_probability_of_target() {
        let (n, d, v) = (4, 3, 7);
        let h = randn_mat(n, d, 1.0, 110);
        let w = randn_mat(v, d, 1.0, 111);
        let y = targets(n, v, 112);
        let out = fused_lm_loss(&h, &w, &y);
        let logits = h.matmul_nt(&w);
        let p = logits.softmax_rows();
        for r in 0..n {
            let expect = -p.get(r, y[r]).ln();
            assert!(
                (out.losses[r] - expect).abs() < 1e-4,
                "row {r}: {} vs {}",
                out.losses[r],
                expect
            );
        }
    }

    #[test]
    fn gradients_match_numerical() {
        let (n, d, v) = (5, 3, 6);
        let h = randn_mat(n, d, 0.7, 120);
        let w = randn_mat(v, d, 0.7, 121);
        let y = targets(n, v, 122);
        let out = fused_lm_loss(&h, &w, &y);
        let y2 = y.clone();
        let w2 = w.clone();
        let nh = numerical_grad(&h, 1e-2, move |m| fused_lm_loss(m, &w2, &y2).loss);
        assert_allclose(&out.grad_h, &nh, 2e-2, "∇H numerical");
        let y3 = y.clone();
        let h2 = h.clone();
        let nw = numerical_grad(&w, 1e-2, move |m| fused_lm_loss(&h2, m, &y3).loss);
        assert_allclose(&out.grad_w, &nw, 2e-2, "∇W numerical");
    }

    #[test]
    fn peak_logits_memory_is_bounded_by_row_tile() {
        let (n, d, v) = (64, 4, 50);
        let h = randn_mat(n, d, 1.0, 130);
        let w = randn_mat(v, d, 1.0, 131);
        let y = targets(n, v, 132);
        let naive = naive_lm_loss(&h, &w, &y);
        let fused = fused_lm_loss_with_blocks(&h, &w, &y, 8, 16);
        assert_eq!(naive.peak_logits_elems, n * v);
        assert_eq!(fused.peak_logits_elems, 8 * v);
        assert!(fused.peak_logits_elems < naive.peak_logits_elems / 4);
    }

    #[test]
    fn gradient_sums_to_zero_over_vocabulary() {
        // Column sums of ∇W are Σ_r ∇Logits[r, :]ᵀ h_r; the softmax−onehot
        // rows each sum to zero, so Σ_v ∇W[v] = Σ_r (Σ_c ∇Logits[r,c]) h_r = 0.
        let (n, d, v) = (6, 4, 9);
        let h = randn_mat(n, d, 1.0, 140);
        let w = randn_mat(v, d, 1.0, 141);
        let y = targets(n, v, 142);
        let out = fused_lm_loss(&h, &w, &y);
        for c in 0..d {
            let col_sum: f32 = (0..v).map(|r| out.grad_w.get(r, c)).sum();
            assert!(col_sum.abs() < 1e-4, "col {c} sums to {col_sum}");
        }
    }

    #[test]
    #[should_panic(expected = "target out of vocabulary")]
    fn rejects_out_of_vocab_target() {
        let h = randn_mat(2, 2, 1.0, 150);
        let w = randn_mat(3, 2, 1.0, 151);
        let _ = fused_lm_loss(&h, &w, &[0, 3]);
    }
}
