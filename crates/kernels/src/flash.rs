//! Blocked (FlashAttention-style) attention forward and backward.
//!
//! The forward tiles over keys and folds each tile's local softmax into an
//! [`OnlineState`], so the `N/G × N/G` score matrix of a ring step is never
//! stored beyond one tile. The backward is exposed at two levels:
//!
//! * [`attn_tile_backward`] — the tile kernel of Algorithms 1–2: given the
//!   *global* per-row `Lse` and `D = rowsum(∇O ∘ O)`, produce this tile's
//!   contributions `(∇Q, ∇K, ∇V)`. Ring algorithms call it once per ring
//!   step with remote partitions.
//! * [`flash_backward`] — the single-device composition: computes `D`
//!   locally and loops over local key tiles.
//!
//! All kernels take global token indices (`q_idx`, `k_idx`) so the
//! zigzag/striped layouts of §3.4 work unchanged, and they skip
//! fully-masked tiles — the savings measured in Table 3.

use crate::mask::{AttnMask, TileState};
use crate::online::OnlineState;
use burst_tensor::Mat;

/// Default square tile edge. Correctness never depends on it.
pub const DEFAULT_BLOCK: usize = 32;

/// Work counters: how much attention math a kernel actually performed.
///
/// `pairs` counts allowed (query, key) pairs — proportional to FLOPs — and
/// is what the simulator converts into virtual compute time, so workload
/// *imbalance* across ranks shows up as idle time exactly as on real GPUs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelWork {
    pub tiles_computed: usize,
    pub tiles_skipped: usize,
    pub pairs: u64,
}

impl KernelWork {
    pub fn merge(&mut self, other: KernelWork) {
        self.tiles_computed += other.tiles_computed;
        self.tiles_skipped += other.tiles_skipped;
        self.pairs += other.pairs;
    }
}

/// Output of the blocked forward: aggregated output, per-row log-sum-exp,
/// and work counters.
#[derive(Debug, Clone)]
pub struct FlashOut {
    pub o: Mat,
    pub lse: Vec<f32>,
    pub work: KernelWork,
}

fn count_pairs(mask: &AttnMask, state: TileState, q_idx: &[usize], k_idx: &[usize]) -> u64 {
    match state {
        TileState::FullyAllowed => (q_idx.len() * k_idx.len()) as u64,
        TileState::FullyMasked => 0,
        TileState::Partial => q_idx
            .iter()
            .map(|&i| k_idx.iter().filter(|&&j| mask.allowed(i, j)).count() as u64)
            .sum(),
    }
}

/// Apply `mask` to a score tile in place (`-inf` where disallowed).
fn mask_tile(s: &mut Mat, mask: &AttnMask, q_idx: &[usize], k_idx: &[usize]) {
    for (r, &gi) in q_idx.iter().enumerate() {
        let row = s.row_mut(r);
        for (c, &gj) in k_idx.iter().enumerate() {
            if !mask.allowed(gi, gj) {
                row[c] = f32::NEG_INFINITY;
            }
        }
    }
}

/// Blocked attention forward with online softmax, default tile size.
pub fn flash_forward(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
) -> FlashOut {
    flash_forward_with_block(q, k, v, scale, mask, q_idx, k_idx, DEFAULT_BLOCK)
}

/// Blocked attention forward with an explicit tile size.
#[allow(clippy::too_many_arguments)]
#[track_caller]
pub fn flash_forward_with_block(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
    block: usize,
) -> FlashOut {
    assert!(block > 0, "flash_forward: zero block");
    assert_eq!(q.rows(), q_idx.len(), "flash_forward: q_idx length");
    assert_eq!(k.rows(), k_idx.len(), "flash_forward: k_idx length");
    assert_eq!(k.rows(), v.rows(), "flash_forward: K/V rows");
    assert_eq!(q.cols(), k.cols(), "flash_forward: Q/K dim");
    let (n, d) = (q.rows(), v.cols());
    let mut o = Mat::zeros(n, d);
    let mut lse = vec![f32::NEG_INFINITY; n];
    let mut work = KernelWork::default();

    let mut r0 = 0;
    while r0 < n {
        let r1 = (r0 + block).min(n);
        let qb = q.slice_rows(r0, r1);
        let qi = &q_idx[r0..r1];
        let mut state = OnlineState::empty(r1 - r0, d);
        let mut c0 = 0;
        while c0 < k.rows() {
            let c1 = (c0 + block).min(k.rows());
            let ki = &k_idx[c0..c1];
            let tstate = mask.tile_state(qi, ki);
            if tstate == TileState::FullyMasked {
                work.tiles_skipped += 1;
                c0 = c1;
                continue;
            }
            let kb = k.slice_rows(c0, c1);
            let vb = v.slice_rows(c0, c1);
            let mut s = qb.matmul_nt(&kb);
            s.scale(scale);
            if tstate == TileState::Partial {
                mask_tile(&mut s, mask, qi, ki);
            }
            let tile_lse = s.lse_rows();
            let p = s.exp_sub_rowwise(&tile_lse);
            let o_tile = p.matmul(&vb);
            state.merge(&OnlineState::new(o_tile, tile_lse));
            work.tiles_computed += 1;
            work.pairs += count_pairs(mask, tstate, qi, ki);
            c0 = c1;
        }
        o.set_rows(r0, &state.o);
        lse[r0..r1].copy_from_slice(&state.lse);
        r0 = r1;
    }
    FlashOut { o, lse, work }
}

/// The tile backward kernel of Algorithms 1–2 (default tile size).
///
/// Inputs are a query block (with its gradient stream `∇O`, global `Lse`
/// and global `D = rowsum(∇O ∘ O)`) and a key/value block. Returns the
/// tile's additive contributions `(∇Q, ∇K, ∇V)` and work counters.
#[allow(clippy::too_many_arguments)]
pub fn attn_tile_backward(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    lse: &[f32],
    d_vec: &[f32],
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
) -> (Mat, Mat, Mat, KernelWork) {
    attn_tile_backward_with_block(
        q, k, v, grad_o, lse, d_vec, scale, mask, q_idx, k_idx, DEFAULT_BLOCK,
    )
}

/// [`attn_tile_backward`] with an explicit tile size.
#[allow(clippy::too_many_arguments)]
#[track_caller]
pub fn attn_tile_backward_with_block(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    lse: &[f32],
    d_vec: &[f32],
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
    block: usize,
) -> (Mat, Mat, Mat, KernelWork) {
    assert!(block > 0, "attn_tile_backward: zero block");
    assert_eq!(q.rows(), q_idx.len(), "attn_tile_backward: q_idx length");
    assert_eq!(k.rows(), k_idx.len(), "attn_tile_backward: k_idx length");
    assert_eq!(q.rows(), grad_o.rows(), "attn_tile_backward: ∇O rows");
    assert_eq!(q.rows(), lse.len(), "attn_tile_backward: Lse length");
    assert_eq!(q.rows(), d_vec.len(), "attn_tile_backward: D length");
    let mut grad_q = Mat::zeros(q.rows(), q.cols());
    let mut grad_k = Mat::zeros(k.rows(), k.cols());
    let mut grad_v = Mat::zeros(v.rows(), v.cols());
    let mut work = KernelWork::default();

    let mut r0 = 0;
    while r0 < q.rows() {
        let r1 = (r0 + block).min(q.rows());
        let qi = &q_idx[r0..r1];
        let qb = q.slice_rows(r0, r1);
        let dob = grad_o.slice_rows(r0, r1);
        let lse_b = &lse[r0..r1];
        let d_b = &d_vec[r0..r1];
        let mut c0 = 0;
        while c0 < k.rows() {
            let c1 = (c0 + block).min(k.rows());
            let ki = &k_idx[c0..c1];
            let tstate = mask.tile_state(qi, ki);
            if tstate == TileState::FullyMasked {
                work.tiles_skipped += 1;
                c0 = c1;
                continue;
            }
            let kb = k.slice_rows(c0, c1);
            let vb = v.slice_rows(c0, c1);
            // Recompute P for this tile from the stored global Lse.
            let mut s = qb.matmul_nt(&kb);
            s.scale(scale);
            if tstate == TileState::Partial {
                mask_tile(&mut s, mask, qi, ki);
            }
            let p = s.exp_sub_rowwise(lse_b);
            // ∇V_tile = Pᵀ ∇O
            let gv = p.matmul_tn(&dob);
            for (r, gr) in (c0..c1).zip(0..gv.rows()) {
                let dst = grad_v.row_mut(r);
                for (o, x) in dst.iter_mut().zip(gv.row(gr)) {
                    *o += x;
                }
            }
            // ∇P = ∇O Vᵀ ; ∇S = P ∘ (∇P − D)
            let grad_p = dob.matmul_nt(&vb);
            let mut grad_s = p;
            for r in 0..grad_s.rows() {
                let drow = d_b[r];
                let gp = grad_p.row(r);
                for (gs, g) in grad_s.row_mut(r).iter_mut().zip(gp) {
                    *gs *= g - drow;
                }
            }
            // ∇Q_block += scale · ∇S K ; ∇K_tile += scale · ∇Sᵀ Q
            let mut gq = grad_s.matmul(&kb);
            gq.scale(scale);
            for (r, gr) in (r0..r1).zip(0..gq.rows()) {
                let dst = grad_q.row_mut(r);
                for (o, x) in dst.iter_mut().zip(gq.row(gr)) {
                    *o += x;
                }
            }
            let mut gk = grad_s.matmul_tn(&qb);
            gk.scale(scale);
            for (r, gr) in (c0..c1).zip(0..gk.rows()) {
                let dst = grad_k.row_mut(r);
                for (o, x) in dst.iter_mut().zip(gk.row(gr)) {
                    *o += x;
                }
            }
            work.tiles_computed += 1;
            work.pairs += count_pairs(mask, tstate, qi, ki);
            c0 = c1;
        }
        r0 = r1;
    }
    (grad_q, grad_k, grad_v, work)
}

/// Single-device blocked backward: computes `D = rowsum(∇O ∘ O)` and runs
/// the tile kernel over the local keys.
#[allow(clippy::too_many_arguments)]
pub fn flash_backward(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    o: &Mat,
    grad_o: &Mat,
    lse: &[f32],
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
) -> (Mat, Mat, Mat, KernelWork) {
    let d_vec = grad_o.rowsum_hadamard(o);
    attn_tile_backward(q, k, v, grad_o, lse, &d_vec, scale, mask, q_idx, k_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::BlockSparseMask;
    use crate::naive::{naive_backward, naive_forward};
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::{assert_allclose, assert_allclose_vec};

    fn idx(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    fn all_masks(n: usize) -> Vec<AttnMask> {
        vec![
            AttnMask::Full,
            AttnMask::Causal,
            AttnMask::SlidingWindow { window: 5 },
            AttnMask::BlockSparse(BlockSparseMask::sliding_window_blocks(4, n.div_ceil(4), 2)),
        ]
    }

    #[test]
    fn forward_matches_naive_for_all_masks_and_blocks() {
        let (n, d) = (19, 6);
        let q = randn_mat(n, d, 0.8, 20);
        let k = randn_mat(n, d, 0.8, 21);
        let v = randn_mat(n, d, 0.8, 22);
        let scale = 1.0 / (d as f32).sqrt();
        for mask in all_masks(n) {
            let (o_ref, lse_ref) = naive_forward(&q, &k, &v, scale, &mask, &idx(n), &idx(n));
            for block in [4, 7, 32] {
                let out =
                    flash_forward_with_block(&q, &k, &v, scale, &mask, &idx(n), &idx(n), block);
                assert_allclose(&out.o, &o_ref, 1e-4, &format!("{mask:?} block {block}"));
                assert_allclose_vec(&out.lse, &lse_ref, 1e-4, "lse");
            }
        }
    }

    #[test]
    fn forward_handles_strided_global_indices() {
        // Striped layout: Q rows are tokens {1, 5, 9, 13}, K rows {3, 7, 11, 15}.
        let d = 4;
        let q = randn_mat(4, d, 1.0, 30);
        let k = randn_mat(4, d, 1.0, 31);
        let v = randn_mat(4, d, 1.0, 32);
        let qi = vec![1usize, 5, 9, 13];
        let ki = vec![3usize, 7, 11, 15];
        let mask = AttnMask::Causal;
        let (o_ref, lse_ref) = naive_forward(&q, &k, &v, 0.5, &mask, &qi, &ki);
        let out = flash_forward_with_block(&q, &k, &v, 0.5, &mask, &qi, &ki, 2);
        assert_allclose(&out.o, &o_ref, 1e-4, "strided forward");
        assert_allclose_vec(&out.lse, &lse_ref, 1e-4, "strided lse");
    }

    #[test]
    fn fully_masked_rows_produce_zero_output() {
        // Query token 0 with keys all in the future.
        let q = randn_mat(2, 3, 1.0, 40);
        let k = randn_mat(4, 3, 1.0, 41);
        let v = randn_mat(4, 3, 1.0, 42);
        let out = flash_forward(&q, &k, &v, 1.0, &AttnMask::Causal, &[0, 1], &[10, 11, 12, 13]);
        assert_eq!(out.o, burst_tensor::Mat::zeros(2, 3));
        assert!(out.lse.iter().all(|&l| l == f32::NEG_INFINITY));
        assert_eq!(out.work.pairs, 0);
    }

    #[test]
    fn backward_matches_naive_for_all_masks() {
        let (n, d) = (17, 5);
        let q = randn_mat(n, d, 0.7, 50);
        let k = randn_mat(n, d, 0.7, 51);
        let v = randn_mat(n, d, 0.7, 52);
        let grad_o = randn_mat(n, d, 1.0, 53);
        let scale = 1.0 / (d as f32).sqrt();
        for mask in all_masks(n) {
            let (gq_ref, gk_ref, gv_ref) =
                naive_backward(&q, &k, &v, &grad_o, scale, &mask, &idx(n), &idx(n));
            let out = flash_forward(&q, &k, &v, scale, &mask, &idx(n), &idx(n));
            for block in [4, 32] {
                let (gq, gk, gv, _) = {
                    let d_vec = grad_o.rowsum_hadamard(&out.o);
                    attn_tile_backward_with_block(
                        &q, &k, &v, &grad_o, &out.lse, &d_vec, scale, &mask, &idx(n), &idx(n),
                        block,
                    )
                };
                assert_allclose(&gq, &gq_ref, 1e-3, &format!("dQ {mask:?}"));
                assert_allclose(&gk, &gk_ref, 1e-3, &format!("dK {mask:?}"));
                assert_allclose(&gv, &gv_ref, 1e-3, &format!("dV {mask:?}"));
            }
        }
    }

    #[test]
    fn tile_backward_is_additive_over_key_partitions() {
        // Splitting K/V into two halves and summing the tile contributions
        // must equal the whole backward — the invariant ring attention
        // relies on.
        let (n, d) = (12, 4);
        let q = randn_mat(n, d, 0.7, 60);
        let k = randn_mat(n, d, 0.7, 61);
        let v = randn_mat(n, d, 0.7, 62);
        let grad_o = randn_mat(n, d, 1.0, 63);
        let scale = 0.5;
        let mask = AttnMask::Causal;
        let out = flash_forward(&q, &k, &v, scale, &mask, &idx(n), &idx(n));
        let d_vec = grad_o.rowsum_hadamard(&out.o);
        let (gq_ref, gk_ref, gv_ref, _) = attn_tile_backward(
            &q, &k, &v, &grad_o, &out.lse, &d_vec, scale, &mask, &idx(n), &idx(n),
        );
        let half = n / 2;
        let k1 = k.slice_rows(0, half);
        let v1 = v.slice_rows(0, half);
        let k2 = k.slice_rows(half, n);
        let v2 = v.slice_rows(half, n);
        let all_idx = idx(n);
        let (gq1, gk1, gv1, _) = attn_tile_backward(
            &q, &k1, &v1, &grad_o, &out.lse, &d_vec, scale, &mask, &all_idx, &all_idx[..half],
        );
        let (gq2, gk2, gv2, _) = attn_tile_backward(
            &q, &k2, &v2, &grad_o, &out.lse, &d_vec, scale, &mask, &all_idx, &all_idx[half..],
        );
        let mut gq = gq1;
        gq.add_assign(&gq2);
        assert_allclose(&gq, &gq_ref, 1e-4, "dQ additivity");
        let gk = burst_tensor::Mat::vstack(&[gk1, gk2]);
        let gv = burst_tensor::Mat::vstack(&[gv1, gv2]);
        assert_allclose(&gk, &gk_ref, 1e-4, "dK additivity");
        assert_allclose(&gv, &gv_ref, 1e-4, "dV additivity");
    }

    #[test]
    fn work_counters_match_mask_density() {
        let n = 32;
        let d = 4;
        let q = randn_mat(n, d, 1.0, 70);
        let k = randn_mat(n, d, 1.0, 71);
        let v = randn_mat(n, d, 1.0, 72);
        for mask in [
            AttnMask::Full,
            AttnMask::Causal,
            AttnMask::SlidingWindow { window: 8 },
        ] {
            let out = flash_forward_with_block(&q, &k, &v, 1.0, &mask, &idx(n), &idx(n), 8);
            assert_eq!(
                out.work.pairs as u128,
                mask.allowed_pairs(n),
                "pairs for {mask:?}"
            );
        }
        // Sliding window must skip distant tiles.
        let out = flash_forward_with_block(
            &q,
            &k,
            &v,
            1.0,
            &AttnMask::SlidingWindow { window: 4 },
            &idx(n),
            &idx(n),
            4,
        );
        assert!(out.work.tiles_skipped > 0, "SWA should skip far tiles");
    }

    #[test]
    fn flash_backward_convenience_matches_tile_kernel() {
        let (n, d) = (10, 3);
        let q = randn_mat(n, d, 0.7, 80);
        let k = randn_mat(n, d, 0.7, 81);
        let v = randn_mat(n, d, 0.7, 82);
        let grad_o = randn_mat(n, d, 1.0, 83);
        let mask = AttnMask::Full;
        let out = flash_forward(&q, &k, &v, 1.0, &mask, &idx(n), &idx(n));
        let (gq1, gk1, gv1, _) = flash_backward(
            &q, &k, &v, &out.o, &grad_o, &out.lse, 1.0, &mask, &idx(n), &idx(n),
        );
        let d_vec = grad_o.rowsum_hadamard(&out.o);
        let (gq2, gk2, gv2, _) = attn_tile_backward(
            &q, &k, &v, &grad_o, &out.lse, &d_vec, 1.0, &mask, &idx(n), &idx(n),
        );
        assert_allclose(&gq1, &gq2, 0.0, "dQ");
        assert_allclose(&gk1, &gk2, 0.0, "dK");
        assert_allclose(&gv1, &gv2, 0.0, "dV");
    }
}
