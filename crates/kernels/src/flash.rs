//! Blocked (FlashAttention-style) attention forward and backward.
//!
//! The forward tiles over keys and folds each tile's *unnormalised* softmax
//! into a running `(O, Lse)` accumulator, so the `N/G × N/G` score matrix of
//! a ring step is never stored beyond one tile and each score element costs
//! a single `exp`. The backward is exposed at two levels:
//!
//! * [`attn_tile_backward`] — the tile kernel of Algorithms 1–2: given the
//!   *global* per-row `Lse` and `D = rowsum(∇O ∘ O)`, produce this tile's
//!   contributions `(∇Q, ∇K, ∇V)`. Ring algorithms call it once per ring
//!   step with remote partitions.
//! * [`flash_backward`] — the single-device composition: computes `D`
//!   locally and loops over local key tiles.
//!
//! Both directions also come in `_acc` form ([`flash_forward_acc`],
//! [`attn_tile_backward_acc`]) which accumulate into caller-owned buffers
//! through a reusable [`Scratch`] workspace; the ring loops call these every
//! round so steady-state rounds perform zero heap allocations.
//!
//! Large single calls parallelise over query row-blocks (and key row-blocks
//! in the backward) with a fixed block→task mapping, so results are
//! bit-identical for any thread count: every output row sees the same tile
//! contributions, computed by the same code, folded in the same order.
//!
//! All kernels take global token indices (`q_idx`, `k_idx`) so the
//! zigzag/striped layouts of §3.4 work unchanged, and they skip
//! fully-masked tiles — the savings measured in Table 3.

use crate::mask::{AttnMask, TileState};
use crate::online::OnlineState;
use burst_tensor::{
    axpy_rows_slice, matmul_into, matmul_nt_into, matmul_tn_into, simd, Mat, MatRef, Scratch,
};

/// Default square tile edge. Correctness never depends on it.
pub const DEFAULT_BLOCK: usize = 32;

/// Problem volume (`q_rows · k_rows · head_dim`) below which the fork/join
/// overhead of parallel dispatch outweighs the work and the kernels stay
/// serial. Determinism never depends on which path runs.
const PAR_VOLUME: usize = 64 * 64 * 16;

/// Work counters: how much attention math a kernel actually performed.
///
/// `pairs` counts allowed (query, key) pairs — proportional to FLOPs — and
/// is what the simulator converts into virtual compute time, so workload
/// *imbalance* across ranks shows up as idle time exactly as on real GPUs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelWork {
    pub tiles_computed: usize,
    pub tiles_skipped: usize,
    pub pairs: u64,
}

impl KernelWork {
    pub fn merge(&mut self, other: KernelWork) {
        self.tiles_computed += other.tiles_computed;
        self.tiles_skipped += other.tiles_skipped;
        self.pairs += other.pairs;
    }
}

/// Output of the blocked forward: aggregated output, per-row log-sum-exp,
/// and work counters.
#[derive(Debug, Clone)]
pub struct FlashOut {
    pub o: Mat,
    pub lse: Vec<f32>,
    pub work: KernelWork,
}

fn count_pairs(mask: &AttnMask, state: TileState, q_idx: &[usize], k_idx: &[usize]) -> u64 {
    match state {
        TileState::FullyAllowed => (q_idx.len() * k_idx.len()) as u64,
        TileState::FullyMasked => 0,
        TileState::Partial => q_idx
            .iter()
            .map(|&i| k_idx.iter().filter(|&&j| mask.allowed(i, j)).count() as u64)
            .sum(),
    }
}

/// Apply `mask` to a score tile in place (`-inf` where disallowed).
fn mask_tile(s: &mut Mat, mask: &AttnMask, q_idx: &[usize], k_idx: &[usize]) {
    for (r, &gi) in q_idx.iter().enumerate() {
        let row = s.row_mut(r);
        for (c, &gj) in k_idx.iter().enumerate() {
            if !mask.allowed(gi, gj) {
                row[c] = f32::NEG_INFINITY;
            }
        }
    }
}

/// Borrowed problem description threaded through the tile loops.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    q: MatRef<'a>,
    k: MatRef<'a>,
    v: MatRef<'a>,
    scale: f32,
    mask: &'a AttnMask,
    q_idx: &'a [usize],
    k_idx: &'a [usize],
    block: usize,
}

/// [`Ctx`] plus the backward-only streams.
#[derive(Clone, Copy)]
struct BwdCtx<'a> {
    fwd: Ctx<'a>,
    grad_o: MatRef<'a>,
    lse: &'a [f32],
    d_vec: &'a [f32],
}

/// `[start, end)` row ranges covering `0..n` in steps of `block`.
pub(crate) fn row_blocks(n: usize, block: usize) -> Vec<(usize, usize)> {
    let mut blocks = Vec::with_capacity(n.div_ceil(block.max(1)));
    let mut r = 0;
    while r < n {
        let e = (r + block).min(n);
        blocks.push((r, e));
        r = e;
    }
    blocks
}

/// Forward for query rows `[r0, r1)`: tile over all keys and merge each
/// tile into `(o_rows, lse_rows)` online.
///
/// Each tile costs one `exp` per score element: the tile keeps the
/// unnormalised `P̃ = exp(s − rowmax)`, and since
/// `Õ = P̃ · V = exp(s − m) · V`, the normalised-tile merge weight
/// `exp(l_t − l_new) / Σp̃` collapses to `exp(m − l_new)` — no second
/// normalisation pass either.
fn forward_rows(
    ctx: &Ctx<'_>,
    r0: usize,
    r1: usize,
    o_rows: &mut [f32],
    lse_rows: &mut [f32],
    scratch: &mut Scratch,
) -> KernelWork {
    let dv = ctx.v.cols();
    let qb = ctx.q.rows_view(r0, r1);
    let qi = &ctx.q_idx[r0..r1];
    let mut work = KernelWork::default();
    let Scratch {
        score,
        gtmp,
        tile_lse,
        tile_max,
        ..
    } = scratch;
    let mut c0 = 0;
    while c0 < ctx.k.rows() {
        let c1 = (c0 + ctx.block).min(ctx.k.rows());
        let ki = &ctx.k_idx[c0..c1];
        let tstate = ctx.mask.tile_state(qi, ki);
        if tstate == TileState::FullyMasked {
            work.tiles_skipped += 1;
            c0 = c1;
            continue;
        }
        matmul_nt_into(qb, ctx.k.rows_view(c0, c1), score);
        score.scale(ctx.scale);
        if tstate == TileState::Partial {
            mask_tile(score, ctx.mask, qi, ki);
        }
        // P̃ = exp(s − rowmax) in place, Σp̃ accumulated on the fly.
        tile_max.clear();
        tile_lse.clear();
        for r in 0..score.rows() {
            let row = score.row_mut(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if m == f32::NEG_INFINITY {
                row.fill(0.0);
                tile_max.push(f32::NEG_INFINITY);
                tile_lse.push(f32::NEG_INFINITY);
                continue;
            }
            let sum = simd::exp_shift_sum_inplace(row, m);
            tile_max.push(m);
            tile_lse.push(m + sum.ln());
        }
        // Õ = P̃ · V_tile (unnormalised).
        matmul_into(score.view(), ctx.v.rows_view(c0, c1), gtmp);
        for r in 0..gtmp.rows() {
            let lt = tile_lse[r];
            if lt == f32::NEG_INFINITY {
                continue;
            }
            let la = lse_rows[r];
            let lnew = OnlineState::merge_lse(la, lt);
            let wa = if la == f32::NEG_INFINITY {
                0.0
            } else {
                (la - lnew).exp()
            };
            let wt = (tile_max[r] - lnew).exp();
            let orow = &mut o_rows[r * dv..(r + 1) * dv];
            simd::weighted_merge(orow, gtmp.row(r), wa, wt);
            lse_rows[r] = lnew;
        }
        work.tiles_computed += 1;
        work.pairs += count_pairs(ctx.mask, tstate, qi, ki);
        c0 = c1;
    }
    work
}

/// Run `forward_rows` over a list of row blocks, recursively forking at
/// block boundaries when `parallel`. The block list is fixed by the problem
/// shape, every block is processed by identical code against disjoint
/// output rows, so the split never changes results.
fn forward_blocks(
    ctx: &Ctx<'_>,
    blocks: &[(usize, usize)],
    o: &mut [f32],
    lse: &mut [f32],
    parallel: bool,
) -> KernelWork {
    let Some(&(base, _)) = blocks.first() else {
        return KernelWork::default();
    };
    let dv = ctx.v.cols();
    if !parallel || blocks.len() == 1 {
        let mut scratch = Scratch::new();
        let mut work = KernelWork::default();
        for &(r0, r1) in blocks {
            let w = forward_rows(
                ctx,
                r0,
                r1,
                &mut o[(r0 - base) * dv..(r1 - base) * dv],
                &mut lse[r0 - base..r1 - base],
                &mut scratch,
            );
            work.merge(w);
        }
        return work;
    }
    let (lo, hi) = blocks.split_at(blocks.len() / 2);
    let cut = hi[0].0 - base;
    let (o_lo, o_hi) = o.split_at_mut(cut * dv);
    let (l_lo, l_hi) = lse.split_at_mut(cut);
    let (mut wa, wb) = rayon::join(
        || forward_blocks(ctx, lo, o_lo, l_lo, true),
        || forward_blocks(ctx, hi, o_hi, l_hi, true),
    );
    wa.merge(wb);
    wa
}

/// Blocked attention forward with online softmax, default tile size.
pub fn flash_forward(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
) -> FlashOut {
    flash_forward_with_block(q, k, v, scale, mask, q_idx, k_idx, DEFAULT_BLOCK)
}

/// Blocked attention forward with an explicit tile size.
#[allow(clippy::too_many_arguments)]
#[track_caller]
pub fn flash_forward_with_block(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
    block: usize,
) -> FlashOut {
    assert!(block > 0, "flash_forward: zero block");
    assert_eq!(q.rows(), q_idx.len(), "flash_forward: q_idx length");
    assert_eq!(k.rows(), k_idx.len(), "flash_forward: k_idx length");
    assert_eq!(k.rows(), v.rows(), "flash_forward: K/V rows");
    assert_eq!(q.cols(), k.cols(), "flash_forward: Q/K dim");
    let (n, dv) = (q.rows(), v.cols());
    let mut o = Mat::zeros(n, dv);
    let mut lse = vec![f32::NEG_INFINITY; n];
    let ctx = Ctx {
        q: q.view(),
        k: k.view(),
        v: v.view(),
        scale,
        mask,
        q_idx,
        k_idx,
        block,
    };
    let blocks = row_blocks(n, block);
    let parallel = blocks.len() > 1
        && n * k.rows() * q.cols() >= PAR_VOLUME
        && rayon::current_num_threads() > 1;
    let work = forward_blocks(&ctx, &blocks, o.as_mut_slice(), &mut lse, parallel);
    FlashOut { o, lse, work }
}

/// Forward one K/V partition *into* a running `(acc_o, acc_lse)` pair.
///
/// This is the ring-round entry point: `acc_o`/`acc_lse` carry the online
/// state across rounds (initialise to zeros / `-inf`), and all temporaries
/// live in `scratch`, so after the first round a ring step allocates
/// nothing. Merging partitions here is bit-identical to passing the
/// concatenated keys to [`flash_forward`] tile by tile.
#[allow(clippy::too_many_arguments)]
#[track_caller]
pub fn flash_forward_acc(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
    acc_o: &mut Mat,
    acc_lse: &mut [f32],
    scratch: &mut Scratch,
) -> KernelWork {
    assert_eq!(q.rows(), q_idx.len(), "flash_forward_acc: q_idx length");
    assert_eq!(k.rows(), k_idx.len(), "flash_forward_acc: k_idx length");
    assert_eq!(k.rows(), v.rows(), "flash_forward_acc: K/V rows");
    assert_eq!(q.cols(), k.cols(), "flash_forward_acc: Q/K dim");
    assert_eq!(
        acc_o.shape(),
        (q.rows(), v.cols()),
        "flash_forward_acc: acc_o shape"
    );
    assert_eq!(q.rows(), acc_lse.len(), "flash_forward_acc: acc_lse length");
    let ctx = Ctx {
        q: q.view(),
        k: k.view(),
        v: v.view(),
        scale,
        mask,
        q_idx,
        k_idx,
        block: DEFAULT_BLOCK,
    };
    let dv = v.cols();
    let mut work = KernelWork::default();
    let mut r0 = 0;
    while r0 < q.rows() {
        let r1 = (r0 + DEFAULT_BLOCK).min(q.rows());
        let w = forward_rows(
            &ctx,
            r0,
            r1,
            &mut acc_o.as_mut_slice()[r0 * dv..r1 * dv],
            &mut acc_lse[r0..r1],
            scratch,
        );
        work.merge(w);
        r0 = r1;
    }
    work
}

/// Recompute the probability tile `P = exp(scale·Q_b K_bᵀ − Lse_b)` into
/// `score` from the stored global `Lse`.
fn recompute_p(
    ctx: &BwdCtx<'_>,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    tstate: TileState,
    score: &mut Mat,
) {
    let f = &ctx.fwd;
    matmul_nt_into(f.q.rows_view(r0, r1), f.k.rows_view(c0, c1), score);
    score.scale(f.scale);
    if tstate == TileState::Partial {
        mask_tile(score, f.mask, &f.q_idx[r0..r1], &f.k_idx[c0..c1]);
    }
    score.exp_sub_rowwise_inplace(&ctx.lse[r0..r1]);
}

/// `∇S = P ∘ (∇P − D)`, overwriting `P` in `score` (vectorized per row).
fn ds_in_place(score: &mut Mat, gp: &Mat, d_b: &[f32]) {
    for (r, &drow) in d_b.iter().enumerate().take(score.rows()) {
        simd::mul_by_diff(score.row_mut(r), gp.row(r), drow);
    }
}

/// Serial single sweep over all (query, key) tiles, accumulating into the
/// raw storage of all three gradients. This is both the small-problem path
/// and the `_acc` ring path.
fn backward_sweep(
    ctx: &BwdCtx<'_>,
    gq: &mut [f32],
    gk: &mut [f32],
    gv: &mut [f32],
    scratch: &mut Scratch,
) -> KernelWork {
    let f = &ctx.fwd;
    let mut work = KernelWork::default();
    let Scratch {
        score, gp, gtmp, ..
    } = scratch;
    let mut r0 = 0;
    while r0 < f.q.rows() {
        let r1 = (r0 + f.block).min(f.q.rows());
        let qi = &f.q_idx[r0..r1];
        let dob = ctx.grad_o.rows_view(r0, r1);
        let d_b = &ctx.d_vec[r0..r1];
        let mut c0 = 0;
        while c0 < f.k.rows() {
            let c1 = (c0 + f.block).min(f.k.rows());
            let ki = &f.k_idx[c0..c1];
            let tstate = f.mask.tile_state(qi, ki);
            if tstate == TileState::FullyMasked {
                work.tiles_skipped += 1;
                c0 = c1;
                continue;
            }
            recompute_p(ctx, r0, r1, c0, c1, tstate, score);
            // ∇V_tile += Pᵀ ∇O
            matmul_tn_into(score.view(), dob, gtmp);
            axpy_rows_slice(gv, c0, 1.0, gtmp);
            // ∇P = ∇O Vᵀ ; ∇S = P ∘ (∇P − D)
            matmul_nt_into(dob, f.v.rows_view(c0, c1), gp);
            ds_in_place(score, gp, d_b);
            // ∇Q_block += scale · ∇S K ; ∇K_tile += scale · ∇Sᵀ Q
            matmul_into(score.view(), f.k.rows_view(c0, c1), gtmp);
            axpy_rows_slice(gq, r0, f.scale, gtmp);
            matmul_tn_into(score.view(), f.q.rows_view(r0, r1), gtmp);
            axpy_rows_slice(gk, c0, f.scale, gtmp);
            work.tiles_computed += 1;
            work.pairs += count_pairs(f.mask, tstate, qi, ki);
            c0 = c1;
        }
        r0 = r1;
    }
    work
}

/// `∇Q` for query rows `[r0, r1)` (pass Q of the parallel backward):
/// owns the work counters so each tile is counted exactly once.
fn backward_q_rows(
    ctx: &BwdCtx<'_>,
    r0: usize,
    r1: usize,
    gq_rows: &mut [f32],
    scratch: &mut Scratch,
) -> KernelWork {
    let f = &ctx.fwd;
    let mut work = KernelWork::default();
    let Scratch {
        score, gp, gtmp, ..
    } = scratch;
    let qi = &f.q_idx[r0..r1];
    let dob = ctx.grad_o.rows_view(r0, r1);
    let d_b = &ctx.d_vec[r0..r1];
    let mut c0 = 0;
    while c0 < f.k.rows() {
        let c1 = (c0 + f.block).min(f.k.rows());
        let ki = &f.k_idx[c0..c1];
        let tstate = f.mask.tile_state(qi, ki);
        if tstate == TileState::FullyMasked {
            work.tiles_skipped += 1;
            c0 = c1;
            continue;
        }
        recompute_p(ctx, r0, r1, c0, c1, tstate, score);
        matmul_nt_into(dob, f.v.rows_view(c0, c1), gp);
        ds_in_place(score, gp, d_b);
        matmul_into(score.view(), f.k.rows_view(c0, c1), gtmp);
        axpy_rows_slice(gq_rows, 0, f.scale, gtmp);
        work.tiles_computed += 1;
        work.pairs += count_pairs(f.mask, tstate, qi, ki);
        c0 = c1;
    }
    work
}

/// `∇K`/`∇V` for key rows `[c0, c1)` (pass K of the parallel backward).
/// Per destination row the query blocks are folded in ascending order —
/// the same order the serial sweep uses — so both paths are bit-identical.
fn backward_kv_rows(
    ctx: &BwdCtx<'_>,
    c0: usize,
    c1: usize,
    gk_rows: &mut [f32],
    gv_rows: &mut [f32],
    scratch: &mut Scratch,
) {
    let f = &ctx.fwd;
    let Scratch {
        score, gp, gtmp, ..
    } = scratch;
    let ki = &f.k_idx[c0..c1];
    let mut r0 = 0;
    while r0 < f.q.rows() {
        let r1 = (r0 + f.block).min(f.q.rows());
        let qi = &f.q_idx[r0..r1];
        let tstate = f.mask.tile_state(qi, ki);
        if tstate == TileState::FullyMasked {
            r0 = r1;
            continue;
        }
        let dob = ctx.grad_o.rows_view(r0, r1);
        recompute_p(ctx, r0, r1, c0, c1, tstate, score);
        matmul_tn_into(score.view(), dob, gtmp);
        axpy_rows_slice(gv_rows, 0, 1.0, gtmp);
        matmul_nt_into(dob, f.v.rows_view(c0, c1), gp);
        ds_in_place(score, gp, &ctx.d_vec[r0..r1]);
        matmul_tn_into(score.view(), f.q.rows_view(r0, r1), gtmp);
        axpy_rows_slice(gk_rows, 0, f.scale, gtmp);
        r0 = r1;
    }
}

fn par_backward_q(ctx: &BwdCtx<'_>, blocks: &[(usize, usize)], gq: &mut [f32]) -> KernelWork {
    let Some(&(base, _)) = blocks.first() else {
        return KernelWork::default();
    };
    if blocks.len() == 1 {
        let (r0, r1) = blocks[0];
        return backward_q_rows(ctx, r0, r1, gq, &mut Scratch::new());
    }
    let (lo, hi) = blocks.split_at(blocks.len() / 2);
    let (gq_lo, gq_hi) = gq.split_at_mut((hi[0].0 - base) * ctx.fwd.q.cols());
    let (mut wa, wb) = rayon::join(
        || par_backward_q(ctx, lo, gq_lo),
        || par_backward_q(ctx, hi, gq_hi),
    );
    wa.merge(wb);
    wa
}

fn par_backward_kv(ctx: &BwdCtx<'_>, blocks: &[(usize, usize)], gk: &mut [f32], gv: &mut [f32]) {
    let Some(&(base, _)) = blocks.first() else {
        return;
    };
    if blocks.len() == 1 {
        let (c0, c1) = blocks[0];
        backward_kv_rows(ctx, c0, c1, gk, gv, &mut Scratch::new());
        return;
    }
    let (lo, hi) = blocks.split_at(blocks.len() / 2);
    let cut = hi[0].0 - base;
    let (gk_lo, gk_hi) = gk.split_at_mut(cut * ctx.fwd.k.cols());
    let (gv_lo, gv_hi) = gv.split_at_mut(cut * ctx.fwd.v.cols());
    rayon::join(
        || par_backward_kv(ctx, lo, gk_lo, gv_lo),
        || par_backward_kv(ctx, hi, gk_hi, gv_hi),
    );
}

/// The tile backward kernel of Algorithms 1–2 (default tile size).
///
/// Inputs are a query block (with its gradient stream `∇O`, global `Lse`
/// and global `D = rowsum(∇O ∘ O)`) and a key/value block. Returns the
/// tile's additive contributions `(∇Q, ∇K, ∇V)` and work counters.
#[allow(clippy::too_many_arguments)]
pub fn attn_tile_backward(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    lse: &[f32],
    d_vec: &[f32],
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
) -> (Mat, Mat, Mat, KernelWork) {
    attn_tile_backward_with_block(
        q,
        k,
        v,
        grad_o,
        lse,
        d_vec,
        scale,
        mask,
        q_idx,
        k_idx,
        DEFAULT_BLOCK,
    )
}

/// [`attn_tile_backward`] with an explicit tile size.
///
/// Large problems run two parallel passes — one over query blocks for `∇Q`,
/// one over key blocks for `∇K`/`∇V` — each writing disjoint rows. Small
/// problems run one serial sweep. Per destination row both schedules fold
/// the same tile contributions in the same order, so the result does not
/// depend on thread count.
#[allow(clippy::too_many_arguments)]
#[track_caller]
pub fn attn_tile_backward_with_block(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    lse: &[f32],
    d_vec: &[f32],
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
    block: usize,
) -> (Mat, Mat, Mat, KernelWork) {
    assert!(block > 0, "attn_tile_backward: zero block");
    assert_eq!(q.rows(), q_idx.len(), "attn_tile_backward: q_idx length");
    assert_eq!(k.rows(), k_idx.len(), "attn_tile_backward: k_idx length");
    assert_eq!(q.rows(), grad_o.rows(), "attn_tile_backward: ∇O rows");
    assert_eq!(q.rows(), lse.len(), "attn_tile_backward: Lse length");
    assert_eq!(q.rows(), d_vec.len(), "attn_tile_backward: D length");
    let mut grad_q = Mat::zeros(q.rows(), q.cols());
    let mut grad_k = Mat::zeros(k.rows(), k.cols());
    let mut grad_v = Mat::zeros(v.rows(), v.cols());
    let ctx = BwdCtx {
        fwd: Ctx {
            q: q.view(),
            k: k.view(),
            v: v.view(),
            scale,
            mask,
            q_idx,
            k_idx,
            block,
        },
        grad_o: grad_o.view(),
        lse,
        d_vec,
    };
    let qblocks = row_blocks(q.rows(), block);
    let kblocks = row_blocks(k.rows(), block);
    let parallel = (qblocks.len() > 1 || kblocks.len() > 1)
        && q.rows() * k.rows() * q.cols() >= PAR_VOLUME
        && rayon::current_num_threads() > 1;
    let work = if parallel {
        let work = par_backward_q(&ctx, &qblocks, grad_q.as_mut_slice());
        par_backward_kv(&ctx, &kblocks, grad_k.as_mut_slice(), grad_v.as_mut_slice());
        work
    } else {
        backward_sweep(
            &ctx,
            grad_q.as_mut_slice(),
            grad_k.as_mut_slice(),
            grad_v.as_mut_slice(),
            &mut Scratch::new(),
        )
    };
    (grad_q, grad_k, grad_v, work)
}

/// [`attn_tile_backward`] accumulating `+=` into caller-owned gradients.
///
/// The ring-round entry point: gradients and `scratch` persist across
/// rounds, so steady-state rounds allocate nothing. Runs the serial sweep —
/// accumulation order per destination row matches [`attn_tile_backward`]
/// exactly, so partition sums are bit-identical to the one-shot kernel.
#[allow(clippy::too_many_arguments)]
#[track_caller]
pub fn attn_tile_backward_acc(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    grad_o: &Mat,
    lse: &[f32],
    d_vec: &[f32],
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
    grad_q: &mut Mat,
    grad_k: &mut Mat,
    grad_v: &mut Mat,
    scratch: &mut Scratch,
) -> KernelWork {
    assert_eq!(
        q.rows(),
        q_idx.len(),
        "attn_tile_backward_acc: q_idx length"
    );
    assert_eq!(
        k.rows(),
        k_idx.len(),
        "attn_tile_backward_acc: k_idx length"
    );
    assert_eq!(q.rows(), grad_o.rows(), "attn_tile_backward_acc: ∇O rows");
    assert_eq!(q.rows(), lse.len(), "attn_tile_backward_acc: Lse length");
    assert_eq!(q.rows(), d_vec.len(), "attn_tile_backward_acc: D length");
    assert_eq!(
        grad_q.shape(),
        q.shape(),
        "attn_tile_backward_acc: ∇Q shape"
    );
    assert_eq!(
        grad_k.shape(),
        k.shape(),
        "attn_tile_backward_acc: ∇K shape"
    );
    assert_eq!(
        grad_v.shape(),
        v.shape(),
        "attn_tile_backward_acc: ∇V shape"
    );
    let ctx = BwdCtx {
        fwd: Ctx {
            q: q.view(),
            k: k.view(),
            v: v.view(),
            scale,
            mask,
            q_idx,
            k_idx,
            block: DEFAULT_BLOCK,
        },
        grad_o: grad_o.view(),
        lse,
        d_vec,
    };
    backward_sweep(
        &ctx,
        grad_q.as_mut_slice(),
        grad_k.as_mut_slice(),
        grad_v.as_mut_slice(),
        scratch,
    )
}

/// Single-device blocked backward: computes `D = rowsum(∇O ∘ O)` and runs
/// the tile kernel over the local keys.
#[allow(clippy::too_many_arguments)]
pub fn flash_backward(
    q: &Mat,
    k: &Mat,
    v: &Mat,
    o: &Mat,
    grad_o: &Mat,
    lse: &[f32],
    scale: f32,
    mask: &AttnMask,
    q_idx: &[usize],
    k_idx: &[usize],
) -> (Mat, Mat, Mat, KernelWork) {
    let d_vec = grad_o.rowsum_hadamard(o);
    attn_tile_backward(q, k, v, grad_o, lse, &d_vec, scale, mask, q_idx, k_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::BlockSparseMask;
    use crate::naive::{naive_backward, naive_forward};
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::{assert_allclose, assert_allclose_vec};

    fn idx(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    fn all_masks(n: usize) -> Vec<AttnMask> {
        vec![
            AttnMask::Full,
            AttnMask::Causal,
            AttnMask::SlidingWindow { window: 5 },
            AttnMask::BlockSparse(BlockSparseMask::sliding_window_blocks(4, n.div_ceil(4), 2)),
        ]
    }

    #[test]
    fn forward_matches_naive_for_all_masks_and_blocks() {
        let (n, d) = (19, 6);
        let q = randn_mat(n, d, 0.8, 20);
        let k = randn_mat(n, d, 0.8, 21);
        let v = randn_mat(n, d, 0.8, 22);
        let scale = 1.0 / (d as f32).sqrt();
        for mask in all_masks(n) {
            let (o_ref, lse_ref) = naive_forward(&q, &k, &v, scale, &mask, &idx(n), &idx(n));
            for block in [4, 7, 32] {
                let out =
                    flash_forward_with_block(&q, &k, &v, scale, &mask, &idx(n), &idx(n), block);
                assert_allclose(&out.o, &o_ref, 1e-4, &format!("{mask:?} block {block}"));
                assert_allclose_vec(&out.lse, &lse_ref, 1e-4, "lse");
            }
        }
    }

    #[test]
    fn forward_handles_strided_global_indices() {
        // Striped layout: Q rows are tokens {1, 5, 9, 13}, K rows {3, 7, 11, 15}.
        let d = 4;
        let q = randn_mat(4, d, 1.0, 30);
        let k = randn_mat(4, d, 1.0, 31);
        let v = randn_mat(4, d, 1.0, 32);
        let qi = vec![1usize, 5, 9, 13];
        let ki = vec![3usize, 7, 11, 15];
        let mask = AttnMask::Causal;
        let (o_ref, lse_ref) = naive_forward(&q, &k, &v, 0.5, &mask, &qi, &ki);
        let out = flash_forward_with_block(&q, &k, &v, 0.5, &mask, &qi, &ki, 2);
        assert_allclose(&out.o, &o_ref, 1e-4, "strided forward");
        assert_allclose_vec(&out.lse, &lse_ref, 1e-4, "strided lse");
    }

    #[test]
    fn fully_masked_rows_produce_zero_output() {
        // Query token 0 with keys all in the future.
        let q = randn_mat(2, 3, 1.0, 40);
        let k = randn_mat(4, 3, 1.0, 41);
        let v = randn_mat(4, 3, 1.0, 42);
        let out = flash_forward(
            &q,
            &k,
            &v,
            1.0,
            &AttnMask::Causal,
            &[0, 1],
            &[10, 11, 12, 13],
        );
        assert_eq!(out.o, burst_tensor::Mat::zeros(2, 3));
        assert!(out.lse.iter().all(|&l| l == f32::NEG_INFINITY));
        assert_eq!(out.work.pairs, 0);
    }

    #[test]
    fn backward_matches_naive_for_all_masks() {
        let (n, d) = (17, 5);
        let q = randn_mat(n, d, 0.7, 50);
        let k = randn_mat(n, d, 0.7, 51);
        let v = randn_mat(n, d, 0.7, 52);
        let grad_o = randn_mat(n, d, 1.0, 53);
        let scale = 1.0 / (d as f32).sqrt();
        for mask in all_masks(n) {
            let (gq_ref, gk_ref, gv_ref) =
                naive_backward(&q, &k, &v, &grad_o, scale, &mask, &idx(n), &idx(n));
            let out = flash_forward(&q, &k, &v, scale, &mask, &idx(n), &idx(n));
            for block in [4, 32] {
                let (gq, gk, gv, _) = {
                    let d_vec = grad_o.rowsum_hadamard(&out.o);
                    attn_tile_backward_with_block(
                        &q,
                        &k,
                        &v,
                        &grad_o,
                        &out.lse,
                        &d_vec,
                        scale,
                        &mask,
                        &idx(n),
                        &idx(n),
                        block,
                    )
                };
                assert_allclose(&gq, &gq_ref, 1e-3, &format!("dQ {mask:?}"));
                assert_allclose(&gk, &gk_ref, 1e-3, &format!("dK {mask:?}"));
                assert_allclose(&gv, &gv_ref, 1e-3, &format!("dV {mask:?}"));
            }
        }
    }

    #[test]
    fn tile_backward_is_additive_over_key_partitions() {
        // Splitting K/V into two halves and summing the tile contributions
        // must equal the whole backward — the invariant ring attention
        // relies on.
        let (n, d) = (12, 4);
        let q = randn_mat(n, d, 0.7, 60);
        let k = randn_mat(n, d, 0.7, 61);
        let v = randn_mat(n, d, 0.7, 62);
        let grad_o = randn_mat(n, d, 1.0, 63);
        let scale = 0.5;
        let mask = AttnMask::Causal;
        let out = flash_forward(&q, &k, &v, scale, &mask, &idx(n), &idx(n));
        let d_vec = grad_o.rowsum_hadamard(&out.o);
        let (gq_ref, gk_ref, gv_ref, _) = attn_tile_backward(
            &q,
            &k,
            &v,
            &grad_o,
            &out.lse,
            &d_vec,
            scale,
            &mask,
            &idx(n),
            &idx(n),
        );
        let half = n / 2;
        let k1 = k.slice_rows(0, half);
        let v1 = v.slice_rows(0, half);
        let k2 = k.slice_rows(half, n);
        let v2 = v.slice_rows(half, n);
        let all_idx = idx(n);
        let (gq1, gk1, gv1, _) = attn_tile_backward(
            &q,
            &k1,
            &v1,
            &grad_o,
            &out.lse,
            &d_vec,
            scale,
            &mask,
            &all_idx,
            &all_idx[..half],
        );
        let (gq2, gk2, gv2, _) = attn_tile_backward(
            &q,
            &k2,
            &v2,
            &grad_o,
            &out.lse,
            &d_vec,
            scale,
            &mask,
            &all_idx,
            &all_idx[half..],
        );
        let mut gq = gq1;
        gq.add_assign(&gq2);
        assert_allclose(&gq, &gq_ref, 1e-4, "dQ additivity");
        let gk = burst_tensor::Mat::vstack(&[gk1, gk2]);
        let gv = burst_tensor::Mat::vstack(&[gv1, gv2]);
        assert_allclose(&gk, &gk_ref, 1e-4, "dK additivity");
        assert_allclose(&gv, &gv_ref, 1e-4, "dV additivity");
    }

    #[test]
    fn acc_forward_over_partitions_matches_one_shot() {
        // Feeding two K/V partitions through flash_forward_acc must produce
        // exactly what one flash_forward over the concatenated keys does —
        // the zero-alloc ring rounds rely on this.
        let (n, d) = (23, 6);
        let q = randn_mat(n, d, 0.8, 90);
        let k = randn_mat(n, d, 0.8, 91);
        let v = randn_mat(n, d, 0.8, 92);
        let scale = 1.0 / (d as f32).sqrt();
        let all_idx = idx(n);
        for mask in all_masks(n) {
            let whole = flash_forward(&q, &k, &v, scale, &mask, &all_idx, &all_idx);
            let half = 11; // not a multiple of DEFAULT_BLOCK on purpose
            let (k1, v1) = (k.slice_rows(0, half), v.slice_rows(0, half));
            let (k2, v2) = (k.slice_rows(half, n), v.slice_rows(half, n));
            let mut acc_o = Mat::zeros(n, d);
            let mut acc_lse = vec![f32::NEG_INFINITY; n];
            let mut scratch = Scratch::new();
            let mut work = flash_forward_acc(
                &q,
                &k1,
                &v1,
                scale,
                &mask,
                &all_idx,
                &all_idx[..half],
                &mut acc_o,
                &mut acc_lse,
                &mut scratch,
            );
            work.merge(flash_forward_acc(
                &q,
                &k2,
                &v2,
                scale,
                &mask,
                &all_idx,
                &all_idx[half..],
                &mut acc_o,
                &mut acc_lse,
                &mut scratch,
            ));
            assert_allclose(&acc_o, &whole.o, 1e-5, &format!("acc O {mask:?}"));
            assert_allclose_vec(&acc_lse, &whole.lse, 1e-5, "acc lse");
            assert_eq!(work.pairs, whole.work.pairs, "acc pairs {mask:?}");
        }
    }

    #[test]
    fn acc_backward_over_partitions_matches_one_shot() {
        let (n, d) = (23, 6);
        let q = randn_mat(n, d, 0.7, 93);
        let k = randn_mat(n, d, 0.7, 94);
        let v = randn_mat(n, d, 0.7, 95);
        let grad_o = randn_mat(n, d, 1.0, 96);
        let scale = 1.0 / (d as f32).sqrt();
        let all_idx = idx(n);
        let mask = AttnMask::Causal;
        let out = flash_forward(&q, &k, &v, scale, &mask, &all_idx, &all_idx);
        let d_vec = grad_o.rowsum_hadamard(&out.o);
        let (gq_ref, gk_ref, gv_ref, _) = attn_tile_backward(
            &q, &k, &v, &grad_o, &out.lse, &d_vec, scale, &mask, &all_idx, &all_idx,
        );
        let half = 11;
        let mut gq = Mat::zeros(n, d);
        let mut gk1 = Mat::zeros(half, d);
        let mut gv1 = Mat::zeros(half, d);
        let mut gk2 = Mat::zeros(n - half, d);
        let mut gv2 = Mat::zeros(n - half, d);
        let mut scratch = Scratch::new();
        attn_tile_backward_acc(
            &q,
            &k.slice_rows(0, half),
            &v.slice_rows(0, half),
            &grad_o,
            &out.lse,
            &d_vec,
            scale,
            &mask,
            &all_idx,
            &all_idx[..half],
            &mut gq,
            &mut gk1,
            &mut gv1,
            &mut scratch,
        );
        attn_tile_backward_acc(
            &q,
            &k.slice_rows(half, n),
            &v.slice_rows(half, n),
            &grad_o,
            &out.lse,
            &d_vec,
            scale,
            &mask,
            &all_idx,
            &all_idx[half..],
            &mut gq,
            &mut gk2,
            &mut gv2,
            &mut scratch,
        );
        assert_allclose(&gq, &gq_ref, 1e-4, "acc dQ");
        let gk = burst_tensor::Mat::vstack(&[gk1, gk2]);
        let gv = burst_tensor::Mat::vstack(&[gv1, gv2]);
        assert_allclose(&gk, &gk_ref, 1e-4, "acc dK");
        assert_allclose(&gv, &gv_ref, 1e-4, "acc dV");
    }

    #[test]
    fn work_counters_match_mask_density() {
        let n = 32;
        let d = 4;
        let q = randn_mat(n, d, 1.0, 70);
        let k = randn_mat(n, d, 1.0, 71);
        let v = randn_mat(n, d, 1.0, 72);
        for mask in [
            AttnMask::Full,
            AttnMask::Causal,
            AttnMask::SlidingWindow { window: 8 },
        ] {
            let out = flash_forward_with_block(&q, &k, &v, 1.0, &mask, &idx(n), &idx(n), 8);
            assert_eq!(
                out.work.pairs as u128,
                mask.allowed_pairs(n),
                "pairs for {mask:?}"
            );
        }
        // Sliding window must skip distant tiles.
        let out = flash_forward_with_block(
            &q,
            &k,
            &v,
            1.0,
            &AttnMask::SlidingWindow { window: 4 },
            &idx(n),
            &idx(n),
            4,
        );
        assert!(out.work.tiles_skipped > 0, "SWA should skip far tiles");
    }

    #[test]
    fn flash_backward_convenience_matches_tile_kernel() {
        let (n, d) = (10, 3);
        let q = randn_mat(n, d, 0.7, 80);
        let k = randn_mat(n, d, 0.7, 81);
        let v = randn_mat(n, d, 0.7, 82);
        let grad_o = randn_mat(n, d, 1.0, 83);
        let mask = AttnMask::Full;
        let out = flash_forward(&q, &k, &v, 1.0, &mask, &idx(n), &idx(n));
        let (gq1, gk1, gv1, _) = flash_backward(
            &q,
            &k,
            &v,
            &out.o,
            &grad_o,
            &out.lse,
            1.0,
            &mask,
            &idx(n),
            &idx(n),
        );
        let d_vec = grad_o.rowsum_hadamard(&out.o);
        let (gq2, gk2, gv2, _) = attn_tile_backward(
            &q,
            &k,
            &v,
            &grad_o,
            &out.lse,
            &d_vec,
            1.0,
            &mask,
            &idx(n),
            &idx(n),
        );
        assert_allclose(&gq1, &gq2, 0.0, "dQ");
        assert_allclose(&gk1, &gk2, 0.0, "dK");
        assert_allclose(&gv1, &gv2, 0.0, "dV");
    }
}
