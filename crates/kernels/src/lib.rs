//! # burst-kernels
//!
//! Single-device ("one simulated GPU") kernels of the BurstEngine
//! reproduction. Everything a rank executes locally lives here:
//!
//! * [`mask`] — attention sparsity patterns over **global** token indices
//!   (full, causal, sliding-window, block-sparse), with a tile classifier
//!   that lets kernels skip fully-masked tiles — the mechanism behind the
//!   paper's workload-balance results (Table 3);
//! * [`online`] — the online-softmax state `(O, Lse)` and its merge
//!   operator, the shared numeric core of FlashAttention, ring attention
//!   aggregation and the fused LM head (Algorithm 3);
//! * [`flash`] — blocked attention forward/backward with online softmax.
//!   The backward exposes the tile-level kernel
//!   ([`flash::attn_tile_backward`]) that Algorithms 1–2 invoke per ring
//!   step, parameterised by the *global* `Lse` and `D = rowsum(∇O ∘ O)`;
//! * [`naive`] — an explicit-matrix reference implementation used by tests;
//! * [`lmhead`] — the sequence-level fused LM head + cross-entropy loss
//!   (Algorithm 3): tiled over sequence and vocabulary, forward and backward
//!   fused so logits are never recomputed and the `N × v` matrix is never
//!   materialised.
//!
//! Kernels operate on global token indices (`q_idx`/`k_idx` slices) rather
//! than assuming contiguous ranges, because the zigzag/striped workload
//! balance schemes of §3.4 hand each device non-contiguous slices of the
//! sequence.

pub mod flash;
pub mod lmhead;
pub mod mask;
pub mod naive;
pub mod online;

pub use flash::{
    attn_tile_backward, attn_tile_backward_acc, attn_tile_backward_with_block, flash_backward,
    flash_forward, flash_forward_acc, flash_forward_with_block, FlashOut, KernelWork,
};
pub use lmhead::{fused_lm_loss, naive_lm_loss, LmLossOut};
pub use mask::{AttnMask, BlockSparseMask, TileState};
pub use online::OnlineState;
