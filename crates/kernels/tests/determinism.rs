//! Bitwise determinism of the parallel kernels across thread counts.
//!
//! The parallel schedules in `flash.rs` and `lmhead.rs` decompose work into
//! *fixed* row/vocab blocks whose per-destination accumulation order never
//! depends on how many workers execute them, so the results must be
//! bit-identical — not merely close — to the serial path at any
//! `RAYON_NUM_THREADS`. These tests sweep 1, 2, and 8 threads over every
//! mask kind and compare outputs with `f32::to_bits`.
//!
//! The rayon shim re-reads `RAYON_NUM_THREADS` on every call, which is what
//! lets a single process sweep thread counts. The variable is process-global
//! state, so everything runs inside one `#[test]` to keep the sweeps from
//! racing each other under the default parallel test harness.

use burst_kernels::{attn_tile_backward, flash_forward, fused_lm_loss, AttnMask, BlockSparseMask};
use burst_tensor::randn_mat;
use std::sync::Mutex;

const THREADS: [usize; 3] = [1, 2, 8];

/// Both tests in this file mutate process-global state (env vars, the SIMD
/// dispatch atom), so they serialise on one lock.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let r = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    r
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at {i}: {x} vs {y}"
        );
    }
}

fn mask_kinds(n: usize) -> Vec<(&'static str, AttnMask)> {
    vec![
        ("full", AttnMask::Full),
        ("causal", AttnMask::Causal),
        ("swa", AttnMask::SlidingWindow { window: 24 }),
        (
            "dilated",
            AttnMask::Dilated {
                window: 32,
                step: 2,
            },
        ),
        (
            "blocksparse",
            AttnMask::BlockSparse(BlockSparseMask::sliding_window_blocks(4, n.div_ceil(4), 2)),
        ),
    ]
}

#[test]
fn parallel_kernels_bit_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap();
    // n and d chosen so n·n·d clears the PAR_VOLUME gate (96·96·16 = 147456)
    // and n is not a multiple of the 32-row block, exercising the ragged
    // final block under every thread count.
    let (n, d) = (97usize, 16usize);
    let q = randn_mat(n, d, 0.6, 11);
    let k = randn_mat(n, d, 0.6, 12);
    let v = randn_mat(n, d, 0.6, 13);
    let grad_o = randn_mat(n, d, 0.4, 14);
    let idx: Vec<usize> = (0..n).collect();
    let scale = 1.0 / (d as f32).sqrt();

    for (name, mask) in mask_kinds(n) {
        let reference = with_threads(1, || {
            let fwd = flash_forward(&q, &k, &v, scale, &mask, &idx, &idx);
            let d_vec = grad_o.rowsum_hadamard(&fwd.o);
            let (dq, dk, dv, _) = attn_tile_backward(
                &q, &k, &v, &grad_o, &fwd.lse, &d_vec, scale, &mask, &idx, &idx,
            );
            (fwd, dq, dk, dv)
        });
        for threads in THREADS {
            let (fwd, dq, dk, dv) = with_threads(threads, || {
                let fwd = flash_forward(&q, &k, &v, scale, &mask, &idx, &idx);
                let d_vec = grad_o.rowsum_hadamard(&fwd.o);
                let (dq, dk, dv, _) = attn_tile_backward(
                    &q, &k, &v, &grad_o, &fwd.lse, &d_vec, scale, &mask, &idx, &idx,
                );
                (fwd, dq, dk, dv)
            });
            let tag = format!("flash/{name}/t{threads}");
            assert_bits_eq(fwd.o.as_slice(), reference.0.o.as_slice(), &tag);
            assert_bits_eq(&fwd.lse, &reference.0.lse, &tag);
            assert_bits_eq(dq.as_slice(), reference.1.as_slice(), &tag);
            assert_bits_eq(dk.as_slice(), reference.2.as_slice(), &tag);
            assert_bits_eq(dv.as_slice(), reference.3.as_slice(), &tag);
        }
    }

    // Fused LM head: 97·512·16 = 794624 clears the gate; both the row-tile
    // and vocab-tile lists have several blocks.
    let vocab = 512usize;
    let h = randn_mat(n, d, 0.7, 15);
    let w = randn_mat(vocab, d, 0.7, 16);
    let y: Vec<usize> = (0..n).map(|i| (i * 131) % vocab).collect();
    let reference = with_threads(1, || fused_lm_loss(&h, &w, &y));
    for threads in THREADS {
        let out = with_threads(threads, || fused_lm_loss(&h, &w, &y));
        let tag = format!("lmhead/t{threads}");
        assert_eq!(out.loss.to_bits(), reference.loss.to_bits(), "{tag}: loss");
        assert_bits_eq(&out.losses, &reference.losses, &tag);
        assert_bits_eq(&out.lse, &reference.lse, &tag);
        assert_bits_eq(out.grad_h.as_slice(), reference.grad_h.as_slice(), &tag);
        assert_bits_eq(out.grad_w.as_slice(), reference.grad_w.as_slice(), &tag);
    }
}

/// The AVX2+FMA microkernels and the scalar fallback are bound to each
/// other bit for bit: both contract multiply–add to a single rounding
/// (`f32::mul_add` ⟷ `vfmadd`), share one polynomial `exp`, and reduce in
/// the same lane order. `BURST_NO_SIMD=1` must therefore reproduce the
/// vector path exactly — this is the contract that makes the CI fallback
/// leg and the vectorised leg interchangeable witnesses.
#[test]
fn simd_and_scalar_dispatch_bit_identical() {
    let _env = ENV_LOCK.lock().unwrap();
    // d = 20 is not a multiple of the 8-lane AVX2 width, so every inner
    // loop exercises its ragged remainder; n·n·d clears the volume gates.
    let (n, d) = (97usize, 20usize);
    let q = randn_mat(n, d, 0.6, 21);
    let k = randn_mat(n, d, 0.6, 22);
    let v = randn_mat(n, d, 0.6, 23);
    let grad_o = randn_mat(n, d, 0.4, 24);
    let idx: Vec<usize> = (0..n).collect();
    let scale = 1.0 / (d as f32).sqrt();
    let vocab = 509usize; // prime: ragged vocab tiles too
    let h = randn_mat(n, d, 0.7, 25);
    let w = randn_mat(vocab, d, 0.7, 26);
    let y: Vec<usize> = (0..n).map(|i| (i * 131) % vocab).collect();

    let run_all = |mask: &AttnMask| {
        let fwd = flash_forward(&q, &k, &v, scale, mask, &idx, &idx);
        let d_vec = grad_o.rowsum_hadamard(&fwd.o);
        let (dq, dk, dv, _) = attn_tile_backward(
            &q, &k, &v, &grad_o, &fwd.lse, &d_vec, scale, mask, &idx, &idx,
        );
        let lm = fused_lm_loss(&h, &w, &y);
        (fwd, dq, dk, dv, lm)
    };

    for (name, mask) in mask_kinds(n) {
        burst_tensor::simd::refresh();
        let native = run_all(&mask);
        let native_label = burst_tensor::simd::dispatch_label();

        std::env::set_var("BURST_NO_SIMD", "1");
        burst_tensor::simd::refresh();
        assert!(
            !burst_tensor::simd::avx2_active(),
            "BURST_NO_SIMD=1 must force the scalar fallback"
        );
        let scalar = run_all(&mask);
        std::env::remove_var("BURST_NO_SIMD");
        burst_tensor::simd::refresh();

        let tag = format!("simd-vs-scalar/{name} (native dispatch: {native_label})");
        assert_bits_eq(scalar.0.o.as_slice(), native.0.o.as_slice(), &tag);
        assert_bits_eq(&scalar.0.lse, &native.0.lse, &tag);
        assert_bits_eq(scalar.1.as_slice(), native.1.as_slice(), &tag);
        assert_bits_eq(scalar.2.as_slice(), native.2.as_slice(), &tag);
        assert_bits_eq(scalar.3.as_slice(), native.3.as_slice(), &tag);
        assert_eq!(
            scalar.4.loss.to_bits(),
            native.4.loss.to_bits(),
            "{tag}: loss"
        );
        assert_bits_eq(&scalar.4.losses, &native.4.losses, &tag);
        assert_bits_eq(&scalar.4.lse, &native.4.lse, &tag);
        assert_bits_eq(scalar.4.grad_h.as_slice(), native.4.grad_h.as_slice(), &tag);
        assert_bits_eq(scalar.4.grad_w.as_slice(), native.4.grad_w.as_slice(), &tag);
    }
}
