//! Property-based tests of the attention and LM-head kernels against their
//! explicit-matrix references, under randomised shapes, masks and tilings.

use burst_kernels::flash::flash_forward_with_block;
use burst_kernels::lmhead::{fused_lm_loss_with_blocks, naive_lm_loss};
use burst_kernels::naive::{naive_backward, naive_forward};
use burst_kernels::{flash_backward, AttnMask, BlockSparseMask, OnlineState};
use burst_tensor::testutil::allclose;
use burst_tensor::{randn_mat, Mat};
use proptest::prelude::*;

fn arb_mask(n: usize) -> impl Strategy<Value = AttnMask> {
    prop_oneof![
        Just(AttnMask::Full),
        Just(AttnMask::Causal),
        (1usize..n.max(2)).prop_map(|w| AttnMask::SlidingWindow { window: w }),
        (1usize..n.max(2), 1usize..4).prop_map(|(w, s)| AttnMask::Dilated { window: w, step: s }),
        (1usize..3).prop_map(move |wb| {
            AttnMask::BlockSparse(BlockSparseMask::sliding_window_blocks(4, n.div_ceil(4), wb))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flash_forward_matches_naive(
        n in 2usize..20,
        d in 1usize..8,
        block in 1usize..8,
        seed in 0u64..500,
        mask in (2usize..20).prop_flat_map(arb_mask),
    ) {
        let q = randn_mat(n, d, 0.7, seed);
        let k = randn_mat(n, d, 0.7, seed + 1);
        let v = randn_mat(n, d, 0.7, seed + 2);
        let idx: Vec<usize> = (0..n).collect();
        let scale = 1.0 / (d as f32).sqrt();
        let (o_ref, lse_ref) = naive_forward(&q, &k, &v, scale, &mask, &idx, &idx);
        let out = flash_forward_with_block(&q, &k, &v, scale, &mask, &idx, &idx, block);
        prop_assert!(allclose(&out.o, &o_ref, 1e-3, 1e-3), "O mismatch for {mask:?}");
        for (a, b) in out.lse.iter().zip(&lse_ref) {
            prop_assert!(a == b || (a - b).abs() < 1e-3);
        }
        // Work counter equals the mask's exact pair count.
        prop_assert_eq!(out.work.pairs as u128, mask.allowed_pairs(n));
    }

    #[test]
    fn flash_backward_matches_naive(
        n in 2usize..14,
        d in 1usize..6,
        seed in 0u64..500,
        mask in (2usize..14).prop_flat_map(arb_mask),
    ) {
        let q = randn_mat(n, d, 0.7, seed);
        let k = randn_mat(n, d, 0.7, seed + 1);
        let v = randn_mat(n, d, 0.7, seed + 2);
        let go = randn_mat(n, d, 0.8, seed + 3);
        let idx: Vec<usize> = (0..n).collect();
        let scale = 1.0 / (d as f32).sqrt();
        let (gq_ref, gk_ref, gv_ref) =
            naive_backward(&q, &k, &v, &go, scale, &mask, &idx, &idx);
        let fwd = flash_forward_with_block(&q, &k, &v, scale, &mask, &idx, &idx, 4);
        let (gq, gk, gv, _) =
            flash_backward(&q, &k, &v, &fwd.o, &go, &fwd.lse, scale, &mask, &idx, &idx);
        prop_assert!(allclose(&gq, &gq_ref, 2e-3, 2e-3), "dQ for {mask:?}");
        prop_assert!(allclose(&gk, &gk_ref, 2e-3, 2e-3), "dK for {mask:?}");
        prop_assert!(allclose(&gv, &gv_ref, 2e-3, 2e-3), "dV for {mask:?}");
    }

    #[test]
    fn online_merge_is_order_invariant(
        parts in 2usize..6,
        rows in 1usize..4,
        d in 1usize..4,
        seed in 0u64..500,
        perm_seed in 0u64..100,
    ) {
        let states: Vec<OnlineState> = (0..parts)
            .map(|p| {
                OnlineState::new(
                    randn_mat(rows, d, 1.0, seed + p as u64),
                    randn_mat(rows, 1, 1.0, seed + 100 + p as u64).into_vec(),
                )
            })
            .collect();
        let fold = |order: &[usize]| {
            let mut acc = OnlineState::empty(rows, d);
            for &i in order {
                acc.merge(&states[i]);
            }
            acc
        };
        let forward: Vec<usize> = (0..parts).collect();
        // A deterministic pseudo-shuffle.
        let mut shuffled = forward.clone();
        for i in 0..parts {
            let j = (perm_seed as usize + i * 7) % parts;
            shuffled.swap(i, j);
        }
        let a = fold(&forward);
        let b = fold(&shuffled);
        prop_assert!(allclose(&a.o, &b.o, 1e-3, 1e-3));
        for (x, y) in a.lse.iter().zip(&b.lse) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn fused_lm_loss_matches_naive_for_any_tiling(
        n in 1usize..12,
        d in 1usize..6,
        v in 2usize..20,
        bs in 1usize..13,
        bv in 1usize..21,
        seed in 0u64..500,
    ) {
        let h = randn_mat(n, d, 0.8, seed);
        let w = randn_mat(v, d, 0.8, seed + 1);
        let y: Vec<usize> = (0..n).map(|i| (i * 7 + seed as usize) % v).collect();
        let reference = naive_lm_loss(&h, &w, &y);
        let fused = fused_lm_loss_with_blocks(&h, &w, &y, bs, bv);
        prop_assert!((fused.loss - reference.loss).abs() < 1e-3);
        prop_assert!(allclose(&fused.grad_h, &reference.grad_h, 1e-3, 1e-3));
        prop_assert!(allclose(&fused.grad_w, &reference.grad_w, 1e-3, 1e-3));
    }

    #[test]
    fn masked_attention_rows_sum_to_one_or_zero(
        n in 2usize..16,
        seed in 0u64..300,
        mask in (2usize..16).prop_flat_map(arb_mask),
    ) {
        // Σ_j P_ij = 1 for rows with any allowed key, else the output row is 0.
        let d = 4;
        let q = randn_mat(n, d, 0.7, seed);
        let k = randn_mat(n, d, 0.7, seed + 1);
        // V = identity-ish probe: use all-ones so O row sums = Σ P.
        let v = Mat::full(n, 1, 1.0);
        let idx: Vec<usize> = (0..n).collect();
        let out = flash_forward_with_block(&q, &k, &v, 1.0, &mask, &idx, &idx, 4);
        for i in 0..n {
            let any = (0..n).any(|j| mask.allowed(i, j));
            let s = out.o.get(i, 0);
            if any {
                prop_assert!((s - 1.0).abs() < 1e-4, "row {i} mass {s}");
            } else {
                prop_assert!(s == 0.0, "fully masked row {i} must be zero");
            }
        }
    }
}
