//! Ragged-shape agreement between the tile classifier, the per-token mask
//! and the blocked kernels.
//!
//! The block-sparse fast path in [`AttnMask::tile_state`] classifies tiles
//! at mask-block granularity. On ragged shapes — `seq_len % block != 0`,
//! tiles straddling mask-block boundaries, or token indices past the
//! pattern's `nblocks · block` extent — a range-based classification
//! (`[min/block, max/block]` rectangles, unclipped at `nblocks`) disagrees
//! with the per-token semantics of `AttnMask::allowed`. These tests pin the
//! classifier to a brute-force scan for **every** mask kind across
//! non-power-of-two lengths, strided and zigzag index sets, and patterns
//! whose extent both over- and under-covers the sequence, then check the
//! kernels stay deterministic and census-exact on the same shapes.

use burst_kernels::{
    attn_tile_backward, flash_forward, flash_forward_with_block, AttnMask, BlockSparseMask,
    TileState,
};
use burst_tensor::randn_mat;

/// Exact classification by scanning every (query, key) pair.
fn brute_state(mask: &AttnMask, q: &[usize], k: &[usize]) -> TileState {
    if q.is_empty() || k.is_empty() {
        return TileState::FullyMasked;
    }
    let total = q.len() * k.len();
    let allowed = q
        .iter()
        .flat_map(|&i| k.iter().map(move |&j| (i, j)))
        .filter(|&(i, j)| mask.allowed(i, j))
        .count();
    if allowed == total {
        TileState::FullyAllowed
    } else if allowed == 0 {
        TileState::FullyMasked
    } else {
        TileState::Partial
    }
}

/// Every mask kind, instantiated at a (possibly ragged) sequence length.
/// The second block-sparse pattern deliberately covers only `4 · (n / 5)`
/// tokens, so indices past its extent exercise the out-of-range-block rule.
fn mask_kinds(n: usize) -> Vec<AttnMask> {
    vec![
        AttnMask::Full,
        AttnMask::Causal,
        AttnMask::SlidingWindow { window: 7 },
        AttnMask::Dilated { window: 9, step: 2 },
        AttnMask::BlockSparse(BlockSparseMask::sliding_window_blocks(4, n.div_ceil(4), 2)),
        AttnMask::BlockSparse(BlockSparseMask::sliding_window_blocks(5, n / 5, 1)),
    ]
}

/// Index sets a distributed layout actually produces: contiguous runs,
/// stride-G combs, and zigzag front+back pairs — none aligned to the mask
/// blocks above.
fn index_sets(n: usize) -> Vec<Vec<usize>> {
    let mut sets: Vec<Vec<usize>> = Vec::new();
    for start in [0usize, 3, n / 2] {
        let end = (start + 6).min(n);
        sets.push((start..end).collect());
    }
    sets.push((0..n).step_by(3).collect());
    sets.push((1..n).step_by(4).collect());
    let q = n / 4;
    let mut zig: Vec<usize> = (0..q).collect();
    zig.extend(n - q..n);
    sets.push(zig);
    sets
}

#[test]
fn tile_state_matches_bruteforce_on_ragged_shapes() {
    for n in [19usize, 37, 45, 101] {
        for mask in mask_kinds(n) {
            for q in index_sets(n) {
                for k in index_sets(n) {
                    assert_eq!(
                        mask.tile_state(&q, &k),
                        brute_state(&mask, &q, &k),
                        "mask {mask:?} n={n} q={q:?} k={k:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn tile_state_clips_blocks_past_the_pattern_extent() {
    // Pattern extent 16 tokens (4 blocks of 4); tokens 16.. map to block
    // indices >= nblocks and must read as masked — a fast path that only
    // checks the allowed table over an unclipped block range would call
    // these tiles dense.
    let bs = BlockSparseMask::sliding_window_blocks(4, 4, 4);
    let m = AttnMask::BlockSparse(bs);
    let inside: Vec<usize> = (12..16).collect();
    let beyond: Vec<usize> = (16..20).collect();
    let straddle: Vec<usize> = (14..18).collect();
    assert_eq!(m.tile_state(&inside, &inside), TileState::FullyAllowed);
    assert_eq!(m.tile_state(&beyond, &inside), TileState::FullyMasked);
    assert_eq!(m.tile_state(&beyond, &beyond), TileState::FullyMasked);
    assert_eq!(m.tile_state(&straddle, &inside), TileState::Partial);
    assert_eq!(m.tile_state(&inside, &straddle), TileState::Partial);
}

#[test]
fn kernel_pair_census_is_exact_on_ragged_lengths() {
    // The kernels' work counters must equal the analytic allowed-pair count
    // for every mask kind at non-power-of-two lengths — tile classification
    // errors on edge tiles would show up as census drift.
    for n in [19usize, 45] {
        let d = 6;
        let q = randn_mat(n, d, 0.8, 120);
        let k = randn_mat(n, d, 0.8, 121);
        let v = randn_mat(n, d, 0.8, 122);
        let idx: Vec<usize> = (0..n).collect();
        for mask in mask_kinds(n) {
            for block in [4usize, 7, 32] {
                let out = flash_forward_with_block(&q, &k, &v, 0.5, &mask, &idx, &idx, block);
                assert_eq!(
                    out.work.pairs as u128,
                    mask.allowed_pairs(n),
                    "mask {mask:?} n={n} block={block}"
                );
            }
        }
    }
}

#[test]
fn ragged_blocksparse_forward_backward_deterministic_across_tilings() {
    // A pattern whose extent under-covers the sequence, at a prime length:
    // the fully-masked tail rows must come out as exact zeros (forward and
    // backward), identically for every kernel tile size.
    let n = 23usize;
    let d = 5;
    let mask = AttnMask::BlockSparse(BlockSparseMask::sliding_window_blocks(5, 4, 2));
    let extent = 20usize; // 4 blocks of 5; rows 20.. are dead
    let q = randn_mat(n, d, 0.7, 130);
    let k = randn_mat(n, d, 0.7, 131);
    let v = randn_mat(n, d, 0.7, 132);
    let grad_o = randn_mat(n, d, 0.9, 133);
    let idx: Vec<usize> = (0..n).collect();
    let reference = flash_forward_with_block(&q, &k, &v, 0.5, &mask, &idx, &idx, 32);
    for block in [3usize, 5, 8] {
        let out = flash_forward_with_block(&q, &k, &v, 0.5, &mask, &idx, &idx, block);
        for r in extent..n {
            assert!(
                out.o.row(r).iter().all(|&x| x == 0.0),
                "dead row {r} must be exactly zero at block {block}"
            );
            assert_eq!(out.lse[r], f32::NEG_INFINITY, "dead row {r} lse");
        }
        assert_eq!(
            out.work.pairs, reference.work.pairs,
            "pair census at block {block}"
        );
    }
    let out = flash_forward(&q, &k, &v, 0.5, &mask, &idx, &idx);
    let d_vec = grad_o.rowsum_hadamard(&out.o);
    let (gq, gk, gv, _) = attn_tile_backward(
        &q, &k, &v, &grad_o, &out.lse, &d_vec, 0.5, &mask, &idx, &idx,
    );
    for r in extent..n {
        assert!(gq.row(r).iter().all(|&x| x == 0.0), "dead ∇Q row {r}");
        assert!(gk.row(r).iter().all(|&x| x == 0.0), "dead ∇K row {r}");
        assert!(gv.row(r).iter().all(|&x| x == 0.0), "dead ∇V row {r}");
    }
}
