//! Fused LM head + loss (Algorithm 3) vs the materialised reference, across
//! vocabulary sizes — the paper's §3.3 trade: same FLOPs, bounded memory,
//! no recompute.

use burst_kernels::lmhead::{fused_lm_loss_with_blocks, naive_lm_loss};
use burst_tensor::randn_mat;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Keep full-workspace bench runs short: the comparisons of interest are
/// order-of-magnitude, not microsecond-precise.
fn fast<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g
}

fn bench_lm_loss(c: &mut Criterion) {
    let mut group = fast(c, "lm_head_loss");
    let n = 256;
    let d = 64;
    for &vocab in &[512usize, 2048, 8192] {
        let h = randn_mat(n, d, 0.8, 5);
        let w = randn_mat(vocab, d, 0.8, 6);
        let y: Vec<usize> = (0..n).map(|i| (i * 31) % vocab).collect();
        group.bench_with_input(BenchmarkId::new("fused", vocab), &vocab, |b, _| {
            b.iter(|| fused_lm_loss_with_blocks(&h, &w, &y, 64, 256))
        });
        group.bench_with_input(BenchmarkId::new("naive", vocab), &vocab, |b, _| {
            b.iter(|| naive_lm_loss(&h, &w, &y))
        });
    }
    // Long-sequence point, fused only (the naive path would materialise a
    // 4096×2048 logits matrix per gradient — measured enough at n=256).
    {
        let (n, d, vocab) = (4096usize, 64usize, 2048usize);
        let h = randn_mat(n, d, 0.8, 9);
        let w = randn_mat(vocab, d, 0.8, 10);
        let y: Vec<usize> = (0..n).map(|i| (i * 31) % vocab).collect();
        group.bench_with_input(
            BenchmarkId::new("fused", format!("{n}x{vocab}")),
            &n,
            |b, _| b.iter(|| fused_lm_loss_with_blocks(&h, &w, &y, 64, 256)),
        );
    }
    group.finish();
}

fn bench_tile_sizes(c: &mut Criterion) {
    let mut group = fast(c, "lm_head_tiles");
    let (n, d, vocab) = (256usize, 64usize, 4096usize);
    let h = randn_mat(n, d, 0.8, 7);
    let w = randn_mat(vocab, d, 0.8, 8);
    let y: Vec<usize> = (0..n).map(|i| (i * 17) % vocab).collect();
    for &bs in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, &bs| {
            b.iter(|| fused_lm_loss_with_blocks(&h, &w, &y, bs, 256))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lm_loss, bench_tile_sizes);
criterion_main!(benches);
