//! Distributed attention implementations on the simulated cluster: real
//! wall time of a full forward+backward across rank threads (Fig. 14's
//! comparison at executable scale).

use burst_bench::attn_problem;
use burst_comm::{Topology, World};
use burst_dattn::{run_attention, Algo, CostModel, Layout};
use burst_kernels::AttnMask;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Keep full-workspace bench runs short: the comparisons of interest are
/// order-of-magnitude, not microsecond-precise.
fn fast<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = fast(c, "distributed_attention");
    let n = 256;
    let d = 32;
    let p = attn_problem(n, d, 3);
    let mask = AttnMask::Causal;
    for (name, algo, topo) in [
        ("ring_flat", Algo::RingFlat, Topology::a800(2, 4)),
        ("burst_flat", Algo::BurstFlat, Topology::a800(2, 4)),
        ("double_ring", Algo::DoubleRing, Topology::a800(2, 4)),
        ("burst_topo", Algo::BurstTopo, Topology::a800(2, 4)),
    ] {
        let g = topo.world_size();
        group.bench_with_input(BenchmarkId::new(name, g), &g, |b, _| {
            b.iter(|| {
                let world = World::new(topo.clone());
                world.run_results(|comm| {
                    let idx = Layout::Zigzag.indices(n, g, comm.rank());
                    run_attention(
                        algo,
                        comm,
                        &p.q.gather_rows(&idx),
                        &p.k.gather_rows(&idx),
                        &p.v.gather_rows(&idx),
                        &p.grad_o.gather_rows(&idx),
                        p.scale,
                        &mask,
                        Layout::Zigzag,
                        n,
                        &CostModel::free(),
                    )
                })
            })
        });
    }
    group.finish();
}

fn bench_world_scaling(c: &mut Criterion) {
    let mut group = fast(c, "burst_scaling");
    let n = 256;
    let d = 32;
    let p = attn_problem(n, d, 4);
    let mask = AttnMask::Causal;
    for g in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            b.iter(|| {
                let world = World::new(Topology::single_node(g));
                world.run_results(|comm| {
                    let idx = Layout::Zigzag.indices(n, g, comm.rank());
                    run_attention(
                        Algo::BurstFlat,
                        comm,
                        &p.q.gather_rows(&idx),
                        &p.k.gather_rows(&idx),
                        &p.v.gather_rows(&idx),
                        &p.grad_o.gather_rows(&idx),
                        p.scale,
                        &mask,
                        Layout::Zigzag,
                        n,
                        &CostModel::free(),
                    )
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_world_scaling);
criterion_main!(benches);
