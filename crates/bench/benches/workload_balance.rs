//! Workload-balance ablation (Table 3's mechanism): the same causal /
//! sliding-window attention under contiguous vs zigzag vs striped
//! partitions. Real wall time: the imbalanced layout is gated by its
//! slowest rank.

use burst_bench::attn_problem;
use burst_comm::{Topology, World};
use burst_dattn::{run_attention, Algo, CostModel, Layout};
use burst_kernels::AttnMask;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Keep full-workspace bench runs short: the comparisons of interest are
/// order-of-magnitude, not microsecond-precise.
fn fast<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g
}

fn bench_layouts(c: &mut Criterion) {
    let mut group = fast(c, "causal_balance");
    let n = 512;
    let d = 32;
    let g = 8;
    let p = attn_problem(n, d, 11);
    let mask = AttnMask::Causal;
    for (name, layout) in [
        ("contiguous", Layout::Contiguous),
        ("zigzag", Layout::Zigzag),
        ("striped", Layout::Striped),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let world = World::new(Topology::single_node(g));
                world.run_results(|comm| {
                    let idx = layout.indices(n, g, comm.rank());
                    run_attention(
                        Algo::BurstFlat,
                        comm,
                        &p.q.gather_rows(&idx),
                        &p.k.gather_rows(&idx),
                        &p.v.gather_rows(&idx),
                        &p.grad_o.gather_rows(&idx),
                        p.scale,
                        &mask,
                        layout,
                        n,
                        &CostModel::free(),
                    )
                })
            })
        });
    }
    group.finish();
}

fn bench_sparse_patterns(c: &mut Criterion) {
    let mut group = fast(c, "sparse_patterns_striped");
    let n = 512;
    let d = 32;
    let g = 8;
    let p = attn_problem(n, d, 12);
    for (name, mask) in [
        ("masking_full", AttnMask::Full),
        ("causal", AttnMask::Causal),
        ("swa_64", AttnMask::SlidingWindow { window: 64 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let world = World::new(Topology::single_node(g));
                world.run_results(|comm| {
                    let idx = Layout::Striped.indices(n, g, comm.rank());
                    run_attention(
                        Algo::BurstFlat,
                        comm,
                        &p.q.gather_rows(&idx),
                        &p.k.gather_rows(&idx),
                        &p.v.gather_rows(&idx),
                        &p.grad_o.gather_rows(&idx),
                        p.scale,
                        &mask,
                        Layout::Striped,
                        n,
                        &CostModel::free(),
                    )
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layouts, bench_sparse_patterns);
criterion_main!(benches);
