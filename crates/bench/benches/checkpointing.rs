//! Gradient-checkpointing strategies (Fig. 7's trade): real wall time of a
//! full training step under each strategy. `None` is fastest,
//! `Full` slowest, selective++ ≈ `None`, sequence-level in between — while
//! memory orders the other way (asserted in the model crate tests).

use burst_comm::{Topology, World};
use burst_dattn::{Algo, CostModel, Layout};
use burst_kernels::AttnMask;
use burst_model::engine::{run_rank, Backend, EngineConfig};
use burst_model::{AdamCfg, ModelConfig, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Keep full-workspace bench runs short: the comparisons of interest are
/// order-of-magnitude, not microsecond-precise.
fn fast<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g
}

fn cfg(strategy: Strategy) -> EngineConfig {
    EngineConfig {
        model: ModelConfig {
            layers: 3,
            d_model: 32,
            heads: 4,
            d_ff: 64,
            vocab: 61,
            seq_len: 128,
            rope: true,
        },
        backend: Backend::Ring(Algo::BurstFlat),
        layout: Layout::Zigzag,
        strategy,
        mask: AttnMask::Causal,
        cost: CostModel::free(),
        fsdp: false,
        offload_optimizer: false,
        grad_accum: 1,
        emulate_bf16: false,
        bf16_activations: false,
        overlap: burst_dattn::OverlapMode::Fine,
        skip_masked_rounds: false,
        adam: AdamCfg::default(),
        seed: 13,
    }
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = fast(c, "checkpoint_strategies");
    for (name, strategy) in [
        ("none", Strategy::None),
        ("full", Strategy::Full),
        ("selective_pp", Strategy::SelectivePlusPlus),
        ("seq_selective_0.5", Strategy::SeqSelective { rho: 0.5 }),
    ] {
        let engine = cfg(strategy);
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let world = World::new(Topology::single_node(4));
                world.run_results(|comm| run_rank(comm, &engine, 1).0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
