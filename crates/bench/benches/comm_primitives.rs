//! Collectives on the simulated cluster: real wall time of the thread +
//! channel substrate (the overhead floor under every distributed bench).

use burst_comm::{Topology, World};
use burst_tensor::randn_mat;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Keep full-workspace bench runs short: the comparisons of interest are
/// order-of-magnitude, not microsecond-precise.
fn fast<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = fast(c, "collectives");
    let g = 8;
    for &rows in &[64usize, 256] {
        let m = randn_mat(rows, 32, 1.0, 9);
        group.bench_with_input(BenchmarkId::new("all_gather", rows), &rows, |b, _| {
            b.iter(|| {
                let world = World::new(Topology::single_node(g));
                world.run_results(|comm| comm.all_gather_mat(&m))
            })
        });
        group.bench_with_input(BenchmarkId::new("all_reduce", rows), &rows, |b, _| {
            b.iter(|| {
                let world = World::new(Topology::single_node(g));
                world.run_results(|comm| comm.all_reduce_mat(&m))
            })
        });
        let m2 = m.clone();
        group.bench_with_input(BenchmarkId::new("all_to_all", rows), &rows, |b, _| {
            b.iter(|| {
                let world = World::new(Topology::single_node(g));
                world.run_results(|comm| {
                    let parts = m2.chunk_rows(comm.world_size());
                    comm.all_to_all_mat(parts)
                })
            })
        });
    }
    group.finish();
}

fn bench_ring_shift(c: &mut Criterion) {
    let mut group = fast(c, "ring_pass");
    let m = randn_mat(128, 32, 1.0, 10);
    for g in [4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            b.iter(|| {
                let world = World::new(Topology::single_node(g));
                world.run_results(|comm| {
                    let mut cur = m.clone();
                    for _ in 0..comm.world_size() - 1 {
                        comm.send_mat(comm.next_rank(), &cur);
                        cur = comm.recv_mat(comm.prev_rank());
                    }
                    cur
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collectives, bench_ring_shift);
criterion_main!(benches);
