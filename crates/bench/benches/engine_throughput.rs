//! Whole-engine training-step throughput on the simulated cluster: real
//! wall time of complete distributed steps (forward, backward, FSDP sync,
//! Adam) per backend.

use burst_comm::{Topology, WireDtype, World};
use burst_dattn::{Algo, CostModel, Layout, OverlapMode};
use burst_kernels::AttnMask;
use burst_model::engine::{run_rank, Backend, EngineConfig};
use burst_model::{AdamCfg, ModelConfig, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn cfg(backend: Backend) -> EngineConfig {
    EngineConfig {
        model: ModelConfig {
            layers: 2,
            d_model: 32,
            heads: 4,
            d_ff: 64,
            vocab: 61,
            seq_len: 64,
            rope: true,
        },
        backend,
        layout: Layout::Zigzag,
        strategy: Strategy::SeqSelective { rho: 0.5 },
        mask: AttnMask::Causal,
        cost: CostModel::free(),
        fsdp: true,
        offload_optimizer: false,
        grad_accum: 1,
        emulate_bf16: false,
        bf16_activations: false,
        overlap: OverlapMode::Fine,
        skip_masked_rounds: false,
        adam: AdamCfg::default(),
        seed: 17,
    }
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for (name, backend, topo) in [
        (
            "ring_flat",
            Backend::Ring(Algo::RingFlat),
            Topology::a800(2, 2),
        ),
        (
            "burst_topo",
            Backend::Ring(Algo::BurstTopo),
            Topology::a800(2, 2),
        ),
        ("ulysses", Backend::Ulysses, Topology::single_node(4)),
        (
            "usp",
            Backend::Usp { ulysses_size: 2 },
            Topology::a800(2, 2),
        ),
    ] {
        let mut engine = cfg(backend);
        if matches!(backend, Backend::Ulysses) {
            engine.layout = Layout::Contiguous;
        }
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let world = World::new(topo.clone());
                world.run_results(|comm| run_rank(comm, &engine, 1).0)
            })
        });
    }

    // The paper's half-width configuration: bf16 weights + bf16 activation
    // stashes + bf16 wire payloads. Encode/decode cost rides on top of the
    // f32-accumulated kernels, so this measures the end-to-end price of
    // halving memory and wire traffic.
    for (name, backend, topo) in [
        (
            "ring_flat_bf16",
            Backend::Ring(Algo::RingFlat),
            Topology::a800(2, 2).with_wire_dtype(WireDtype::Bf16),
        ),
        (
            "burst_topo_bf16",
            Backend::Ring(Algo::BurstTopo),
            Topology::a800(2, 2).with_wire_dtype(WireDtype::Bf16),
        ),
    ] {
        let mut engine = cfg(backend);
        engine.emulate_bf16 = true;
        engine.bf16_activations = true;
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let world = World::new(topo.clone());
                world.run_results(|comm| run_rank(comm, &engine, 1).0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
