//! Single-device attention kernels: blocked (flash-style) vs explicit
//! matrices, forward and backward, across masks. The blocked kernel's edge
//! grows with sparsity because it skips fully-masked tiles.

use burst_bench::attn_problem;
use burst_kernels::{flash_backward, flash_forward, naive::naive_forward, AttnMask};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Keep full-workspace bench runs short: the comparisons of interest are
/// order-of-magnitude, not microsecond-precise.
fn fast<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g
}

fn bench_forward(c: &mut Criterion) {
    let mut group = fast(c, "attention_forward");
    for &n in &[128usize, 256, 512] {
        let p = attn_problem(n, 64, 1);
        let idx: Vec<usize> = (0..n).collect();
        for (name, mask) in [
            ("full", AttnMask::Full),
            ("causal", AttnMask::Causal),
            ("swa64", AttnMask::SlidingWindow { window: 64 }),
        ] {
            group.bench_with_input(BenchmarkId::new(format!("flash/{name}"), n), &n, |b, _| {
                b.iter(|| flash_forward(&p.q, &p.k, &p.v, p.scale, &mask, &idx, &idx))
            });
        }
        group.bench_with_input(BenchmarkId::new("naive/causal", n), &n, |b, _| {
            b.iter(|| naive_forward(&p.q, &p.k, &p.v, p.scale, &AttnMask::Causal, &idx, &idx))
        });
    }
    // Long-sequence point, flash only (the naive kernel materialises the
    // full n×n score matrix and is no longer interesting here).
    {
        let n = 4096usize;
        let p = attn_problem(n, 64, 1);
        let idx: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::new("flash/causal", n), &n, |b, _| {
            b.iter(|| flash_forward(&p.q, &p.k, &p.v, p.scale, &AttnMask::Causal, &idx, &idx))
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = fast(c, "attention_backward");
    for &n in &[128usize, 256, 4096] {
        let p = attn_problem(n, 64, 2);
        let idx: Vec<usize> = (0..n).collect();
        let mask = AttnMask::Causal;
        let fwd = flash_forward(&p.q, &p.k, &p.v, p.scale, &mask, &idx, &idx);
        group.bench_with_input(BenchmarkId::new("flash/causal", n), &n, |b, _| {
            b.iter(|| {
                flash_backward(
                    &p.q, &p.k, &p.v, &fwd.o, &p.grad_o, &fwd.lse, p.scale, &mask, &idx, &idx,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_backward);
criterion_main!(benches);
