//! The exact memory gate: per-rank peak bytes *measured* by the
//! virtual-memory accountant must equal `burst-perf`'s analytic
//! `exact_peak_bytes` census — not within a tolerance, but `==` — for
//! every schedule, topology and wire dtype. The same contract CI enforces
//! in the `obs-regression` job.
//!
//! Also pinned here: the accountant's zero-overhead contract (accounting
//! on is bit-identical to off, and ring rounds append no ledger entries)
//! and the crash semantics (a crashed rank's force-closed ledger still
//! balances).

use burst_comm::obs::{peak_census, validate_mem, PeakBytes};
use burst_comm::{FaultPlan, Membership, RetryPolicy, Topology, WireDtype, World};
use burst_dattn::ulysses::{ulysses_backward, ulysses_forward};
use burst_dattn::usp::{usp_backward, usp_forward, UspTopo};
use burst_dattn::{
    run_attention, try_elastic_attention, try_run_attention, Algo, CostModel, Layout, ShardData,
};
use burst_kernels::AttnMask;
use burst_perf::{exact_peak_bytes_dtype, Cluster, PeakMethod};
use burst_tensor::{randn_mat, Mat};

const DTYPES: [WireDtype; 2] = [WireDtype::F32, WireDtype::Bf16];

fn problem(n: usize, d: usize) -> (Mat, Mat, Mat, Mat, f32) {
    (
        randn_mat(n, d, 0.7, 31),
        randn_mat(n, d, 0.7, 32),
        randn_mat(n, d, 0.7, 33),
        randn_mat(n, d, 0.8, 34),
        1.0 / (d as f32).sqrt(),
    )
}

fn shard_of(layout: Layout, n: usize, g: usize, rank: usize, full: &Mat) -> Mat {
    full.gather_rows(&layout.indices(n, g, rank))
}

/// Run `algo` through the dispatcher with accounting on and return each
/// rank's measured gated census.
fn measured_dispatch(algo: Algo, topo: &Topology, seq: usize, d: usize) -> Vec<PeakBytes> {
    let g = topo.world_size();
    let (q, k, v, grad_o, scale) = problem(seq, d);
    let layout = Layout::Zigzag;
    let world = World::new(topo.clone());
    world
        .run(|comm| {
            let r = comm.rank();
            let (ql, kl, vl, dol) = (
                shard_of(layout, seq, g, r, &q),
                shard_of(layout, seq, g, r, &k),
                shard_of(layout, seq, g, r, &v),
                shard_of(layout, seq, g, r, &grad_o),
            );
            comm.start_mem_accounting();
            run_attention(
                algo,
                comm,
                &ql,
                &kl,
                &vl,
                &dol,
                scale,
                &AttnMask::Causal,
                layout,
                seq,
                &CostModel::a800(),
            );
        })
        .into_iter()
        .map(|o| {
            let m = o.mem.expect("accounting was on");
            validate_mem(&m).unwrap_or_else(|e| panic!("rank {}: {e}", o.rank));
            assert!(
                m.warnings.is_empty(),
                "healthy run leaked: {:?}",
                m.warnings
            );
            assert_eq!(m.live_at_close, 0);
            m.peak.gated()
        })
        .collect()
}

#[test]
fn dispatcher_peaks_match_exact_census_on_every_topology_and_dtype() {
    let (seq, d) = (128usize, 16usize);
    let methods = [
        (Algo::RingFlat, PeakMethod::RingFlat),
        (Algo::BurstFlat, PeakMethod::BurstFlat),
        (Algo::DoubleRing, PeakMethod::DoubleRing),
        (Algo::BurstTopo, PeakMethod::BurstTopo),
    ];
    for (nodes, gpn) in [(2usize, 4usize), (1, 4), (4, 2)] {
        let cluster = Cluster::a800(nodes, gpn);
        for dtype in DTYPES {
            let topo = Topology::a800(nodes, gpn).with_wire_dtype(dtype);
            for (algo, method) in methods {
                let want = exact_peak_bytes_dtype(&cluster, seq, d, method, dtype);
                for (rank, got) in measured_dispatch(algo, &topo, seq, d).iter().enumerate() {
                    assert_eq!(
                        *got, want,
                        "{algo:?} {nodes}x{gpn} {dtype:?} rank {rank}: \
                         measured {got:?} != census {want:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn ulysses_and_usp_peaks_match_exact_census() {
    // G = 4 as 2×2; heads divide both the world (Ulysses) and U=2 (USP).
    let (nodes, gpn, seq, heads, dh) = (2usize, 2usize, 32usize, 4usize, 6usize);
    let g = nodes * gpn;
    let d = heads * dh;
    let cluster = Cluster::a800(nodes, gpn);
    let scale = 1.0 / (dh as f32).sqrt();
    let mask = AttnMask::Causal;
    let qh: Vec<Mat> = (0..heads)
        .map(|h| randn_mat(seq, dh, 0.7, 500 + h as u64))
        .collect();
    let kh: Vec<Mat> = (0..heads)
        .map(|h| randn_mat(seq, dh, 0.7, 600 + h as u64))
        .collect();
    let vh: Vec<Mat> = (0..heads)
        .map(|h| randn_mat(seq, dh, 0.7, 700 + h as u64))
        .collect();
    let doh: Vec<Mat> = (0..heads)
        .map(|h| randn_mat(seq, dh, 0.8, 800 + h as u64))
        .collect();
    for dtype in DTYPES {
        let topo = Topology::a800(nodes, gpn).with_wire_dtype(dtype);

        // Pure Ulysses over the whole world.
        let want = exact_peak_bytes_dtype(&cluster, seq, d, PeakMethod::Ulysses { heads }, dtype);
        let world = World::new(topo.clone());
        let outs = world.run(|comm| {
            let members: Vec<usize> = (0..g).collect();
            let member_idx: Vec<Vec<usize>> = (0..g)
                .map(|m| Layout::Contiguous.indices(seq, g, m))
                .collect();
            let my_idx = &member_idx[comm.rank()];
            let ql: Vec<Mat> = qh.iter().map(|m| m.gather_rows(my_idx)).collect();
            let kl: Vec<Mat> = kh.iter().map(|m| m.gather_rows(my_idx)).collect();
            let vl: Vec<Mat> = vh.iter().map(|m| m.gather_rows(my_idx)).collect();
            let dol: Vec<Mat> = doh.iter().map(|m| m.gather_rows(my_idx)).collect();
            comm.start_mem_accounting();
            let (_, saved) = ulysses_forward(
                comm,
                &members,
                &member_idx,
                &ql,
                &kl,
                &vl,
                scale,
                &mask,
                &CostModel::free(),
            )
            .expect("ulysses forward");
            ulysses_backward(
                comm,
                &members,
                &member_idx,
                &saved,
                &dol,
                scale,
                &mask,
                &CostModel::free(),
            )
            .expect("ulysses backward");
        });
        for o in outs {
            let m = o.mem.expect("accounting was on");
            validate_mem(&m).unwrap_or_else(|e| panic!("rank {}: {e}", o.rank));
            assert_eq!(
                m.peak.gated(),
                want,
                "ulysses {dtype:?} rank {}: census mismatch",
                o.rank
            );
        }

        // USP: U = 2 Ulysses groups × R = 2 context rings.
        let u = 2usize;
        let want = exact_peak_bytes_dtype(
            &cluster,
            seq,
            d,
            PeakMethod::Usp { heads, ulysses: u },
            dtype,
        );
        let world = World::new(topo.clone());
        let outs = world.run(|comm| {
            let utopo = UspTopo::new(comm, u);
            let my_idx = utopo.local_idx(seq);
            let ql: Vec<Mat> = qh.iter().map(|m| m.gather_rows(&my_idx)).collect();
            let kl: Vec<Mat> = kh.iter().map(|m| m.gather_rows(&my_idx)).collect();
            let vl: Vec<Mat> = vh.iter().map(|m| m.gather_rows(&my_idx)).collect();
            let dol: Vec<Mat> = doh.iter().map(|m| m.gather_rows(&my_idx)).collect();
            comm.start_mem_accounting();
            let (_, saved) = usp_forward(
                comm,
                &utopo,
                &ql,
                &kl,
                &vl,
                scale,
                &mask,
                seq,
                &CostModel::free(),
            )
            .expect("usp forward");
            usp_backward(
                comm,
                &utopo,
                &saved,
                &dol,
                scale,
                &mask,
                seq,
                &CostModel::free(),
            )
            .expect("usp backward");
        });
        for o in outs {
            let m = o.mem.expect("accounting was on");
            validate_mem(&m).unwrap_or_else(|e| panic!("rank {}: {e}", o.rank));
            assert_eq!(
                m.peak.gated(),
                want,
                "usp {dtype:?} rank {}: census mismatch",
                o.rank
            );
        }
    }
}

#[test]
fn elastic_healthy_peaks_match_exact_census() {
    let (nodes, gpn, seq, d) = (1usize, 4usize, 64usize, 8usize);
    let g = nodes * gpn;
    let cluster = Cluster::a800(nodes, gpn);
    let (q, k, v, grad_o, scale) = problem(seq, d);
    let layout = Layout::Zigzag;
    for dtype in DTYPES {
        let topo = Topology::a800(nodes, gpn).with_wire_dtype(dtype);
        let want = exact_peak_bytes_dtype(&cluster, seq, d, PeakMethod::ElasticHealthy, dtype);
        let world = World::new(topo);
        let outs = world.run(|comm| {
            let r = comm.rank();
            let (ql, kl, vl, dol) = (
                shard_of(layout, seq, g, r, &q),
                shard_of(layout, seq, g, r, &k),
                shard_of(layout, seq, g, r, &v),
                shard_of(layout, seq, g, r, &grad_o),
            );
            comm.start_mem_accounting();
            let mut membership = Membership::new(g);
            let mut load = |rank: usize| -> ShardData {
                (
                    shard_of(layout, seq, g, rank, &q),
                    shard_of(layout, seq, g, rank, &k),
                    shard_of(layout, seq, g, rank, &v),
                    shard_of(layout, seq, g, rank, &grad_o),
                )
            };
            let out = try_elastic_attention(
                comm,
                &mut membership,
                &ql,
                &kl,
                &vl,
                &dol,
                scale,
                &AttnMask::Causal,
                layout,
                seq,
                &CostModel::a800(),
                &mut load,
                &RetryPolicy::default(),
            )
            .expect("healthy elastic run");
            assert_eq!(out.attempts, 1);
            assert_eq!(out.shards_loaded, 0);
        });
        for o in outs {
            let m = o.mem.expect("accounting was on");
            validate_mem(&m).unwrap_or_else(|e| panic!("rank {}: {e}", o.rank));
            assert!(m.warnings.is_empty(), "{:?}", m.warnings);
            assert_eq!(
                m.peak.gated(),
                want,
                "elastic {dtype:?} rank {}: census mismatch",
                o.rank
            );
        }
    }
}

/// Satellite contract: the accountant is a pure observer. Enabling it
/// changes neither the numerics nor the virtual clock, and ring rounds
/// append no ledger entries (the entry count depends on the schedule's
/// pass structure, not on how many rounds the ring turns).
#[test]
fn accounting_is_bit_identical_and_entry_count_is_round_independent() {
    let (seq, d) = (64usize, 8usize);
    let run = |accounting: bool, gpn: usize| {
        let topo = Topology::a800(1, gpn);
        let (q, k, v, grad_o, scale) = problem(seq, d);
        let layout = Layout::Zigzag;
        let world = World::new(topo);
        world.run(|comm| {
            let r = comm.rank();
            let (ql, kl, vl, dol) = (
                shard_of(layout, seq, gpn, r, &q),
                shard_of(layout, seq, gpn, r, &k),
                shard_of(layout, seq, gpn, r, &v),
                shard_of(layout, seq, gpn, r, &grad_o),
            );
            if accounting {
                comm.start_mem_accounting();
            }
            let (o, lse, dq, dk, dv) = run_attention(
                Algo::BurstTopo,
                comm,
                &ql,
                &kl,
                &vl,
                &dol,
                scale,
                &AttnMask::Causal,
                layout,
                seq,
                &CostModel::a800(),
            );
            let mut bits: Vec<u32> = Vec::new();
            for m in [&o, &dq, &dk, &dv] {
                bits.extend(m.as_slice().iter().map(|x| x.to_bits()));
            }
            bits.extend(lse.iter().map(|x| x.to_bits()));
            bits
        })
    };
    let off = run(false, 4);
    let on = run(true, 4);
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(
            a.result, b.result,
            "rank {}: accounting changed numerics",
            a.rank
        );
        assert_eq!(
            a.time.to_bits(),
            b.time.to_bits(),
            "rank {}: accounting moved the virtual clock",
            a.rank
        );
        assert!(a.mem.is_none() && b.mem.is_some());
    }
    // Same schedule, twice the ring rounds: identical entry count. The
    // rounds' wire traffic lands on the lane counters, not the ledger.
    let entries = |gpn: usize| {
        run(true, gpn)
            .into_iter()
            .map(|o| o.mem.unwrap().entries.len())
            .collect::<Vec<_>>()
    };
    let e4 = entries(4);
    let e8 = entries(8);
    assert!(
        e4.iter().all(|&n| n == e4[0]),
        "ragged entry counts: {e4:?}"
    );
    assert_eq!(
        e4[0], e8[0],
        "ledger entries must not scale with ring rounds (zero-alloc steady state)"
    );
}

/// Satellite contract: a crashed rank's ledger force-closes its open
/// intervals with warnings and still balances — allocation == free +
/// live-at-crash.
#[test]
fn crashed_rank_ledger_balances_with_warnings() {
    let (seq, d) = (64usize, 8usize);
    let topo = Topology::a800(1, 4);
    let g = topo.world_size();
    let victim = 2usize;
    let (q, k, v, grad_o, scale) = problem(seq, d);
    let layout = Layout::Zigzag;
    let world = World::with_faults(topo, FaultPlan::new(5).crash_at_op(victim, 8));
    let outs = world.run_faulty(|comm| {
        let r = comm.rank();
        let (ql, kl, vl, dol) = (
            shard_of(layout, seq, g, r, &q),
            shard_of(layout, seq, g, r, &k),
            shard_of(layout, seq, g, r, &v),
            shard_of(layout, seq, g, r, &grad_o),
        );
        comm.start_mem_accounting();
        try_run_attention(
            Algo::BurstFlat,
            comm,
            &ql,
            &kl,
            &vl,
            &dol,
            scale,
            &AttnMask::Causal,
            layout,
            seq,
            &CostModel::a800(),
        )
        .map(|_| ())
    });
    let mut census = Vec::new();
    for o in &outs {
        let m = o.mem.as_ref().expect("ledger survives the crash");
        assert!(
            m.balances(),
            "rank {}: allocated {} != freed {} + live {}",
            o.rank,
            m.allocated_bytes,
            m.freed_bytes,
            m.live_at_close
        );
        validate_mem(m).unwrap_or_else(|e| panic!("rank {}: {e}", o.rank));
        census.push(m.clone());
        if o.rank == victim {
            assert!(o.result.is_err(), "the victim must observe its crash");
            assert!(
                !m.warnings.is_empty(),
                "the victim died mid-pass; its open entries must warn"
            );
            assert!(
                m.live_at_close > 0,
                "the victim's buffers were live at crash"
            );
        }
    }
    // The cluster census still merges — crashed ledgers are first-class.
    let merged = peak_census(&census);
    assert!(merged.gated_total > 0);
}
