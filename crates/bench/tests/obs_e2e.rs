//! End-to-end observability contract: the wire time *measured* from the
//! simulator's `Send` spans must match the exact-count analytic prediction
//! of `crates/perf` — per link class and in total — because both sides
//! model a message as `latency + bytes/bandwidth`. The 1 % gate here is
//! the same one the `burst-trace` harness and the CI job enforce.

use burst_comm::obs::{wire_secs, E2eReport, MethodReport, RankTrace};
use burst_comm::{Topology, World};
use burst_dattn::{run_attention, Algo, CostModel, Layout};
use burst_kernels::AttnMask;
use burst_perf::commtime::{exact_wire_counts, layer_comm_times, RingMethod};
use burst_perf::Cluster;
use burst_tensor::randn_mat;

const METHODS: [(&str, Algo, RingMethod); 3] = [
    ("ring", Algo::RingFlat, RingMethod::Ring),
    ("double_ring", Algo::DoubleRing, RingMethod::DoubleRing),
    ("burst", Algo::BurstTopo, RingMethod::Burst),
];

fn traces(algo: Algo, topo: &Topology, seq: usize, d: usize) -> Vec<RankTrace> {
    let g = topo.world_size();
    let q = randn_mat(seq, d, 0.7, 61);
    let k = randn_mat(seq, d, 0.7, 62);
    let v = randn_mat(seq, d, 0.7, 63);
    let grad_o = randn_mat(seq, d, 0.8, 64);
    let scale = 1.0 / (d as f32).sqrt();
    let layout = Layout::Zigzag;
    let world = World::new(topo.clone());
    world
        .run(|comm| {
            let idx = layout.indices(seq, g, comm.rank());
            let (ql, kl, vl, dol) = (
                q.gather_rows(&idx),
                k.gather_rows(&idx),
                v.gather_rows(&idx),
                grad_o.gather_rows(&idx),
            );
            comm.start_trace();
            run_attention(
                algo,
                comm,
                &ql,
                &kl,
                &vl,
                &dol,
                scale,
                &AttnMask::Causal,
                layout,
                seq,
                &CostModel::a800(),
            );
        })
        .into_iter()
        .map(|o| o.trace.expect("tracing was on"))
        .collect()
}

#[test]
fn measured_wire_time_matches_exact_census_within_1_percent() {
    let (seq, d) = (256usize, 16usize);
    for (nodes, gpn) in [(2usize, 4usize), (1, 4), (4, 2)] {
        let topo = Topology::a800(nodes, gpn);
        let cluster = Cluster::a800(nodes, gpn);
        for (name, algo, method) in METHODS {
            let t = traces(algo, &topo, seq, d);
            let (intra, inter) = wire_secs(&t);
            let counts = exact_wire_counts(&cluster, seq, d, method);
            let pred_intra = counts.intra_msgs as f64 * cluster.nvlink.latency
                + counts.intra_bytes / cluster.nvlink.bandwidth;
            let pred_inter = counts.inter_msgs as f64 * cluster.nic.latency
                + counts.inter_bytes / cluster.nic.bandwidth;
            for (label, got, want) in [
                ("intra", intra, pred_intra),
                ("inter", inter, pred_inter),
                ("total", intra + inter, counts.secs(&cluster)),
            ] {
                let err = if want > 0.0 {
                    (got - want).abs() / want
                } else {
                    got.abs()
                };
                assert!(
                    err <= 0.01,
                    "{name} {nodes}x{gpn} {label}: measured {got} vs predicted {want} \
                     (rel err {err})"
                );
            }
        }
    }
}

#[test]
fn e2e_report_populates_all_methods_and_round_trips() {
    let (nodes, gpn, seq, d) = (2usize, 2usize, 128usize, 8usize);
    let topo = Topology::a800(nodes, gpn);
    let cluster = Cluster::a800(nodes, gpn);
    let table1 = layer_comm_times(&cluster, seq, d);
    let mut report = E2eReport::new(nodes, gpn, seq, d);
    for (name, algo, method) in METHODS {
        let t = traces(algo, &topo, seq, d);
        let predicted = exact_wire_counts(&cluster, seq, d, method).secs(&cluster);
        let table1_secs = match method {
            RingMethod::Ring => table1.ring,
            RingMethod::DoubleRing => table1.double_ring,
            RingMethod::Burst => table1.burst,
        };
        report.methods.push(MethodReport::from_traces(
            name,
            &t,
            seq,
            d,
            cluster.peak_flops,
            predicted,
            table1_secs,
        ));
    }
    report.validate_schema().expect("schema");
    for m in &report.methods {
        assert!(
            m.comm_rel_err <= 0.01,
            "{}: rel err {}",
            m.method,
            m.comm_rel_err
        );
        assert!(m.overlap_efficiency > 0.0 && m.overlap_efficiency <= 1.0);
        assert!(m.mfu > 0.0);
    }
    let text = serde_json::to_string(&report).expect("serialize");
    let back: E2eReport = serde_json::from_str(&text).expect("parse");
    assert_eq!(back, report);
}
