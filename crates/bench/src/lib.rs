//! # burst-bench
//!
//! Shared workload builders for the Criterion benches and the `tables`
//! harness (`cargo run -p burst-bench --bin tables`), which regenerates
//! every figure and table in the paper's evaluation section — Figs. 2, 7,
//! 8, 12, 13, 14 and Tables 1–5 — from the analytical models of
//! `burst-perf`, cross-checked where feasible against the executable
//! simulator of `burst-comm`/`burst-dattn` at reduced scale.

use burst_tensor::{randn_mat, Mat};

/// A deterministic attention problem: `(Q, K, V, ∇O, scale)`.
pub struct AttnProblem {
    pub q: Mat,
    pub k: Mat,
    pub v: Mat,
    pub grad_o: Mat,
    pub scale: f32,
}

/// Build a seeded attention problem of `n × d`.
pub fn attn_problem(n: usize, d: usize, seed: u64) -> AttnProblem {
    AttnProblem {
        q: randn_mat(n, d, 0.7, seed),
        k: randn_mat(n, d, 0.7, seed + 1),
        v: randn_mat(n, d, 0.7, seed + 2),
        grad_o: randn_mat(n, d, 0.8, seed + 3),
        scale: 1.0 / (d as f32).sqrt(),
    }
}

/// Render one row of a fixed-width text table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_is_seeded() {
        let a = attn_problem(8, 4, 1);
        let b = attn_problem(8, 4, 1);
        assert_eq!(a.q, b.q);
        assert_eq!(a.scale, 0.5);
    }

    #[test]
    fn row_pads_right_aligned() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
