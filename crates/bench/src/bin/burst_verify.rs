//! `burst-verify`: the self-validating differential gate, as a binary.
//!
//! Runs a seeded matrix of every distributed attention schedule (flat ring,
//! BurstAttention, double-ring, topology-aware Burst, Ulysses, USP, and the
//! elastic shrunken ring) plus full engine train steps against the serial
//! `f64` oracle from `crates/verify`, including one fault + recovery case
//! per schedule. Prints one line per cell and exits non-zero on the first
//! divergence — which is what the CI `verify` job keys on.
//!
//! ```text
//! cargo run --release -p burst-bench --bin burst-verify -- \
//!     [--seeds 3] [--seed-base 100] [--steps 3] [--out target/burst-verify]
//! ```
//!
//! The report (`VERIFY.json`) records every cell with its worst observed
//! deviation, so a red CI run ships the exact failing configuration.

use std::io::Write as _;
use std::process::ExitCode;

use burst_comm::{FaultPlan, Topology, TransportPolicy};
use burst_dattn::{Algo, ElasticOpts, Layout};
use burst_kernels::{AttnMask, BlockSparseMask};
use burst_model::engine::{Backend, EngineConfig};
use burst_verify::diff::{
    attn_inputs, elastic_ops_after, engine_elastic, engine_resume, engine_run, engine_span,
    run_elastic, run_elastic_on, run_ring_family, run_ring_family_opts, run_ulysses, run_usp,
    GlobalAttn,
};
use burst_verify::oracle::{oracle_attention, oracle_train, OracleAttn};
use burst_verify::{
    compare_slice, Divergence, ORACLE_ATTN_ATOL, ORACLE_ATTN_RTOL, ORACLE_GRAD_ATOL,
    ORACLE_GRAD_RTOL, ORACLE_TRAIN_ATOL, ORACLE_TRAIN_RTOL,
};

struct Args {
    seeds: u64,
    seed_base: u64,
    steps: usize,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 3,
        seed_base: 100,
        steps: 3,
        out: "target/burst-verify".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--seed-base" => {
                args.seed_base = value("--seed-base")?
                    .parse()
                    .map_err(|e| format!("--seed-base: {e}"))?
            }
            "--steps" => {
                args.steps = value("--steps")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    if args.seeds == 0 || args.steps == 0 {
        return Err("--seeds and --steps must be positive".to_string());
    }
    Ok(args)
}

/// One matrix cell's outcome, for the JSON report.
struct Cell {
    name: String,
    seed: u64,
    ok: bool,
    detail: String,
}

fn check_attn(
    label: &str,
    got: &GlobalAttn,
    want: &OracleAttn,
    with_lse: bool,
) -> Result<(), Divergence> {
    compare_slice(
        &format!("{label}/o"),
        got.o.as_slice(),
        want.o.as_slice(),
        ORACLE_ATTN_ATOL,
        ORACLE_ATTN_RTOL,
    )?;
    if with_lse {
        compare_slice(
            &format!("{label}/lse"),
            &got.lse,
            &want.lse,
            ORACLE_ATTN_ATOL,
            ORACLE_ATTN_RTOL,
        )?;
    }
    for (what, g, w) in [
        ("dq", &got.dq, &want.dq),
        ("dk", &got.dk, &want.dk),
        ("dv", &got.dv, &want.dv),
    ] {
        compare_slice(
            &format!("{label}/{what}"),
            g.as_slice(),
            w.as_slice(),
            ORACLE_GRAD_ATOL,
            ORACLE_GRAD_RTOL,
        )?;
    }
    Ok(())
}

fn oracle_for(n: usize, d: usize, seed: u64, mask: &AttnMask) -> OracleAttn {
    let (q, k, v, go) = attn_inputs(n, d, seed);
    oracle_attention(&q, &k, &v, &go, 1.0 / (d as f32).sqrt(), mask)
}

/// The attention half of the matrix: every schedule, clean and faulted.
fn attention_cells(seed: u64, cells: &mut Vec<Cell>) {
    let g = 4usize;
    let (n, d, heads) = (8 * g, 8usize, 4usize);
    let topo = Topology::single_node(g);
    let multi = Topology::a800(2, 2);
    let delay = FaultPlan::new(seed)
        .delay_link(0, 1, 3e-3, 1e-3)
        .slow_compute((seed % g as u64) as usize, 2.0);

    let ring_algos = [
        ("ring-flat", Algo::RingFlat),
        ("burst-flat", Algo::BurstFlat),
        ("double-ring", Algo::DoubleRing),
        ("burst-topo", Algo::BurstTopo),
    ];
    let want = oracle_for(n, d, seed, &AttnMask::Causal);
    for (name, algo) in ring_algos {
        for (variant, topo, plan) in [
            ("clean", &topo, None),
            ("multinode", &multi, None),
            ("delay-fault", &topo, Some(&delay)),
        ] {
            let label = format!("attn/{name}/{variant}");
            let outcome = run_ring_family(
                algo,
                Layout::Zigzag,
                topo,
                n,
                d,
                seed,
                &AttnMask::Causal,
                plan,
            )
            .map_err(|e| e.to_string())
            .and_then(|got| check_attn(&label, &got, &want, true).map_err(|d| d.to_string()));
            push(cells, &label, seed, outcome);
        }
    }

    for (variant, plan) in [("clean", None), ("delay-fault", Some(&delay))] {
        let label = format!("attn/ulysses/{variant}");
        let outcome = run_ulysses(&topo, n, d, heads, seed, &AttnMask::Causal, plan)
            .map_err(|e| e.to_string())
            .and_then(|got| {
                for (h, got_h) in got.iter().enumerate() {
                    let want =
                        oracle_for(n, d, seed.wrapping_mul(64) + h as u64, &AttnMask::Causal);
                    check_attn(&format!("{label}/head{h}"), got_h, &want, false)
                        .map_err(|d| d.to_string())?;
                }
                Ok(())
            });
        push(cells, &label, seed, outcome);

        let label = format!("attn/usp-u2/{variant}");
        let outcome = run_usp(&topo, n, d, heads, 2, seed, &AttnMask::Causal, plan)
            .map_err(|e| e.to_string())
            .and_then(|got| {
                for (h, got_h) in got.iter().enumerate() {
                    let want =
                        oracle_for(n, d, seed.wrapping_mul(64) + h as u64, &AttnMask::Causal);
                    check_attn(&format!("{label}/head{h}"), got_h, &want, false)
                        .map_err(|d| d.to_string())?;
                }
                Ok(())
            });
        push(cells, &label, seed, outcome);
    }

    // Elastic: crash one rank mid-ring, survivors evict + re-run. The
    // fault+recovery cell of the ring family.
    let dead = (seed % g as u64) as usize;
    let crash = FaultPlan::new(seed).crash_at_op(dead, 3 + seed % 6);
    let label = "attn/elastic/crash-recover".to_string();
    let outcome = run_elastic(g, 24, d, seed, Some(&crash))
        .map_err(|e| e.to_string())
        .and_then(|out| {
            if out.evicted != vec![dead] {
                return Err(format!("evicted {:?}, expected [{dead}]", out.evicted));
            }
            let want = oracle_for(24, d, seed, &AttnMask::Causal);
            check_attn(&label, &out.attn, &want, true).map_err(|d| d.to_string())
        });
    push(cells, &label, seed, outcome);

    // Multi-node elastic double-ring: crash one of four ranks on a
    // 2-node × 2-GPU cluster; the three survivors are ragged across the
    // nodes, so the topology-aware schedule must fall back to the flat
    // ring — and still match the oracle over all rows.
    let label = "attn/elastic-dr/multinode-crash".to_string();
    let crash_dr = FaultPlan::new(seed)
        .crash_at_op(dead, 3 + seed % 6)
        .recv_deadline(60.0);
    let dr_opts = ElasticOpts {
        double_ring: true,
        warm_start: false,
        skip_masked_rounds: false,
    };
    let outcome = run_elastic_on(&multi, 24, d, seed, Some(&crash_dr), dr_opts)
        .map_err(|e| e.to_string())
        .and_then(|out| {
            if out.evicted != vec![dead] {
                return Err(format!("evicted {:?}, expected [{dead}]", out.evicted));
            }
            if out.flat_fallbacks == 0 {
                return Err("ragged 3-survivor set must fall back to the flat ring".into());
            }
            let want = oracle_for(24, d, seed, &AttnMask::Causal);
            check_attn(&label, &out.attn, &want, true).map_err(|d| d.to_string())
        });
    push(cells, &label, seed, outcome);
}

/// Deterministic random block-sparse pattern (xorshift64, diagonal kept
/// allowed) — the same generator the verify-crate test matrix uses.
fn random_block_sparse(n: usize, block: usize, seed: u64) -> AttnMask {
    let nblocks = n.div_ceil(block);
    let mut s = seed | 1;
    let mut allowed = vec![false; nblocks * nblocks];
    for bi in 0..nblocks {
        for bj in 0..nblocks {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            allowed[bi * nblocks + bj] = bi == bj || (s >> 33) & 3 == 0;
        }
    }
    AttnMask::BlockSparse(BlockSparseMask::new(block, nblocks, allowed))
}

/// The masked rows of the matrix: every sparse mask kind through every
/// ring-family schedule with mask-aware round skipping ON, checked against
/// the oracle — and against the skip-OFF run of the same cell **bit for
/// bit** (skipping must be a pure communication optimisation). The
/// contiguous layout keeps fully-masked rounds plentiful, so the skip path
/// is genuinely exercised, and the multi-node topology exercises
/// forwarding-only hops.
fn masked_cells(seed: u64, cells: &mut Vec<Cell>) {
    let (n, d) = (32usize, 8usize);
    let multi = Topology::a800(2, 2);
    let masks = [
        ("sliding-window", AttnMask::SlidingWindow { window: 8 }),
        (
            "dilated",
            AttnMask::Dilated {
                window: 16,
                step: 2,
            },
        ),
        ("block-sparse", random_block_sparse(n, 4, seed)),
    ];
    let ring_algos = [
        ("ring-flat", Algo::RingFlat),
        ("burst-flat", Algo::BurstFlat),
        ("double-ring", Algo::DoubleRing),
        ("burst-topo", Algo::BurstTopo),
    ];
    for (mask_name, mask) in &masks {
        let want = oracle_for(n, d, seed, mask);
        for (name, algo) in ring_algos {
            let label = format!("attn/{name}/masked-{mask_name}");
            let outcome = run_ring_family_opts(
                algo,
                Layout::Contiguous,
                &multi,
                n,
                d,
                seed,
                mask,
                None,
                true,
            )
            .map_err(|e| e.to_string())
            .and_then(|got| {
                check_attn(&label, &got, &want, true).map_err(|d| d.to_string())?;
                let dense = run_ring_family_opts(
                    algo,
                    Layout::Contiguous,
                    &multi,
                    n,
                    d,
                    seed,
                    mask,
                    None,
                    false,
                )
                .map_err(|e| e.to_string())?;
                for (what, a, b) in [
                    ("o", &got.o, &dense.o),
                    ("dq", &got.dq, &dense.dq),
                    ("dk", &got.dk, &dense.dk),
                    ("dv", &got.dv, &dense.dv),
                ] {
                    if bits_differ(a.as_slice(), b.as_slice()) {
                        return Err(format!("{what}: skip-on differs from skip-off"));
                    }
                }
                if bits_differ(&got.lse, &dense.lse) {
                    return Err("lse: skip-on differs from skip-off".to_string());
                }
                Ok(())
            });
            push(cells, &label, seed, outcome);
        }
    }
}

/// The engine half: every backend trains against the oracle train-step,
/// with a poisoned-gradient skip + resume case per backend.
fn engine_cells(seed: u64, steps: usize, cells: &mut Vec<Cell>) {
    let backends = [
        ("local", Backend::Local),
        ("ring-flat", Backend::Ring(Algo::RingFlat)),
        ("burst-flat", Backend::Ring(Algo::BurstFlat)),
        ("double-ring", Backend::Ring(Algo::DoubleRing)),
        ("burst-topo", Backend::Ring(Algo::BurstTopo)),
        ("ulysses", Backend::Ulysses),
        ("usp-u2", Backend::Usp { ulysses_size: 2 }),
    ];
    for (name, backend) in backends {
        let g = match backend {
            Backend::Local => 1,
            Backend::Ulysses => 2,
            _ => 4,
        };
        let mut cfg = EngineConfig::tiny(backend);
        cfg.seed = seed;
        let topo = Topology::single_node(g);

        let label = format!("engine/{name}/clean");
        let want = oracle_train(&cfg, steps, &[]);
        let outcome = engine_run(&cfg, &topo, steps, None)
            .map_err(|e| e.to_string())
            .and_then(|run| {
                compare_slice(
                    &format!("{label}/losses"),
                    &run.losses,
                    &want.losses,
                    ORACLE_TRAIN_ATOL,
                    ORACLE_TRAIN_RTOL,
                )
                .and_then(|()| {
                    compare_slice(
                        &format!("{label}/flat"),
                        &run.flat,
                        &want.flat,
                        ORACLE_TRAIN_ATOL,
                        ORACLE_TRAIN_RTOL,
                    )
                })
                .map_err(|d| d.to_string())
            });
        push(cells, &label, seed, outcome);

        // Fault + resume: poison a gradient at step 1, expect a lockstep
        // skip matching the skipping oracle, then resume past the cut and
        // demand bit-identical state with the uninterrupted faulty run.
        let label = format!("engine/{name}/poison-skip-resume");
        let bad_rank = (seed % g as u64) as usize;
        let plan = FaultPlan::new(seed).poison_grad(bad_rank, 1, f32::NAN);
        let want = oracle_train(&cfg, steps, &[1]);
        let outcome = engine_run(&cfg, &topo, steps, Some(&plan))
            .map_err(|e| e.to_string())
            .and_then(|run| {
                if run.skipped != 1 {
                    return Err(format!("expected 1 skipped step, saw {}", run.skipped));
                }
                compare_slice(
                    &format!("{label}/flat"),
                    &run.flat,
                    &want.flat,
                    ORACLE_TRAIN_ATOL,
                    ORACLE_TRAIN_RTOL,
                )
                .map_err(|d| d.to_string())?;
                let resumed =
                    engine_resume(&cfg, &topo, 2, steps, Some(&plan)).map_err(|e| e.to_string())?;
                if resumed
                    .flat
                    .iter()
                    .zip(&run.flat)
                    .any(|(a, b)| a.to_bits() != b.to_bits())
                {
                    return Err("resume after poisoned step is not bit-exact".to_string());
                }
                Ok(())
            });
        push(cells, &label, seed, outcome);
    }

    // Elastic shrink-and-continue: crash one rank mid-step on a 4-rank
    // ring; survivors evict it, replay the step in place on the 3-rank
    // ring, and the whole run must be bit-identical to a fresh 4-rank
    // world chained into a fresh 3-rank world at the crash step.
    let steps = steps.max(2);
    let mut cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
    cfg.model.seq_len = 48; // zigzag needs n % 2g == 0 for g in {3, 4}
    cfg.seed = seed;
    let topo = Topology::single_node(4);
    let victim = 1 + (seed % 3) as usize;
    let f = 1usize;
    let label = "engine/elastic/shrink-continue".to_string();
    let before = elastic_ops_after(&cfg, &topo, victim, f);
    let after = elastic_ops_after(&cfg, &topo, victim, f + 1);
    let plan = FaultPlan::new(seed)
        .crash_at_op(victim, (before + after) / 2)
        .recv_deadline(60.0);
    let outcome = engine_elastic(&cfg, &topo, steps, Some(&plan), None, 0)
        .map_err(|e| e.to_string())
        .and_then(|run| {
            if run.evicted != vec![victim] {
                return Err(format!("evicted {:?}, expected [{victim}]", run.evicted));
            }
            if run.steps_replayed != 1 {
                return Err(format!("steps_replayed {}, expected 1", run.steps_replayed));
            }
            let phase1 = engine_span(&cfg, &topo, 0, f, None, None).map_err(|e| e.to_string())?;
            let small = Topology::single_node(3);
            let phase2 = engine_span(&cfg, &small, f, steps, Some(&phase1.flat), None)
                .map_err(|e| e.to_string())?;
            let want: Vec<f32> = phase1
                .losses
                .iter()
                .chain(&phase2.losses)
                .copied()
                .collect();
            if run.losses.len() != want.len()
                || run
                    .losses
                    .iter()
                    .zip(&want)
                    .any(|(a, b)| a.to_bits() != b.to_bits())
            {
                return Err("elastic losses diverge from segmented reference".to_string());
            }
            if run.flat.len() != phase2.flat.len()
                || run
                    .flat
                    .iter()
                    .zip(&phase2.flat)
                    .any(|(a, b)| a.to_bits() != b.to_bits())
            {
                return Err("elastic final state diverges from segmented reference".to_string());
            }
            Ok(())
        });
    push(cells, &label, seed, outcome);
}

/// The recovery-ladder cells of the reliable transport.
///
/// * `engine/transport/transient-clean` — a seeded plan carrying every
///   transient fault class (drops, a burst window, corruption, a link
///   flap, a partition), all inside the retry budget, run under the
///   reliable transport through the *elastic* engine: it must finish with
///   zero evictions and zero step replays, and its losses and final state
///   must be bit-identical to the clean run — transient faults never
///   reach the rungs above the transport.
/// * `engine/transport/escalation-parity` — one dropped attention message
///   with retries disabled must reproduce today's escalation path
///   exactly: the sender is evicted, the step replays on the shrunken
///   ring, and the whole run equals the PR 7 segmented elastic reference
///   (a fresh small world). The same plan under the transport heals to
///   the clean fixed point.
fn transport_cells(seed: u64, steps: usize, cells: &mut Vec<Cell>) {
    let steps = steps.max(2);

    // --- transient-clean -------------------------------------------------
    let mut cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
    cfg.seed = seed;
    let topo = Topology::single_node(4);
    let label = "engine/transport/transient-clean".to_string();
    let budget = TransportPolicy::default().min_retry_budget();
    let transient = FaultPlan::new(seed)
        .drop_msg(1, 2, 3)
        .drop_burst(2, 3, 5, 2)
        .corrupt_msg(3, 0, 2)
        .flap_link(0, 1, 0.0, (budget * 0.4).min(8e-4))
        .partition(&[&[0, 1], &[2, 3]], 1.2e-3, 2e-3)
        .recv_deadline(60.0)
        .reliable();
    let outcome = engine_run(&cfg, &topo, steps, None)
        .map_err(|e| e.to_string())
        .and_then(|clean| {
            let run = engine_elastic(&cfg, &topo, steps, Some(&transient), None, 0)
                .map_err(|e| e.to_string())?;
            if !run.evicted.is_empty() {
                return Err(format!("transient plan evicted {:?}", run.evicted));
            }
            if run.steps_replayed != 0 {
                return Err(format!(
                    "transient plan replayed {} steps",
                    run.steps_replayed
                ));
            }
            if bits_differ(&run.losses, &clean.losses) {
                return Err("healed losses diverge from the clean run".to_string());
            }
            if bits_differ(&run.flat, &clean.flat) {
                return Err("healed final state diverges from the clean run".to_string());
            }
            Ok(())
        });
    push(cells, &label, seed, outcome);

    // --- escalation-parity -----------------------------------------------
    // The drop is aimed at the victim's first *attention* K/V send, past
    // the FSDP gather prelude (one ring all-gather of g-1 hops per
    // parameter tensor), so the legacy path escalates instantly at the
    // receiver instead of stalling in the gather's receive-retry loop.
    let mut cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
    cfg.model.seq_len = 48; // zigzag needs n % 2g == 0 for g in {3, 4}
    cfg.seed = seed;
    let victim = 1 + (seed % 2) as usize;
    let dst = victim + 1;
    let params = burst_model::Model::new(cfg.model, cfg.seed).params().len() as u64;
    let prelude = 3 * params; // (g - 1) messages per parameter on the link
    let one_drop = move |reliable: bool| {
        let p = FaultPlan::new(seed)
            .drop_msg(victim, dst, prelude)
            .recv_deadline(60.0);
        if reliable {
            p.reliable()
        } else {
            p
        }
    };
    let label = "engine/transport/escalation-parity".to_string();
    let outcome = engine_elastic(&cfg, &topo, steps, Some(&one_drop(false)), None, 0)
        .map_err(|e| e.to_string())
        .and_then(|run| {
            if run.evicted != vec![victim] {
                return Err(format!("evicted {:?}, expected [{victim}]", run.evicted));
            }
            if run.steps_replayed != 1 {
                return Err(format!("steps_replayed {}, expected 1", run.steps_replayed));
            }
            // PR 7 reference: the eviction lands in step 0, so the whole
            // run must equal a fresh 3-rank world, bit for bit.
            let small = Topology::single_node(3);
            let reference =
                engine_span(&cfg, &small, 0, steps, None, None).map_err(|e| e.to_string())?;
            if bits_differ(&run.losses, &reference.losses) {
                return Err("escalation losses diverge from the PR 7 reference".to_string());
            }
            if bits_differ(&run.flat, &reference.flat) {
                return Err("escalation state diverges from the PR 7 reference".to_string());
            }
            // The very same drop under the transport heals to the clean
            // fixed point instead: full ring, nothing evicted or replayed.
            let clean = engine_run(&cfg, &topo, steps, None).map_err(|e| e.to_string())?;
            let healed = engine_elastic(&cfg, &topo, steps, Some(&one_drop(true)), None, 0)
                .map_err(|e| e.to_string())?;
            if !healed.evicted.is_empty() || healed.steps_replayed != 0 {
                return Err(format!(
                    "reliable path escalated anyway: evicted {:?}, replayed {}",
                    healed.evicted, healed.steps_replayed
                ));
            }
            if bits_differ(&healed.flat, &clean.flat) {
                return Err("healed state diverges from the clean run".to_string());
            }
            Ok(())
        });
    push(cells, &label, seed, outcome);
}

fn bits_differ(a: &[f32], b: &[f32]) -> bool {
    a.len() != b.len() || a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits())
}

fn push(cells: &mut Vec<Cell>, label: &str, seed: u64, outcome: Result<(), String>) {
    let (ok, detail) = match outcome {
        Ok(()) => (true, "ok".to_string()),
        Err(e) => (false, e),
    };
    println!(
        "{} {label} [seed {seed}]{}",
        if ok { "PASS" } else { "FAIL" },
        if ok {
            String::new()
        } else {
            format!(": {detail}")
        }
    );
    cells.push(Cell {
        name: label.to_string(),
        seed,
        ok,
        detail,
    });
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn run(args: &Args) -> Result<(), String> {
    let mut cells = Vec::new();
    for s in 0..args.seeds {
        let seed = args.seed_base + s;
        attention_cells(seed, &mut cells);
        masked_cells(seed, &mut cells);
        engine_cells(seed, args.steps, &mut cells);
        transport_cells(seed, args.steps, &mut cells);
    }
    let failed: Vec<&Cell> = cells.iter().filter(|c| !c.ok).collect();

    std::fs::create_dir_all(&args.out).map_err(|e| format!("mkdir {}: {e}", args.out))?;
    let path = format!("{}/VERIFY.json", args.out);
    let mut f = std::fs::File::create(&path).map_err(|e| format!("create {path}: {e}"))?;
    writeln!(f, "{{").map_err(|e| e.to_string())?;
    writeln!(
        f,
        "  \"cells\": {}, \"failed\": {}, \"seeds\": {},",
        cells.len(),
        failed.len(),
        args.seeds
    )
    .map_err(|e| e.to_string())?;
    writeln!(f, "  \"results\": [").map_err(|e| e.to_string())?;
    for (i, c) in cells.iter().enumerate() {
        writeln!(
            f,
            "    {{\"name\": \"{}\", \"seed\": {}, \"ok\": {}, \"detail\": \"{}\"}}{}",
            json_escape(&c.name),
            c.seed,
            c.ok,
            json_escape(&c.detail),
            if i + 1 == cells.len() { "" } else { "," }
        )
        .map_err(|e| e.to_string())?;
    }
    writeln!(f, "  ]").map_err(|e| e.to_string())?;
    writeln!(f, "}}").map_err(|e| e.to_string())?;

    println!(
        "burst-verify: {}/{} cells passed; report at {path}",
        cells.len() - failed.len(),
        cells.len()
    );
    if failed.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} cell(s) diverged: {}",
            failed.len(),
            failed
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "burst-verify: {e}\nusage: burst-verify [--seeds N] [--seed-base B] \
                 [--steps S] [--out DIR]"
            );
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("burst-verify: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
