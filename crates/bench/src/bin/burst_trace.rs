//! `burst-trace`: run the three ring disciplines on the simulated cluster
//! and export the full observability stack — a Chrome/Perfetto timeline,
//! the plain-text flame summary, the merged metrics registry and the
//! machine-readable `BENCH_e2e.json` report.
//!
//! The harness self-validates everything it emits: every per-rank trace
//! passes the structural span checks, the Perfetto JSON round-trips
//! through serde, the metrics merge is order-independent, and on the
//! fault-free path the measured wire time must match the exact-count
//! analytic prediction from `crates/perf` within 1 % — any violation exits
//! non-zero, which is what the CI observability job keys on.
//!
//! ```text
//! cargo run -p burst-bench --bin burst-trace -- \
//!     --seq 2048 --d 64 --nodes 2 --gpn 4 --out target/burst-trace [--fault]
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use burst_comm::obs::{
    self, flame_text, to_perfetto_grouped, E2eReport, MethodReport, PerfettoTrace, RankTrace,
    Registry, SpanKind,
};
use burst_comm::{CommStats, FaultCounters, FaultPlan, Topology, World};
use burst_dattn::{run_attention, try_run_attention, Algo, CostModel, Layout};
use burst_kernels::AttnMask;
use burst_perf::commtime::{exact_wire_counts, layer_comm_times, RingMethod};
use burst_perf::Cluster;
use burst_tensor::randn_mat;

/// Measured wire time may diverge from the exact-count prediction by at
/// most this relative error on the fault-free path.
const MAX_COMM_REL_ERR: f64 = 0.01;

struct Args {
    seq: usize,
    d: usize,
    nodes: usize,
    gpn: usize,
    out: String,
    fault: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seq: 2048,
        d: 64,
        nodes: 2,
        gpn: 4,
        out: "target/burst-trace".to_string(),
        fault: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--seq" => args.seq = value("--seq")?.parse().map_err(|e| format!("--seq: {e}"))?,
            "--d" => args.d = value("--d")?.parse().map_err(|e| format!("--d: {e}"))?,
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--gpn" => args.gpn = value("--gpn")?.parse().map_err(|e| format!("--gpn: {e}"))?,
            "--out" => args.out = value("--out")?,
            "--fault" => args.fault = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    let world = args.nodes * args.gpn;
    if world == 0 || args.seq == 0 || args.d == 0 {
        return Err("--seq, --d, --nodes and --gpn must be positive".to_string());
    }
    if !args.seq.is_multiple_of(world) {
        return Err(format!("--seq {} must divide by world {world}", args.seq));
    }
    Ok(args)
}

/// One method's run: per-rank traces plus the per-rank comm/fault counters.
struct MethodRun {
    traces: Vec<RankTrace>,
    stats: Vec<CommStats>,
    faults: Vec<FaultCounters>,
}

fn run_method(algo: Algo, topo: &Topology, seq: usize, d: usize) -> MethodRun {
    let g = topo.world_size();
    let q = randn_mat(seq, d, 0.7, 41);
    let k = randn_mat(seq, d, 0.7, 42);
    let v = randn_mat(seq, d, 0.7, 43);
    let grad_o = randn_mat(seq, d, 0.8, 44);
    let scale = 1.0 / (d as f32).sqrt();
    let mask = AttnMask::Causal;
    let cost = CostModel::a800();
    let layout = Layout::Zigzag;
    let world = World::new(topo.clone());
    let outs = world.run(|comm| {
        let idx = layout.indices(seq, g, comm.rank());
        let (ql, kl, vl, dol) = (
            q.gather_rows(&idx),
            k.gather_rows(&idx),
            v.gather_rows(&idx),
            grad_o.gather_rows(&idx),
        );
        comm.start_trace();
        run_attention(
            algo, comm, &ql, &kl, &vl, &dol, scale, &mask, layout, seq, &cost,
        );
    });
    let mut run = MethodRun {
        traces: Vec::with_capacity(g),
        stats: Vec::with_capacity(g),
        faults: Vec::with_capacity(g),
    };
    for o in outs {
        run.stats.push(o.stats);
        run.faults.push(o.faults);
        run.traces
            .push(o.trace.expect("tracing was on; world must return a trace"));
    }
    run
}

/// Fold one rank's counters and span aggregates into a fresh registry.
fn rank_registry(trace: &RankTrace, stats: &CommStats, faults: &FaultCounters) -> Registry {
    let mut reg = Registry::new();
    reg.add_counter("comm/intra_msgs", stats.intra_msgs);
    reg.add_counter("comm/inter_msgs", stats.inter_msgs);
    reg.add_counter("comm/intra_bytes", stats.intra_bytes as u64);
    reg.add_counter("comm/inter_bytes", stats.inter_bytes as u64);
    reg.add_secs("time/wait", trace.total_secs(SpanKind::Wait));
    reg.add_secs("time/compute", trace.total_secs(SpanKind::Kernel));
    let recompute: f64 = trace
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Kernel && s.name == "recompute")
        .map(|s| s.duration())
        .sum();
    reg.add_secs("time/recompute", recompute);
    reg.gauge_max("time/makespan", trace.end_time);
    reg.add_counter("faults/delays", faults.delays);
    reg.add_counter("faults/drops", faults.drops);
    reg.add_counter("faults/corruptions", faults.corruptions);
    reg.add_counter("faults/crashes", faults.crashes);
    reg.add_counter("faults/timeouts", faults.timeouts);
    reg.add_counter("faults/retries", faults.retries);
    let bounds = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2];
    for s in trace.spans.iter().filter(|s| s.kind == SpanKind::Send) {
        reg.observe("comm/send_secs", &bounds, s.duration());
    }
    reg
}

/// Merge per-rank registries in forward and reverse rank order and check
/// both orders agree — the determinism contract CI relies on.
fn merged_metrics(run: &MethodRun) -> Result<Registry, String> {
    let per_rank: Vec<Registry> = run
        .traces
        .iter()
        .zip(&run.stats)
        .zip(&run.faults)
        .map(|((t, s), f)| rank_registry(t, s, f))
        .collect();
    let mut fwd = Registry::new();
    for r in &per_rank {
        fwd.merge_from(r);
    }
    let mut rev = Registry::new();
    for r in per_rank.iter().rev() {
        rev.merge_from(r);
    }
    if fwd.to_json() != rev.to_json() {
        return Err("metrics merge is rank-order dependent".to_string());
    }
    Ok(fwd)
}

/// Crash one rank mid-ring and report how the trace layer copes: every
/// surviving timeline must still validate, with open spans force-closed
/// (and warned about) at crash time.
fn fault_demo(topo: &Topology, seq: usize, d: usize) -> Result<(), String> {
    let g = topo.world_size();
    let q = randn_mat(seq, d, 0.7, 51);
    let k = randn_mat(seq, d, 0.7, 52);
    let v = randn_mat(seq, d, 0.7, 53);
    let grad_o = randn_mat(seq, d, 0.8, 54);
    let scale = 1.0 / (d as f32).sqrt();
    let mask = AttnMask::Causal;
    let cost = CostModel::a800();
    let layout = Layout::Zigzag;
    let plan = FaultPlan::new(9).crash_at_op(1, 6);
    let world = World::with_faults(topo.clone(), plan);
    let outs = world.run_faulty(|comm| {
        let idx = layout.indices(seq, g, comm.rank());
        let (ql, kl, vl, dol) = (
            q.gather_rows(&idx),
            k.gather_rows(&idx),
            v.gather_rows(&idx),
            grad_o.gather_rows(&idx),
        );
        comm.start_trace();
        try_run_attention(
            Algo::BurstTopo,
            comm,
            &ql,
            &kl,
            &vl,
            &dol,
            scale,
            &mask,
            layout,
            seq,
            &cost,
        )
        .map(|_| ())
    });
    let mut failed = 0usize;
    let mut warnings = 0usize;
    for o in &outs {
        if o.result.is_err() {
            failed += 1;
        }
        let trace = o
            .trace
            .as_ref()
            .ok_or_else(|| format!("rank {} lost its trace across the crash", o.rank))?;
        warnings += trace.warnings.len();
        obs::validate(trace).map_err(|e| format!("faulty rank {} trace: {e}", o.rank))?;
    }
    if failed == 0 || warnings == 0 {
        return Err(format!(
            "fault demo expected failing ranks with force-closed spans, \
             got {failed} failures / {warnings} warnings"
        ));
    }
    println!(
        "fault demo: {failed}/{g} ranks failed, {warnings} spans force-closed \
         with warnings, all timelines still validate"
    );
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let topo = Topology::a800(args.nodes, args.gpn);
    let cluster = Cluster::a800(args.nodes, args.gpn);
    // The analytic predictions only mean something if both models describe
    // the same machine.
    assert_eq!(topo.intra.latency, cluster.nvlink.latency);
    assert_eq!(topo.intra.bandwidth, cluster.nvlink.bandwidth);
    assert_eq!(topo.inter.latency, cluster.nic.latency);
    assert_eq!(topo.inter.bandwidth, cluster.nic.bandwidth);

    let table1 = layer_comm_times(&cluster, args.seq, args.d);
    let methods = [
        ("ring", Algo::RingFlat, RingMethod::Ring, table1.ring),
        (
            "double_ring",
            Algo::DoubleRing,
            RingMethod::DoubleRing,
            table1.double_ring,
        ),
        ("burst", Algo::BurstTopo, RingMethod::Burst, table1.burst),
    ];

    std::fs::create_dir_all(&args.out).map_err(|e| format!("mkdir {}: {e}", args.out))?;
    let mut report = E2eReport::new(args.nodes, args.gpn, args.seq, args.d);
    let mut groups: Vec<(String, Vec<RankTrace>)> = Vec::new();
    let mut flame = String::new();
    let mut metrics = Registry::new();

    for (name, algo, ring_method, table1_secs) in methods {
        let run = run_method(algo, &topo, args.seq, args.d);
        for t in &run.traces {
            obs::validate(t).map_err(|e| format!("{name} rank {} trace: {e}", t.rank))?;
            if !t.warnings.is_empty() {
                return Err(format!(
                    "{name} rank {} left spans unclosed on a healthy run: {:?}",
                    t.rank, t.warnings
                ));
            }
        }
        let predicted = exact_wire_counts(&cluster, args.seq, args.d, ring_method).secs(&cluster);
        let m = MethodReport::from_traces(
            name,
            &run.traces,
            args.seq,
            args.d,
            cluster.peak_flops,
            predicted,
            table1_secs,
        );
        println!(
            "{name:>12}: makespan {:.6}s  overlap {:.3}  mfu {:.4}  \
             comm {:.6}s (predicted {:.6}s, rel err {:.5})",
            m.makespan_secs,
            m.overlap_efficiency,
            m.mfu,
            m.comm_measured_secs,
            m.comm_predicted_secs,
            m.comm_rel_err
        );
        if m.comm_rel_err > MAX_COMM_REL_ERR {
            return Err(format!(
                "{name}: measured comm {}s diverges from exact prediction {}s \
                 by {:.3}% (> {:.0}%)",
                m.comm_measured_secs,
                m.comm_predicted_secs,
                100.0 * m.comm_rel_err,
                100.0 * MAX_COMM_REL_ERR
            ));
        }
        report.methods.push(m);
        metrics.merge_from(&merged_metrics(&run)?);
        flame.push_str(&format!("== {name} ==\n"));
        flame.push_str(&flame_text(&run.traces));
        flame.push('\n');
        groups.push((name.to_string(), run.traces));
    }

    report
        .validate_schema()
        .map_err(|e| format!("BENCH_e2e.json schema: {e}"))?;

    let perfetto = to_perfetto_grouped(&groups);
    let perfetto_json =
        serde_json::to_string_pretty(&perfetto).map_err(|e| format!("perfetto serde: {e}"))?;
    let back: PerfettoTrace =
        serde_json::from_str(&perfetto_json).map_err(|e| format!("perfetto re-parse: {e}"))?;
    if back != perfetto {
        return Err("perfetto trace does not round-trip through serde".to_string());
    }

    write_file(&args.out, "trace.perfetto.json", &perfetto_json)?;
    let report_json =
        serde_json::to_string_pretty(&report).map_err(|e| format!("report serde: {e}"))?;
    write_file(&args.out, "BENCH_e2e.json", &report_json)?;
    let metrics_json = serde_json::to_string_pretty(&metrics.to_json())
        .map_err(|e| format!("metrics serde: {e}"))?;
    write_file(&args.out, "metrics.json", &metrics_json)?;
    write_file(&args.out, "flame.txt", &flame)?;
    print!("{flame}");
    println!(
        "wrote trace.perfetto.json, BENCH_e2e.json, metrics.json, flame.txt to {}",
        args.out
    );

    if args.fault {
        fault_demo(&topo, args.seq, args.d)?;
    }
    Ok(())
}

fn write_file(dir: &str, name: &str, content: &str) -> Result<(), String> {
    let path = std::path::Path::new(dir).join(name);
    let mut f = std::fs::File::create(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    f.write_all(content.as_bytes())
        .map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "burst-trace: {e}\nusage: burst-trace [--seq N] [--d D] \
                 [--nodes N] [--gpn G] [--out DIR] [--fault]"
            );
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("burst-trace: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
