//! `burst-trace`: run the three ring disciplines on the simulated cluster
//! and export the full observability stack — a Chrome/Perfetto timeline,
//! the plain-text flame summary, the merged metrics registry and the
//! machine-readable `BENCH_e2e.json` report.
//!
//! The harness self-validates everything it emits: every per-rank trace
//! passes the structural span checks, the Perfetto JSON round-trips
//! through serde, the metrics merge is order-independent, and on the
//! fault-free path the measured wire time must match the exact-count
//! analytic prediction from `crates/perf` within 1 % — any violation exits
//! non-zero, which is what the CI observability job keys on.
//!
//! ```text
//! cargo run -p burst-bench --bin burst-trace -- \
//!     --seq 2048 --d 64 --nodes 2 --gpn 4 --out target/burst-trace \
//!     [--fault] [--transport] [--baseline baselines/BENCH_e2e.json]
//! ```
//!
//! Every run also carries the per-rank **virtual-memory accountant**: each
//! method's ledger is validated (balanced, leak-free), its per-category
//! peak census lands in `BENCH_e2e.json`, and `mem/<category>` counter
//! tracks ride next to the span timeline in the Perfetto export — which is
//! streamed to disk through the O(step) incremental writer and checked
//! byte-identical against the buffered serialization. With `--baseline`,
//! the fresh report is gated against a committed one: a >10 % tokens/GPU/s
//! drop or a >1 % gated peak-bytes rise on any lane exits non-zero.
//!
//! A second mode compares two exported timelines span-kind by span-kind —
//! e.g. a clean run against a reliable-transport run of the same shape, to
//! see exactly where the retransmit overhead landed:
//!
//! ```text
//! cargo run -p burst-bench --bin burst-trace -- diff clean.json faulty.json
//! ```

use std::collections::BTreeMap;
use std::io::Write as _;
use std::process::ExitCode;

use burst_comm::obs::{
    self, compare_to_baseline, flame_text, mem_counter_events, to_perfetto, to_perfetto_grouped,
    validate_mem, E2eReport, MemReport, MethodReport, PerfettoTrace, RankTrace, Registry, SpanKind,
    StreamingPerfettoWriter,
};
use burst_comm::{
    CommStats, DetectorCfg, FaultCounters, FaultPlan, Topology, TransportPolicy, WireDtype, World,
};
use burst_dattn::{
    run_attention, try_run_attention, try_run_attention_opts, Algo, CostModel, Layout,
};
use burst_kernels::AttnMask;
use burst_perf::commtime::{
    exact_wire_counts, exact_wire_counts_masked_dtype, layer_comm_times, RetransCensus, RingMethod,
};
use burst_perf::Cluster;
use burst_tensor::randn_mat;

/// Measured wire time may diverge from the exact-count prediction by at
/// most this relative error on the fault-free path.
const MAX_COMM_REL_ERR: f64 = 0.01;

struct Args {
    seq: usize,
    d: usize,
    nodes: usize,
    gpn: usize,
    out: String,
    fault: bool,
    transport: bool,
    baseline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seq: 2048,
        d: 64,
        nodes: 2,
        gpn: 4,
        out: "target/burst-trace".to_string(),
        fault: false,
        transport: false,
        baseline: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--seq" => args.seq = value("--seq")?.parse().map_err(|e| format!("--seq: {e}"))?,
            "--d" => args.d = value("--d")?.parse().map_err(|e| format!("--d: {e}"))?,
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--gpn" => args.gpn = value("--gpn")?.parse().map_err(|e| format!("--gpn: {e}"))?,
            "--out" => args.out = value("--out")?,
            "--fault" => args.fault = true,
            "--transport" => args.transport = true,
            "--baseline" => args.baseline = Some(value("--baseline")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    let world = args.nodes * args.gpn;
    if world == 0 || args.seq == 0 || args.d == 0 {
        return Err("--seq, --d, --nodes and --gpn must be positive".to_string());
    }
    if !args.seq.is_multiple_of(world) {
        return Err(format!("--seq {} must divide by world {world}", args.seq));
    }
    Ok(args)
}

/// One method's run: per-rank traces plus the per-rank comm/fault counters
/// and the finished per-rank memory ledgers.
struct MethodRun {
    traces: Vec<RankTrace>,
    stats: Vec<CommStats>,
    faults: Vec<FaultCounters>,
    mem: Vec<MemReport>,
}

fn run_method(
    algo: Algo,
    topo: &Topology,
    seq: usize,
    d: usize,
    mask: &AttnMask,
    layout: Layout,
    skip: bool,
) -> MethodRun {
    let g = topo.world_size();
    let q = randn_mat(seq, d, 0.7, 41);
    let k = randn_mat(seq, d, 0.7, 42);
    let v = randn_mat(seq, d, 0.7, 43);
    let grad_o = randn_mat(seq, d, 0.8, 44);
    let scale = 1.0 / (d as f32).sqrt();
    let cost = CostModel::a800();
    let world = World::new(topo.clone());
    let outs = world.run(|comm| {
        let idx = layout.indices(seq, g, comm.rank());
        let (ql, kl, vl, dol) = (
            q.gather_rows(&idx),
            k.gather_rows(&idx),
            v.gather_rows(&idx),
            grad_o.gather_rows(&idx),
        );
        comm.start_trace();
        comm.start_mem_accounting();
        try_run_attention_opts(
            algo, comm, &ql, &kl, &vl, &dol, scale, mask, layout, seq, &cost, skip,
        )
        .expect("fault-free schedule failed");
        comm.take_mem_report().expect("accounting was on")
    });
    let mut run = MethodRun {
        traces: Vec::with_capacity(g),
        stats: Vec::with_capacity(g),
        faults: Vec::with_capacity(g),
        mem: Vec::with_capacity(g),
    };
    for o in outs {
        run.stats.push(o.stats);
        run.faults.push(o.faults);
        run.mem.push(o.result);
        run.traces
            .push(o.trace.expect("tracing was on; world must return a trace"));
    }
    run
}

/// Useful FLOPs of one attention layer pass under `mask`: the same
/// 14 · d FLOPs per (query, key) pair as `obs::causal_attn_flops`, with
/// the pair count read off the mask instead of assumed dense-causal.
fn masked_attn_flops(mask: &AttnMask, seq_len: usize, head_dim: usize) -> f64 {
    14.0 * head_dim as f64 * mask.allowed_pairs(seq_len) as f64
}

/// Fold one rank's counters and span aggregates into a fresh registry.
fn rank_registry(trace: &RankTrace, stats: &CommStats, faults: &FaultCounters) -> Registry {
    let mut reg = Registry::new();
    reg.add_counter("comm/intra_msgs", stats.intra_msgs);
    reg.add_counter("comm/inter_msgs", stats.inter_msgs);
    reg.add_counter("comm/intra_bytes", stats.intra_bytes as u64);
    reg.add_counter("comm/inter_bytes", stats.inter_bytes as u64);
    reg.add_counter("comm/rounds_skipped", stats.rounds_skipped);
    reg.add_counter("comm/wire_bytes_saved", stats.skipped_bytes as u64);
    reg.add_secs("time/wait", trace.total_secs(SpanKind::Wait));
    reg.add_secs("time/compute", trace.total_secs(SpanKind::Kernel));
    let recompute: f64 = trace
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Kernel && s.name == "recompute")
        .map(|s| s.duration())
        .sum();
    reg.add_secs("time/recompute", recompute);
    reg.gauge_max("time/makespan", trace.end_time);
    reg.add_counter("faults/delays", faults.delays);
    reg.add_counter("faults/drops", faults.drops);
    reg.add_counter("faults/corruptions", faults.corruptions);
    reg.add_counter("faults/crashes", faults.crashes);
    reg.add_counter("faults/timeouts", faults.timeouts);
    reg.add_counter("faults/retries", faults.retries);
    reg.add_counter("faults/flaps", faults.flaps);
    reg.add_counter("faults/retransmits", faults.retransmits);
    reg.add_counter("faults/healed", faults.healed);
    reg.add_counter("faults/giveups", faults.giveups);
    reg.add_counter("faults/suspicions", faults.suspicions);
    reg.add_counter("comm/retrans_msgs", stats.retrans_msgs);
    reg.add_counter("comm/retrans_bytes", stats.retrans_bytes as u64);
    let retrans: f64 = trace
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Retransmit)
        .map(|s| s.duration())
        .sum();
    reg.add_secs("time/retrans", retrans);
    let bounds = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2];
    for s in trace.spans.iter().filter(|s| s.kind == SpanKind::Send) {
        reg.observe("comm/send_secs", &bounds, s.duration());
    }
    reg
}

/// Merge per-rank registries in forward and reverse rank order and check
/// both orders agree — the determinism contract CI relies on.
fn merged_metrics(run: &MethodRun) -> Result<Registry, String> {
    let per_rank: Vec<Registry> = run
        .traces
        .iter()
        .zip(&run.stats)
        .zip(&run.faults)
        .map(|((t, s), f)| rank_registry(t, s, f))
        .collect();
    let mut fwd = Registry::new();
    for r in &per_rank {
        fwd.merge_from(r);
    }
    let mut rev = Registry::new();
    for r in per_rank.iter().rev() {
        rev.merge_from(r);
    }
    if fwd.to_json() != rev.to_json() {
        return Err("metrics merge is rank-order dependent".to_string());
    }
    Ok(fwd)
}

/// Crash one rank mid-ring and report how the trace layer copes: every
/// surviving timeline must still validate, with open spans force-closed
/// (and warned about) at crash time.
fn fault_demo(topo: &Topology, seq: usize, d: usize) -> Result<(), String> {
    let g = topo.world_size();
    let q = randn_mat(seq, d, 0.7, 51);
    let k = randn_mat(seq, d, 0.7, 52);
    let v = randn_mat(seq, d, 0.7, 53);
    let grad_o = randn_mat(seq, d, 0.8, 54);
    let scale = 1.0 / (d as f32).sqrt();
    let mask = AttnMask::Causal;
    let cost = CostModel::a800();
    let layout = Layout::Zigzag;
    let plan = FaultPlan::new(9).crash_at_op(1, 6);
    let world = World::with_faults(topo.clone(), plan);
    let outs = world.run_faulty(|comm| {
        let idx = layout.indices(seq, g, comm.rank());
        let (ql, kl, vl, dol) = (
            q.gather_rows(&idx),
            k.gather_rows(&idx),
            v.gather_rows(&idx),
            grad_o.gather_rows(&idx),
        );
        comm.start_trace();
        try_run_attention(
            Algo::BurstTopo,
            comm,
            &ql,
            &kl,
            &vl,
            &dol,
            scale,
            &mask,
            layout,
            seq,
            &cost,
        )
        .map(|_| ())
    });
    let mut failed = 0usize;
    let mut warnings = 0usize;
    for o in &outs {
        if o.result.is_err() {
            failed += 1;
        }
        let trace = o
            .trace
            .as_ref()
            .ok_or_else(|| format!("rank {} lost its trace across the crash", o.rank))?;
        warnings += trace.warnings.len();
        obs::validate(trace).map_err(|e| format!("faulty rank {} trace: {e}", o.rank))?;
    }
    if failed == 0 || warnings == 0 {
        return Err(format!(
            "fault demo expected failing ranks with force-closed spans, \
             got {failed} failures / {warnings} warnings"
        ));
    }
    println!(
        "fault demo: {failed}/{g} ranks failed, {warnings} spans force-closed \
         with warnings, all timelines still validate"
    );
    Ok(())
}

/// Run one attention pass (traced) and return the per-rank outputs next to
/// the observability state, so runs can be compared bit for bit.
#[allow(clippy::type_complexity)]
fn traced_attention(
    topo: &Topology,
    seq: usize,
    d: usize,
    plan: Option<FaultPlan>,
) -> (Vec<(Vec<f32>, Vec<f32>)>, MethodRun) {
    let g = topo.world_size();
    let q = randn_mat(seq, d, 0.7, 61);
    let k = randn_mat(seq, d, 0.7, 62);
    let v = randn_mat(seq, d, 0.7, 63);
    let grad_o = randn_mat(seq, d, 0.8, 64);
    let scale = 1.0 / (d as f32).sqrt();
    let mask = AttnMask::Causal;
    let cost = CostModel::a800();
    let layout = Layout::Zigzag;
    let world = match plan {
        Some(p) => World::with_faults(topo.clone(), p),
        None => World::new(topo.clone()),
    };
    let outs = world.run(|comm| {
        let idx = layout.indices(seq, g, comm.rank());
        let (ql, kl, vl, dol) = (
            q.gather_rows(&idx),
            k.gather_rows(&idx),
            v.gather_rows(&idx),
            grad_o.gather_rows(&idx),
        );
        comm.start_trace();
        comm.start_mem_accounting();
        let (o, lse, dq, dk, dv) = run_attention(
            Algo::BurstTopo,
            comm,
            &ql,
            &kl,
            &vl,
            &dol,
            scale,
            &mask,
            layout,
            seq,
            &cost,
        );
        let mut flat = o.as_slice().to_vec();
        flat.extend_from_slice(dq.as_slice());
        flat.extend_from_slice(dk.as_slice());
        flat.extend_from_slice(dv.as_slice());
        let mem = comm.take_mem_report().expect("accounting was on");
        ((flat, lse), mem)
    });
    let mut run = MethodRun {
        traces: Vec::with_capacity(g),
        stats: Vec::with_capacity(g),
        faults: Vec::with_capacity(g),
        mem: Vec::with_capacity(g),
    };
    let mut values = Vec::with_capacity(g);
    for o in outs {
        let (vals, mem) = o.result;
        values.push(vals);
        run.mem.push(mem);
        run.stats.push(o.stats);
        run.faults.push(o.faults);
        run.traces
            .push(o.trace.expect("tracing was on; world must return a trace"));
    }
    (values, run)
}

/// Reliable-transport demo: a seeded flap + drop + partition plan, healed
/// entirely on the wire. Asserts the heal is bit-transparent, that the
/// clean comm census is untouched by the recovery traffic, and that the
/// exact retransmit-byte census accounts for every recovery byte — then
/// exports the faulty timeline so `diff` can show the overhead.
fn transport_demo(args: &Args, topo: &Topology, cluster: &Cluster) -> Result<(), String> {
    let seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let tp = TransportPolicy::default();
    let budget = tp.min_retry_budget();
    let g = topo.world_size();
    // Seed-derived transient windows, all strictly inside the retry budget.
    let frac = |salt: u64| (seed.wrapping_mul(0x9e37_79b9).wrapping_add(salt) % 97) as f64 / 97.0;
    let w0 = 1e-5 + frac(1) * budget * 0.4;
    let w1 = 1e-5 + frac(2) * budget * 0.4;
    let split = 1 + (seed as usize % (g - 1));
    let groups: [Vec<usize>; 2] = [(0..split).collect(), (split..g).collect()];
    let group_refs: [&[usize]; 2] = [&groups[0], &groups[1]];
    let plan = FaultPlan::new(seed)
        .flap_link(0, 1 % g, 0.0, w0)
        .drop_msg(1 % g, 2 % g, 1 + seed % 3)
        .partition(&group_refs, 2.0 * budget, 2.0 * budget + w1)
        .recv_deadline(60.0)
        .reliable()
        .with_detector(DetectorCfg::default());

    let (clean_vals, clean) = traced_attention(topo, args.seq, args.d, None);
    let (healed_vals, healed) = traced_attention(topo, args.seq, args.d, Some(plan));

    for (r, (c, h)) in clean_vals.iter().zip(&healed_vals).enumerate() {
        if c != h {
            return Err(format!(
                "transport demo: rank {r} outputs are not bit-identical to the clean run"
            ));
        }
    }
    // Both ledgers must balance: the reliable transport heals on the wire
    // without leaking a single accounted buffer.
    for (label, run) in [("clean", &clean), ("healed", &healed)] {
        for m in &run.mem {
            validate_mem(m)
                .map_err(|e| format!("transport demo: {label} rank {} ledger: {e}", m.rank))?;
        }
    }
    // The clean comm census must not see the recovery traffic…
    let clean_bytes: f64 = clean.stats.iter().map(|s| s.total_bytes()).sum();
    let healed_bytes: f64 = healed.stats.iter().map(|s| s.total_bytes()).sum();
    if clean_bytes != healed_bytes {
        return Err(format!(
            "transport demo: clean byte census moved under faults \
             ({clean_bytes} vs {healed_bytes})"
        ));
    }
    // …and the retransmit census must account for every recovery byte.
    let census = RetransCensus::from_run(&healed.stats);
    let with_retrans: f64 = healed
        .stats
        .iter()
        .map(|s| s.wire_bytes_with_retrans())
        .sum();
    if with_retrans != healed_bytes + census.bytes {
        return Err(format!(
            "transport demo: retransmit census mismatch \
             ({with_retrans} != {healed_bytes} + {})",
            census.bytes
        ));
    }
    let retransmits: u64 = healed.faults.iter().map(|f| f.retransmits).sum();
    if census.msgs != retransmits || census.msgs == 0 {
        return Err(format!(
            "transport demo: {} retransmit msgs in the census, {retransmits} counted",
            census.msgs
        ));
    }
    let giveups: u64 = healed.faults.iter().map(|f| f.giveups).sum();
    let timeouts: u64 = healed.faults.iter().map(|f| f.timeouts).sum();
    let suspicions: u64 = healed.faults.iter().map(|f| f.suspicions).sum();
    if giveups + timeouts + suspicions != 0 {
        return Err(format!(
            "transport demo: a transient plan escalated \
             (giveups {giveups}, timeouts {timeouts}, suspicions {suspicions})"
        ));
    }
    // The ≤1% comm gate holds with faults on: Retransmit spans live on
    // their own lane, outside the clean wire census.
    let predicted = exact_wire_counts(cluster, args.seq, args.d, RingMethod::Burst).secs(cluster);
    let (intra, inter) = obs::wire_secs(&healed.traces);
    let measured = intra + inter;
    let rel_err = (measured - predicted).abs() / predicted;
    if rel_err > MAX_COMM_REL_ERR {
        return Err(format!(
            "transport demo: measured comm {measured}s diverges from exact \
             prediction {predicted}s by {:.3}% with faults on",
            100.0 * rel_err
        ));
    }
    let (r_intra, r_inter) = obs::retrans_secs(&healed.traces);
    let flaps: u64 = healed.faults.iter().map(|f| f.flaps).sum();
    let drops: u64 = healed.faults.iter().map(|f| f.drops).sum();
    let healed_n: u64 = healed.faults.iter().map(|f| f.healed).sum();
    println!(
        "[recovery] seed={seed} flaps={flaps} drops={drops} retransmits={retransmits} \
         healed={healed_n} giveups=0 timeouts=0 suspicions=0 \
         retrans_bytes={} retrans_secs={:.6} comm_rel_err={rel_err:.5}",
        census.bytes,
        r_intra + r_inter,
    );
    // Both timelines carry their memory counter tracks (pid = rank, the
    // ungrouped convention), so `diff` can show where the recovery bytes
    // landed — the retransmit queue lane — next to the span overhead.
    let mut faulty_trace = to_perfetto(&healed.traces);
    for m in &healed.mem {
        faulty_trace
            .traceEvents
            .extend(mem_counter_events(m, m.rank as u64));
    }
    let json =
        serde_json::to_string_pretty(&faulty_trace).map_err(|e| format!("perfetto serde: {e}"))?;
    write_file(&args.out, "trace.transport.perfetto.json", &json)?;
    let mut clean_trace = to_perfetto(&clean.traces);
    for m in &clean.mem {
        clean_trace
            .traceEvents
            .extend(mem_counter_events(m, m.rank as u64));
    }
    let clean_json =
        serde_json::to_string_pretty(&clean_trace).map_err(|e| format!("perfetto serde: {e}"))?;
    write_file(&args.out, "trace.clean.perfetto.json", &clean_json)?;
    let census_json =
        serde_json::to_string_pretty(&census).map_err(|e| format!("census serde: {e}"))?;
    write_file(&args.out, "retrans_census.json", &census_json)?;
    println!(
        "transport demo: wrote trace.transport.perfetto.json, retrans_census.json to {}",
        args.out
    );
    Ok(())
}

/// Per-span-kind `(count, total seconds)` census of an exported timeline.
fn span_census(trace: &PerfettoTrace) -> BTreeMap<String, (u64, f64)> {
    let mut census: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for e in &trace.traceEvents {
        if e.cat == "__metadata" || e.ph == "C" {
            continue;
        }
        let entry = census.entry(e.cat.clone()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += e.dur / 1e6; // µs back to seconds
    }
    census
}

/// Per-category peak-bytes census of an exported timeline's `mem/…`
/// counter tracks: the maximum sampled value of each counter across all
/// pids — i.e. the worst single rank, the same convention as
/// `peak_census`.
fn mem_peak_census(trace: &PerfettoTrace) -> BTreeMap<String, u64> {
    let mut census: BTreeMap<String, u64> = BTreeMap::new();
    for e in &trace.traceEvents {
        if e.ph != "C" || e.cat != "mem" {
            continue;
        }
        let peak = census.entry(e.name.clone()).or_insert(0);
        *peak = (*peak).max(e.args.value as u64);
    }
    census
}

/// `burst-trace diff a.json b.json`: per-span-kind count and duration
/// deltas between two exported timelines — e.g. a clean run against a
/// reliable-transport run, where the delta *is* the recovery overhead.
/// When either timeline carries memory counter tracks, a second table
/// shows the per-category peak-bytes deltas.
fn run_diff(path_a: &str, path_b: &str) -> Result<(), String> {
    let load = |path: &str| -> Result<PerfettoTrace, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: not a perfetto trace: {e}"))
    };
    let trace_a = load(path_a)?;
    let trace_b = load(path_b)?;
    let a = span_census(&trace_a);
    let b = span_census(&trace_b);
    let kinds: Vec<&String> = {
        let mut k: Vec<&String> = a.keys().chain(b.keys()).collect();
        k.sort_unstable();
        k.dedup();
        k
    };
    println!(
        "{:<14} {:>8} {:>8} {:>7}  {:>12} {:>12} {:>12}",
        "span", "n(a)", "n(b)", "Δn", "secs(a)", "secs(b)", "Δsecs"
    );
    let (mut da, mut db) = ((0u64, 0.0f64), (0u64, 0.0f64));
    for kind in kinds {
        let (na, sa) = a.get(kind).copied().unwrap_or((0, 0.0));
        let (nb, sb) = b.get(kind).copied().unwrap_or((0, 0.0));
        da.0 += na;
        da.1 += sa;
        db.0 += nb;
        db.1 += sb;
        println!(
            "{kind:<14} {na:>8} {nb:>8} {:>+7}  {sa:>12.6} {sb:>12.6} {:>+12.6}",
            nb as i64 - na as i64,
            sb - sa,
        );
    }
    println!(
        "{:<14} {:>8} {:>8} {:>+7}  {:>12.6} {:>12.6} {:>+12.6}",
        "total",
        da.0,
        db.0,
        db.0 as i64 - da.0 as i64,
        da.1,
        db.1,
        db.1 - da.1,
    );
    let ma = mem_peak_census(&trace_a);
    let mb = mem_peak_census(&trace_b);
    if !ma.is_empty() || !mb.is_empty() {
        let lanes: Vec<&String> = {
            let mut k: Vec<&String> = ma.keys().chain(mb.keys()).collect();
            k.sort_unstable();
            k.dedup();
            k
        };
        println!();
        println!(
            "{:<18} {:>14} {:>14} {:>15}",
            "peak", "bytes(a)", "bytes(b)", "Δbytes"
        );
        let (mut ta, mut tb) = (0u64, 0u64);
        for lane in lanes {
            let pa = ma.get(lane).copied().unwrap_or(0);
            let pb = mb.get(lane).copied().unwrap_or(0);
            ta += pa;
            tb += pb;
            println!(
                "{lane:<18} {pa:>14} {pb:>14} {:>+15}",
                pb as i64 - pa as i64
            );
        }
        println!(
            "{:<18} {ta:>14} {tb:>14} {:>+15}",
            "total",
            tb as i64 - ta as i64
        );
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let topo = Topology::a800(args.nodes, args.gpn);
    let cluster = Cluster::a800(args.nodes, args.gpn);
    // The analytic predictions only mean something if both models describe
    // the same machine.
    assert_eq!(topo.intra.latency, cluster.nvlink.latency);
    assert_eq!(topo.intra.bandwidth, cluster.nvlink.bandwidth);
    assert_eq!(topo.inter.latency, cluster.nic.latency);
    assert_eq!(topo.inter.bandwidth, cluster.nic.bandwidth);

    let table1 = layer_comm_times(&cluster, args.seq, args.d);
    /// One row of the report: a schedule run either dense (causal mask,
    /// zigzag layout, no skipping — the legacy configuration) or masked
    /// (sliding window over the contiguous layout with round skipping on,
    /// the skip-rich configuration the sparsity gates police).
    struct Row {
        name: &'static str,
        algo: Algo,
        method: RingMethod,
        table1_secs: f64,
        mask: AttnMask,
        layout: Layout,
        skip: bool,
    }
    let window = AttnMask::SlidingWindow {
        window: (args.seq / 4).max(1),
    };
    let dense_row = |name, algo, method, table1_secs| Row {
        name,
        algo,
        method,
        table1_secs,
        mask: AttnMask::Causal,
        layout: Layout::Zigzag,
        skip: false,
    };
    let masked_row = |name, algo, method, table1_secs| Row {
        name,
        algo,
        method,
        table1_secs,
        mask: window.clone(),
        layout: Layout::Contiguous,
        skip: true,
    };
    let rows = [
        dense_row("ring", Algo::RingFlat, RingMethod::Ring, table1.ring),
        dense_row(
            "double_ring",
            Algo::DoubleRing,
            RingMethod::DoubleRing,
            table1.double_ring,
        ),
        dense_row("burst", Algo::BurstTopo, RingMethod::Burst, table1.burst),
        masked_row("ring_masked", Algo::RingFlat, RingMethod::Ring, table1.ring),
        masked_row(
            "double_ring_masked",
            Algo::DoubleRing,
            RingMethod::DoubleRing,
            table1.double_ring,
        ),
        masked_row(
            "burst_masked",
            Algo::BurstTopo,
            RingMethod::Burst,
            table1.burst,
        ),
    ];

    std::fs::create_dir_all(&args.out).map_err(|e| format!("mkdir {}: {e}", args.out))?;
    let mut report = E2eReport::new(args.nodes, args.gpn, args.seq, args.d);
    let mut groups: Vec<(String, Vec<RankTrace>)> = Vec::new();
    let mut mem_groups: Vec<Vec<MemReport>> = Vec::new();
    let mut flame = String::new();
    let mut metrics = Registry::new();

    for row in rows {
        let name = row.name;
        let run = run_method(
            row.algo, &topo, args.seq, args.d, &row.mask, row.layout, row.skip,
        );
        for t in &run.traces {
            obs::validate(t).map_err(|e| format!("{name} rank {} trace: {e}", t.rank))?;
            if !t.warnings.is_empty() {
                return Err(format!(
                    "{name} rank {} left spans unclosed on a healthy run: {:?}",
                    t.rank, t.warnings
                ));
            }
        }
        for m in &run.mem {
            validate_mem(m).map_err(|e| format!("{name} rank {} ledger: {e}", m.rank))?;
            if !m.warnings.is_empty() || m.live_at_close != 0 {
                return Err(format!(
                    "{name} rank {} leaked {} B on a healthy run: {:?}",
                    m.rank, m.live_at_close, m.warnings
                ));
            }
        }
        let predicted = if row.skip {
            exact_wire_counts_masked_dtype(
                &cluster,
                args.seq,
                args.d,
                row.method,
                WireDtype::F32,
                &row.mask,
                row.layout,
                None,
                true,
            )
            .counts
            .secs(&cluster)
        } else {
            exact_wire_counts(&cluster, args.seq, args.d, row.method).secs(&cluster)
        };
        let rounds_skipped: u64 = run.stats.iter().map(|s| s.rounds_skipped).sum();
        let bytes_saved: f64 = run.stats.iter().map(|s| s.skipped_bytes).sum();
        let mut m = MethodReport::from_traces(
            name,
            &run.traces,
            args.seq,
            args.d,
            cluster.peak_flops,
            predicted,
            row.table1_secs,
        )
        .with_mem(&run.mem)
        .with_skips(rounds_skipped, bytes_saved);
        // MFU against the FLOPs the mask actually allows — `from_traces`
        // assumes dense-causal, which overstates useful work under a
        // window (identical for the causal rows).
        m.mfu = obs::mfu(
            masked_attn_flops(&row.mask, args.seq, args.d),
            m.makespan_secs,
            m.world,
            cluster.peak_flops,
        );
        if row.skip {
            // The sparsity gates: a masked row that skips nothing is
            // vacuous, and whatever it did skip must reconstruct the
            // dense wire census to the byte when added back.
            if m.rounds_skipped == 0 || m.wire_bytes_saved <= 0.0 {
                return Err(format!(
                    "{name}: masked run elided no rounds — the skip path is vacuous"
                ));
            }
            let dense = exact_wire_counts(&cluster, args.seq, args.d, row.method);
            let measured_bytes: f64 = run.stats.iter().map(|s| s.total_bytes()).sum();
            if measured_bytes + m.wire_bytes_saved != dense.intra_bytes + dense.inter_bytes {
                return Err(format!(
                    "{name}: measured {measured_bytes} B + saved {} B do not reconstruct \
                     the dense census {} B",
                    m.wire_bytes_saved,
                    dense.intra_bytes + dense.inter_bytes
                ));
            }
        } else if m.rounds_skipped != 0 || m.wire_bytes_saved != 0.0 {
            return Err(format!("{name}: dense run billed phantom skips"));
        }
        println!(
            "{name:>18}: makespan {:.6}s  overlap {:.3}  mfu {:.4}  \
             comm {:.6}s (predicted {:.6}s, rel err {:.5})  peak {:.3} MB gated  \
             skipped {} rounds / {:.3} MB saved",
            m.makespan_secs,
            m.overlap_efficiency,
            m.mfu,
            m.comm_measured_secs,
            m.comm_predicted_secs,
            m.comm_rel_err,
            m.peak.gated_total as f64 / 1e6,
            m.rounds_skipped,
            m.wire_bytes_saved / 1e6,
        );
        if m.comm_rel_err > MAX_COMM_REL_ERR {
            return Err(format!(
                "{name}: measured comm {}s diverges from exact prediction {}s \
                 by {:.3}% (> {:.0}%)",
                m.comm_measured_secs,
                m.comm_predicted_secs,
                100.0 * m.comm_rel_err,
                100.0 * MAX_COMM_REL_ERR
            ));
        }
        report.methods.push(m);
        metrics.merge_from(&merged_metrics(&run)?);
        flame.push_str(&format!("== {name} ==\n"));
        flame.push_str(&flame_text(&run.traces));
        flame.push('\n');
        groups.push((name.to_string(), run.traces));
        mem_groups.push(run.mem);
    }

    report
        .validate_schema()
        .map_err(|e| format!("BENCH_e2e.json schema: {e}"))?;

    let mut perfetto = to_perfetto_grouped(&groups);
    // Memory counter tracks ride next to each method's span timeline on
    // the same pid grid (`pid = group * 100 + rank`).
    for (g, mems) in mem_groups.iter().enumerate() {
        for m in mems {
            perfetto
                .traceEvents
                .extend(mem_counter_events(m, (g as u64) * 100 + m.rank as u64));
        }
    }
    let perfetto_json =
        serde_json::to_string_pretty(&perfetto).map_err(|e| format!("perfetto serde: {e}"))?;
    let back: PerfettoTrace =
        serde_json::from_str(&perfetto_json).map_err(|e| format!("perfetto re-parse: {e}"))?;
    if back != perfetto {
        return Err("perfetto trace does not round-trip through serde".to_string());
    }

    // The timeline goes to disk through the O(step) streaming writer; the
    // buffered serialization above only exists to prove — on every single
    // run — that the streamed document is byte-identical to it.
    let high_water = stream_trace_file(&args.out, "trace.perfetto.json", &perfetto)?;
    let streamed_path = std::path::Path::new(&args.out).join("trace.perfetto.json");
    let streamed = std::fs::read_to_string(&streamed_path)
        .map_err(|e| format!("{}: {e}", streamed_path.display()))?;
    if streamed != perfetto_json {
        return Err(
            "streamed perfetto export diverges from the buffered serialization".to_string(),
        );
    }
    println!(
        "streaming export: {} events, {} B document, {high_water} B writer high-water",
        perfetto.traceEvents.len(),
        perfetto_json.len(),
    );
    let report_json =
        serde_json::to_string_pretty(&report).map_err(|e| format!("report serde: {e}"))?;
    write_file(&args.out, "BENCH_e2e.json", &report_json)?;
    let metrics_json = serde_json::to_string_pretty(&metrics.to_json())
        .map_err(|e| format!("metrics serde: {e}"))?;
    write_file(&args.out, "metrics.json", &metrics_json)?;
    write_file(&args.out, "flame.txt", &flame)?;
    print!("{flame}");
    println!(
        "wrote trace.perfetto.json, BENCH_e2e.json, metrics.json, flame.txt to {}",
        args.out
    );

    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let baseline: E2eReport =
            serde_json::from_str(&text).map_err(|e| format!("{path}: not an e2e report: {e}"))?;
        let violations = compare_to_baseline(&report, &baseline);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("baseline regression: {v}");
            }
            return Err(format!(
                "{} perf-trajectory violation(s) against {path}",
                violations.len()
            ));
        }
        println!(
            "baseline gate: ok — {} methods within bands against {path}",
            report.methods.len()
        );
    }

    if args.fault {
        fault_demo(&topo, args.seq, args.d)?;
    }
    if args.transport {
        if topo.world_size() < 2 {
            return Err("--transport needs a world of at least 2 ranks".to_string());
        }
        transport_demo(args, &topo, &cluster)?;
    }
    Ok(())
}

/// Stream a Perfetto trace to `dir/name` event by event (O(step) resident
/// memory). Returns the writer's high-water mark in bytes.
fn stream_trace_file(dir: &str, name: &str, trace: &PerfettoTrace) -> Result<usize, String> {
    let path = std::path::Path::new(dir).join(name);
    let file = std::fs::File::create(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut w = StreamingPerfettoWriter::pretty(std::io::BufWriter::new(file));
    for e in &trace.traceEvents {
        w.write_event(e)
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let high_water = w.high_water_bytes();
    w.finish().map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(high_water)
}

fn write_file(dir: &str, name: &str, content: &str) -> Result<(), String> {
    let path = std::path::Path::new(dir).join(name);
    let mut f = std::fs::File::create(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    f.write_all(content.as_bytes())
        .map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("diff") {
        return match &argv[1..] {
            [a, b] => match run_diff(a, b) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("burst-trace: diff: {e}");
                    ExitCode::FAILURE
                }
            },
            _ => {
                eprintln!("usage: burst-trace diff <a.perfetto.json> <b.perfetto.json>");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "burst-trace: {e}\nusage: burst-trace [--seq N] [--d D] \
                 [--nodes N] [--gpn G] [--out DIR] [--fault] [--transport] \
                 [--baseline FILE] | burst-trace diff <a.json> <b.json>"
            );
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("burst-trace: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
