//! Regenerate every figure and table of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p burst-bench --bin tables            # everything
//! cargo run --release -p burst-bench --bin tables -- fig12   # one item
//! ```
//!
//! Paper-scale rows come from the analytical models of `burst-perf`
//! (machine constants of the A800 testbed); small-scale cross-checks run
//! the executable cluster simulator. Paper-reported values are printed
//! alongside for comparison — see EXPERIMENTS.md for the full
//! paper-vs-model record.

use burst_comm::{Topology, World};
use burst_dattn::{run_attention, Algo, CostModel, Layout};
use burst_kernels::AttnMask;
use burst_perf::commtime;
use burst_perf::endtoend::{attention_only, evaluate, evaluate_intra_node_cp, BurstOpts, Method};
use burst_perf::flops;
use burst_perf::machine::{Cluster, PaperModel};
use burst_perf::memory::{ckpt_bytes_per_layer, lm_head_bytes, CkptKind, LmHeadKind};
use burst_tensor::randn_mat;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = arg == "all";
    if all || arg == "fig2" {
        fig2();
    }
    if all || arg == "tab1" {
        tab1();
    }
    if all || arg == "fig6" {
        fig6();
    }
    if all || arg == "fig7" {
        fig7();
    }
    if all || arg == "fig8" {
        fig8();
    }
    if all || arg == "fig12" || arg == "fig13" {
        fig12_13();
    }
    if all || arg == "fig14" {
        fig14();
    }
    if all || arg == "tab2" {
        tab2();
    }
    if all || arg == "tab3" {
        tab3();
    }
    if all || arg == "tab4" {
        tab4();
    }
    if all || arg == "tab5" {
        tab5();
    }
}

fn header(title: &str) {
    println!("\n==== {title} ====");
}

/// Fig. 2: share of compute time spent in attention vs sequence length.
fn fig2() {
    header("Figure 2: attention share of end-to-end compute (7B model)");
    let c = Cluster::a800(4, 8);
    let m = PaperModel::llama_7b();
    println!("{:>10}  {:>14}", "seq", "attention %");
    for exp in [15usize, 16, 17, 18, 19, 20] {
        let n = 1usize << exp;
        let f = flops::attention_time_fraction(&c, &m, n);
        println!("{:>10}  {:>13.1}%", fmt_tokens(n), f * 100.0);
    }
    println!("paper: attention dominates beyond 128K, ~90% at 1M");
}

/// Table 1: communication time formulas, evaluated on the testbed.
fn tab1() {
    header("Table 1: per-layer attention communication time (fwd+bwd)");
    let m = PaperModel::llama_14b();
    println!(
        "{:>8} {:>8}  {:>12} {:>12} {:>12}  {:>12}",
        "nodes", "seq", "Ring", "DoubleRing", "Burst", "Ring/Burst"
    );
    for nodes in [2usize, 4, 8] {
        let c = Cluster::a800(nodes, 8);
        for exp in [19usize, 20, 21] {
            let n = 1usize << exp;
            let t = commtime::layer_comm_times(&c, n, m.d_model);
            println!(
                "{:>8} {:>8}  {:>11.1}ms {:>11.1}ms {:>11.1}ms  {:>11.2}x",
                nodes,
                fmt_tokens(n),
                t.ring * 1e3,
                t.double_ring * 1e3,
                t.burst * 1e3,
                t.ring / t.burst
            );
        }
    }
    println!("paper: Burst < DoubleRing < Ring whenever B_intra > B_inter");
}

/// Fig. 6: the sequence-level selective checkpointing split-point sweep —
/// the trade-off the paper's ρ = 0.5 choice sits on.
fn fig6() {
    header("Figure 6: seq-selective checkpointing split point (14B @ 1M, 32 GPUs)");
    let c = Cluster::a800(4, 8);
    let m = PaperModel::llama_14b();
    println!("{:>6}  {:>9} {:>8} {:>9}", "rho", "TGS", "MFU", "mem");
    for (rho, e) in burst_perf::endtoend::rho_sweep(&c, &m, &AttnMask::Causal, 1 << 20, 8) {
        println!(
            "{:>6.3}  {:>9.2} {:>7.2}% {:>8.2}G",
            rho,
            e.tgs,
            e.mfu * 100.0,
            e.mem_gb
        );
    }
    println!("paper: rho=0.5 balances the +14% speedup against ++'s memory");
}

/// Fig. 7: checkpointing memory per strategy vs sequence length.
fn fig7() {
    header("Figure 7: gradient-checkpointing memory (14B, 32 GPUs)");
    let m = PaperModel::llama_14b();
    println!(
        "{:>8}  {:>10} {:>12} {:>14} {:>10}",
        "seq", "full", "seq-sel(0.5)", "selective++", "none"
    );
    for exp in [16usize, 17, 18, 19, 20] {
        let n = 1usize << exp;
        let local = n as f64 / 32.0;
        let gb = |k: CkptKind| m.layers as f64 * ckpt_bytes_per_layer(&m, local, k) / 1e9;
        println!(
            "{:>8}  {:>9.2}G {:>11.2}G {:>13.2}G {:>9.1}G",
            fmt_tokens(n),
            gb(CkptKind::Full),
            gb(CkptKind::SeqSelective { rho: 0.5 }),
            gb(CkptKind::SelectivePP),
            gb(CkptKind::None),
        );
    }
    println!("paper: seq-selective halves selective++'s extra storage");
}

/// Fig. 8: LM-head logits memory, LLaMA-1/2 vs LLaMA-3 vocabulary.
fn fig8() {
    header("Figure 8: LM-head logits memory vs sequence length");
    println!(
        "{:>8}  {:>14} {:>14} {:>12}",
        "seq", "LLaMA-2 (32K)", "LLaMA-3 (128K)", "fused (128K)"
    );
    let l2 = PaperModel::llama_7b();
    let l3 = PaperModel::llama3_8b();
    for exp in [13usize, 15, 17, 19, 20] {
        let n = (1usize << exp) as f64;
        println!(
            "{:>8}  {:>13.2}G {:>13.2}G {:>11.3}G",
            fmt_tokens(1 << exp),
            lm_head_bytes(&l2, n, LmHeadKind::Chunked) / 1e9,
            lm_head_bytes(&l3, n, LmHeadKind::Chunked) / 1e9,
            lm_head_bytes(&l3, n, LmHeadKind::Fused) / 1e9,
        );
    }
    println!("paper: memory grows linearly in N and 4x with the 128K vocabulary");
}

/// Figs. 12 + 13: end-to-end TGS/MFU and peak memory, all methods.
fn fig12_13() {
    header("Figures 12-13: end-to-end training (TGS / MFU / peak GB)");
    let causal = AttnMask::Causal;
    let settings = [
        (
            "7B @ 2M, 32 GPUs",
            PaperModel::llama_7b(),
            2usize << 20,
            4usize,
        ),
        ("14B @ 1M, 32 GPUs", PaperModel::llama_14b(), 1 << 20, 4),
        ("7B @ 4M, 64 GPUs", PaperModel::llama_7b(), 4 << 20, 8),
        ("14B @ 2M, 64 GPUs", PaperModel::llama_14b(), 2 << 20, 8),
    ];
    for (name, model, seq, nodes) in settings {
        let c = Cluster::a800(nodes, 8);
        println!("-- {name} --");
        for method in Method::all() {
            match evaluate(&method, &c, &model, &causal, seq) {
                Ok(e) => println!(
                    "  {:<22} TGS {:>8.2}   MFU {:>5.1}%   mem {:>6.2} GB",
                    method.name(),
                    e.tgs,
                    e.mfu * 100.0,
                    e.mem_gb
                ),
                Err(err) => println!("  {:<22} {err}", method.name()),
            }
        }
    }
    println!("paper: BurstEngine 1.19x/1.15x over USP at 32 GPUs; lowest memory;");
    println!("       only BurstEngine completes the 64-GPU settings");
}

/// Fig. 14: attention-only time vs sequence length (model) plus a
/// small-scale simulator cross-check of the ordering.
fn fig14() {
    header("Figure 14: distributed attention fwd+bwd time (14B config, 32 GPUs)");
    let c = Cluster::a800(4, 8);
    let m = PaperModel::llama_14b();
    let causal = AttnMask::Causal;
    let methods = [
        Method::MegatronCp,
        Method::DeepSpeedUlysses,
        Method::LoongTrainDoubleRing,
        Method::LoongTrainUsp,
        Method::BurstEngine(BurstOpts::full()),
    ];
    print!("{:>8}", "seq");
    for method in &methods {
        print!("  {:>21}", method.name());
    }
    println!();
    for exp in [17usize, 18, 19, 20] {
        let n = 1usize << exp;
        print!("{:>8}", fmt_tokens(n));
        for method in &methods {
            match attention_only(method, &c, &m, &causal, n) {
                Ok(t) => print!("  {:>20.1}ms", t * 1e3),
                Err(e) => print!("  {:>21}", format!("{e}")),
            }
        }
        println!();
    }
    println!("paper: Burst 1.05x over USP, 1.33x over DoubleRing at 1M;");
    println!("       Megatron-CP OOM beyond 256K");

    // Simulator cross-check: measured virtual time at reduced scale.
    println!("\n  simulator cross-check (2x4 simulated GPUs, 64x16 shards):");
    let topo = Topology::a800(2, 4);
    let mask = AttnMask::Causal;
    let (n, d) = (64usize, 16usize);
    let q = randn_mat(n, d, 0.7, 1);
    let k = randn_mat(n, d, 0.7, 2);
    let v = randn_mat(n, d, 0.7, 3);
    let go = randn_mat(n, d, 0.8, 4);
    for algo in [Algo::RingFlat, Algo::DoubleRing, Algo::BurstTopo] {
        let world = World::new(topo.clone());
        let (_, makespan, _) = world.run_timed(|comm| {
            let idx = Layout::Zigzag.indices(n, 8, comm.rank());
            run_attention(
                algo,
                comm,
                &q.gather_rows(&idx),
                &k.gather_rows(&idx),
                &v.gather_rows(&idx),
                &go.gather_rows(&idx),
                1.0 / (d as f32).sqrt(),
                &mask,
                Layout::Zigzag,
                n,
                &CostModel::free(),
            );
        });
        println!(
            "    {algo:?}: {:.2} us (virtual, comm-bound)",
            makespan * 1e6
        );
    }
}

/// Table 2: the ablation study.
fn tab2() {
    header("Table 2: BurstEngine ablation (14B @ 1M, 32 GPUs)");
    let c = Cluster::a800(4, 8);
    let m = PaperModel::llama_14b();
    let causal = AttnMask::Causal;
    let rows: Vec<(&str, BurstOpts, (f64, f64, f64))> = vec![
        (
            "none (baseline)",
            BurstOpts::baseline(),
            (36.75, 83.79, 48.47),
        ),
        (
            "+ backward comm opt",
            BurstOpts {
                backward_opt: true,
                ..BurstOpts::baseline()
            },
            (38.37, 87.48, 49.31),
        ),
        (
            "+ topo-aware ring",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                ..BurstOpts::baseline()
            },
            (41.69, 95.06, 48.97),
        ),
        (
            "+ fused LM head",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                fused_lm_head: true,
                ckpt: CkptKind::Full,
            },
            (41.58, 94.81, 41.45),
        ),
        (
            "+ seq-selective ckpt",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                fused_lm_head: true,
                ckpt: CkptKind::SeqSelective { rho: 0.5 },
            },
            (47.72, 108.82, 45.93),
        ),
        (
            "selective++ instead",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                fused_lm_head: true,
                ckpt: CkptKind::SelectivePP,
            },
            (51.68, 117.83, 53.91),
        ),
    ];
    println!(
        "{:<22} {:>9} {:>9} {:>9}   {:>9} {:>9} {:>9}",
        "configuration", "MFU", "TGS", "mem", "paperMFU", "paperTGS", "paperGB"
    );
    for (name, opts, (p_mfu, p_tgs, p_mem)) in rows {
        let e = evaluate(&Method::BurstEngine(opts), &c, &m, &causal, 1 << 20).unwrap();
        println!(
            "{:<22} {:>8.2}% {:>9.2} {:>8.2}G   {:>8.2}% {:>9.2} {:>8.2}G",
            name,
            e.mfu * 100.0,
            e.tgs,
            e.mem_gb,
            p_mfu,
            p_tgs,
            p_mem
        );
    }
}

/// Table 3: sparse-attention workload balance.
fn tab3() {
    header("Table 3: sparse attention integration (14B @ 1M, 32 GPUs)");
    let c = Cluster::a800(4, 8);
    let m = PaperModel::llama_14b();
    let burst = Method::BurstEngine(BurstOpts::full());
    let masking = evaluate(&burst, &c, &m, &AttnMask::Full, 1 << 20).unwrap();
    let causal = evaluate(&burst, &c, &m, &AttnMask::Causal, 1 << 20).unwrap();
    let swa = evaluate(
        &burst,
        &c,
        &m,
        &AttnMask::SlidingWindow { window: 32 << 10 },
        1 << 20,
    )
    .unwrap();
    println!(
        "{:<22} {:>9} {:>9}   {:>14}",
        "implementation", "TGS", "speedup", "paper speedup"
    );
    println!(
        "{:<22} {:>9.2} {:>8.2}x   {:>13.2}x",
        "attention masking", masking.tgs, 1.0, 1.0
    );
    println!(
        "{:<22} {:>9.2} {:>8.2}x   {:>13.2}x",
        "causal (zigzag)",
        causal.tgs,
        causal.tgs / masking.tgs,
        1.72
    );
    println!(
        "{:<22} {:>9.2} {:>8.2}x   {:>13.2}x",
        "SWA 32K (block)",
        swa.tgs,
        swa.tgs / masking.tgs,
        3.68
    );
    println!("note: the model realises more of SWA's theoretical saving than the");
    println!("      paper's kernels (see EXPERIMENTS.md)");

    // Simulator cross-check: measured makespans under a compute-bound model.
    println!("\n  simulator cross-check (8 simulated GPUs, 64-token sequence):");
    let topo = Topology::single_node(8);
    let (n, d) = (64usize, 8usize);
    let q = randn_mat(n, d, 0.7, 11);
    let k = randn_mat(n, d, 0.7, 12);
    let v = randn_mat(n, d, 0.7, 13);
    let go = randn_mat(n, d, 0.8, 14);
    let cost = CostModel {
        peak_flops: 1e8,
        efficiency: 1.0,
    };
    let mut base = 0.0;
    for (name, mask, layout) in [
        ("masking (full)", AttnMask::Full, Layout::Contiguous),
        ("causal zigzag", AttnMask::Causal, Layout::Zigzag),
        (
            "SWA striped",
            AttnMask::SlidingWindow { window: 16 },
            Layout::Striped,
        ),
    ] {
        let world = World::new(topo.clone());
        let (_, makespan, _) = world.run_timed(|comm| {
            let idx = layout.indices(n, 8, comm.rank());
            run_attention(
                Algo::BurstFlat,
                comm,
                &q.gather_rows(&idx),
                &k.gather_rows(&idx),
                &v.gather_rows(&idx),
                &go.gather_rows(&idx),
                1.0 / (d as f32).sqrt(),
                &mask,
                layout,
                n,
                &cost,
            );
        });
        if base == 0.0 {
            base = makespan;
        }
        println!(
            "    {:<16} {:>8.2} us  ({:.2}x)",
            name,
            makespan * 1e6,
            base / makespan
        );
    }
}

/// Table 4: inter-node scalability.
fn tab4() {
    header("Table 4: inter-node scaling (14B, 32K tokens/GPU)");
    let m = PaperModel::llama_14b();
    let causal = AttnMask::Causal;
    let paper = [
        (2usize, 53.1, 223.25, 63.13),
        (4, 53.2, 118.36, 53.96),
        (8, 52.7, 60.49, 50.96),
    ];
    println!(
        "{:>6} {:>8}  {:>7} {:>9} {:>8}   {:>8} {:>9} {:>8}",
        "nodes", "seq", "MFU", "TGS", "mem", "paperMFU", "paperTGS", "paperGB"
    );
    for (nodes, p_mfu, p_tgs, p_mem) in paper {
        let c = Cluster::a800(nodes, 8);
        let n = 32768 * c.world();
        let e = evaluate(&Method::BurstEngine(BurstOpts::full()), &c, &m, &causal, n).unwrap();
        println!(
            "{:>6} {:>8}  {:>6.1}% {:>9.2} {:>7.2}G   {:>7.1}% {:>9.2} {:>7.2}G",
            nodes,
            fmt_tokens(n),
            e.mfu * 100.0,
            e.tgs,
            e.mem_gb,
            p_mfu,
            p_tgs,
            p_mem
        );
    }
}

/// Table 5: intra-node context-parallel scaling.
fn tab5() {
    header("Table 5: intra-node CP scaling (14B, 32K tokens/GPU, 8 GPUs)");
    let m = PaperModel::llama_14b();
    let causal = AttnMask::Causal;
    let paper = [
        (1usize, 47.34, 1201.14, 57.71),
        (2, 48.85, 928.24, 55.18),
        (4, 50.55, 639.43, 55.58),
        (8, 51.90, 393.44, 53.56),
    ];
    println!(
        "{:>4} {:>8}  {:>7} {:>9} {:>8}   {:>8} {:>9} {:>8}",
        "CP", "seq", "MFU", "TGS", "mem", "paperMFU", "paperTGS", "paperGB"
    );
    for (cp, p_mfu, p_tgs, p_mem) in paper {
        let e = evaluate_intra_node_cp(8, cp, &m, &causal, 32768, BurstOpts::full()).unwrap();
        println!(
            "{:>4} {:>8}  {:>6.1}% {:>9.2} {:>7.2}G   {:>7.1}% {:>9.2} {:>7.2}G",
            cp,
            fmt_tokens(32768 * cp),
            e.mfu * 100.0,
            e.tgs,
            e.mem_gb,
            p_mfu,
            p_tgs,
            p_mem
        );
    }
}

fn fmt_tokens(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{}M", n >> 20)
    } else {
        format!("{}K", n >> 10)
    }
}
