//! Export every model-evaluated experiment as one JSON document (for
//! plotting / downstream analysis):
//!
//! ```text
//! cargo run --release -p burst-bench --bin export_json > results.json
//! ```

use burst_kernels::AttnMask;
use burst_perf::endtoend::{attention_only, evaluate, rho_sweep, BurstOpts, Method};
use burst_perf::machine::{Cluster, PaperModel};
use burst_perf::memory::{ckpt_bytes_per_layer, lm_head_bytes, CkptKind, LmHeadKind};
use burst_perf::{commtime, flops};
use serde_json::{json, Value};

fn method_row(method: &Method, c: &Cluster, m: &PaperModel, seq: usize) -> Value {
    match evaluate(method, c, m, &AttnMask::Causal, seq) {
        Ok(e) => json!({
            "method": method.name(),
            "tgs": e.tgs,
            "mfu": e.mfu,
            "mem_gb": e.mem_gb,
            "step_time_s": e.step_time,
            "comm_exposed_s": e.comm_exposed,
        }),
        Err(err) => json!({
            "method": method.name(),
            "infeasible": format!("{err}"),
        }),
    }
}

fn main() {
    let c32 = Cluster::a800(4, 8);
    let c64 = Cluster::a800(8, 8);
    let m7 = PaperModel::llama_7b();
    let m14 = PaperModel::llama_14b();

    let fig2: Vec<Value> = (15..=20)
        .map(|e| {
            let n = 1usize << e;
            json!({
                "seq": n,
                "attention_share": flops::attention_time_fraction(&c32, &m7, n),
            })
        })
        .collect();

    let tab1: Vec<Value> = [2usize, 4, 8]
        .iter()
        .flat_map(|&nodes| {
            let c = Cluster::a800(nodes, 8);
            [19usize, 20, 21].iter().map(move |&e| {
                let t = commtime::layer_comm_times(&c, 1 << e, m14.d_model);
                json!({
                    "nodes": nodes,
                    "seq": 1usize << e,
                    "ring_s": t.ring,
                    "double_ring_s": t.double_ring,
                    "burst_s": t.burst,
                })
            })
        })
        .collect();

    let fig6: Vec<Value> = rho_sweep(&c32, &m14, &AttnMask::Causal, 1 << 20, 10)
        .into_iter()
        .map(|(rho, e)| json!({"rho": rho, "tgs": e.tgs, "mfu": e.mfu, "mem_gb": e.mem_gb}))
        .collect();

    let fig7: Vec<Value> = (16..=20)
        .map(|e| {
            let local = (1u64 << e) as f64 / 32.0;
            json!({
                "seq": 1u64 << e,
                "full_gb": m14.layers as f64 * ckpt_bytes_per_layer(&m14, local, CkptKind::Full) / 1e9,
                "seq_selective_gb": m14.layers as f64
                    * ckpt_bytes_per_layer(&m14, local, CkptKind::SeqSelective { rho: 0.5 }) / 1e9,
                "selective_pp_gb": m14.layers as f64
                    * ckpt_bytes_per_layer(&m14, local, CkptKind::SelectivePP) / 1e9,
                "none_gb": m14.layers as f64 * ckpt_bytes_per_layer(&m14, local, CkptKind::None) / 1e9,
            })
        })
        .collect();

    let fig8: Vec<Value> = [13usize, 15, 17, 19, 20]
        .iter()
        .map(|&e| {
            let n = (1usize << e) as f64;
            json!({
                "seq": 1usize << e,
                "llama2_gb": lm_head_bytes(&m7, n, LmHeadKind::Chunked) / 1e9,
                "llama3_gb": lm_head_bytes(&PaperModel::llama3_8b(), n, LmHeadKind::Chunked) / 1e9,
                "fused_gb": lm_head_bytes(&PaperModel::llama3_8b(), n, LmHeadKind::Fused) / 1e9,
            })
        })
        .collect();

    let fig12: Vec<Value> = [
        ("7B@2M/32", &m7, 2usize << 20, &c32),
        ("14B@1M/32", &m14, 1 << 20, &c32),
        ("7B@4M/64", &m7, 4 << 20, &c64),
        ("14B@2M/64", &m14, 2 << 20, &c64),
    ]
    .into_iter()
    .map(|(name, m, seq, c)| {
        json!({
            "setting": name,
            "methods": Method::all().iter().map(|mm| method_row(mm, c, m, seq)).collect::<Vec<_>>(),
        })
    })
    .collect();

    let fig14: Vec<Value> = [17usize, 18, 19, 20]
        .iter()
        .map(|&e| {
            let n = 1usize << e;
            let rows: Vec<Value> = Method::all()
                .iter()
                .map(|mm| match attention_only(mm, &c32, &m14, &AttnMask::Causal, n) {
                    Ok(t) => json!({"method": mm.name(), "time_s": t}),
                    Err(err) => json!({"method": mm.name(), "infeasible": format!("{err}")}),
                })
                .collect();
            json!({"seq": n, "methods": rows})
        })
        .collect();

    let tab2: Vec<Value> = [
        ("baseline", BurstOpts::baseline()),
        (
            "backward_opt",
            BurstOpts {
                backward_opt: true,
                ..BurstOpts::baseline()
            },
        ),
        (
            "topo_ring",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                ..BurstOpts::baseline()
            },
        ),
        (
            "fused_head",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                fused_lm_head: true,
                ckpt: CkptKind::Full,
            },
        ),
        (
            "seq_selective",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                fused_lm_head: true,
                ckpt: CkptKind::SeqSelective { rho: 0.5 },
            },
        ),
        (
            "selective_pp",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                fused_lm_head: true,
                ckpt: CkptKind::SelectivePP,
            },
        ),
    ]
    .into_iter()
    .map(|(name, o)| {
        let e = evaluate(&Method::BurstEngine(o), &c32, &m14, &AttnMask::Causal, 1 << 20).unwrap();
        json!({"config": name, "tgs": e.tgs, "mfu": e.mfu, "mem_gb": e.mem_gb})
    })
    .collect();

    let doc = json!({
        "source": "burstengine-rs analytical models (see EXPERIMENTS.md for calibration)",
        "fig2_attention_share": fig2,
        "tab1_comm_time": tab1,
        "fig6_rho_sweep": fig6,
        "fig7_ckpt_memory": fig7,
        "fig8_lmhead_memory": fig8,
        "fig12_13_end_to_end": fig12,
        "fig14_attention_only": fig14,
        "tab2_ablation": tab2,
    });
    println!("{}", serde_json::to_string_pretty(&doc).unwrap());
}
