//! Export every model-evaluated experiment as one JSON document (for
//! plotting / downstream analysis):
//!
//! ```text
//! cargo run --release -p burst-bench --bin export_json > results.json
//! ```
//!
//! With `--kernels`, measures the real CPU kernels instead (median
//! wall-clock seconds per call) and emits `BENCH_kernels.json`. Pass
//! `--baseline <prev.json>` to embed a previous run's medians and the
//! resulting speedups:
//!
//! ```text
//! cargo run --release -p burst-bench --bin export_json -- --kernels \
//!     --baseline old.json > BENCH_kernels.json
//! ```

use burst_bench::attn_problem;
use burst_kernels::{flash_backward, flash_forward, fused_lm_loss, AttnMask};
use burst_perf::endtoend::{attention_only, evaluate, rho_sweep, BurstOpts, Method};
use burst_perf::machine::{Cluster, PaperModel};
use burst_perf::memory::{ckpt_bytes_per_layer, lm_head_bytes, CkptKind, LmHeadKind};
use burst_perf::{commtime, flops};
use burst_tensor::randn_mat;
use criterion::measure_median_secs;
use serde_json::{json, Value};
use std::time::Duration;

/// One measured kernel case; pairs with the same-named case of a previous
/// run when a baseline document is supplied.
fn case_row(name: &str, median_s: f64, baseline: Option<&Value>) -> Value {
    let base = baseline
        .and_then(|b| b.get("cases"))
        .and_then(|c| c.as_array())
        .and_then(|arr| {
            arr.iter()
                .find(|r| r.get("name").and_then(|v| v.as_str()) == Some(name))
        })
        .and_then(|r| r.get("median_s"))
        .and_then(|v| v.as_f64());
    match base {
        Some(b) => json!({
            "name": name,
            "median_s": median_s,
            "baseline_median_s": b,
            "speedup": b / median_s,
        }),
        None => json!({"name": name, "median_s": median_s}),
    }
}

/// `--kernels` mode: time the attention and LM-head kernels at bench sizes
/// (the large-`n` points the `attention_kernels`/`lmhead_fusion` Criterion
/// benches also cover) and print the JSON document.
fn export_kernels(baseline_path: Option<String>) {
    let baseline: Option<Value> = baseline_path.map(|p| {
        let fail = |e: &dyn std::fmt::Display| -> ! {
            eprintln!("error: --baseline {p}: {e}");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(&p).unwrap_or_else(|e| fail(&e));
        serde_json::from_str(&text).unwrap_or_else(|e| fail(&e))
    });
    let warm = Duration::from_millis(200);
    let meas = Duration::from_secs(2);
    let samples = 3;
    let mask = AttnMask::Causal;
    let mut cases: Vec<Value> = Vec::new();

    for &n in &[1024usize, 4096] {
        let p = attn_problem(n, 64, 1);
        let idx: Vec<usize> = (0..n).collect();
        let m = measure_median_secs(warm, meas, samples, || {
            flash_forward(&p.q, &p.k, &p.v, p.scale, &mask, &idx, &idx)
        });
        cases.push(case_row(
            &format!("attention_forward/flash/causal/{n}"),
            m,
            baseline.as_ref(),
        ));
        let fwd = flash_forward(&p.q, &p.k, &p.v, p.scale, &mask, &idx, &idx);
        let m = measure_median_secs(warm, meas, samples, || {
            flash_backward(
                &p.q, &p.k, &p.v, &fwd.o, &p.grad_o, &fwd.lse, p.scale, &mask, &idx, &idx,
            )
        });
        cases.push(case_row(
            &format!("attention_backward/flash/causal/{n}"),
            m,
            baseline.as_ref(),
        ));
    }

    for &(n, v) in &[(1024usize, 8192usize), (4096, 2048)] {
        let h = randn_mat(n, 64, 0.8, 5);
        let w = randn_mat(v, 64, 0.8, 6);
        let y: Vec<usize> = (0..n).map(|i| (i * 31) % v).collect();
        let m = measure_median_secs(warm, meas, samples, || fused_lm_loss(&h, &w, &y));
        cases.push(case_row(
            &format!("lm_head_loss/fused/{n}x{v}"),
            m,
            baseline.as_ref(),
        ));
    }

    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let doc = json!({
        "source": "cargo run --release -p burst-bench --bin export_json -- --kernels [--baseline <prev.json>]",
        "metric": "median wall-clock seconds per kernel call",
        "host_threads": threads,
        "cases": cases,
    });
    println!("{}", serde_json::to_string_pretty(&doc).unwrap());
}

fn method_row(method: &Method, c: &Cluster, m: &PaperModel, seq: usize) -> Value {
    match evaluate(method, c, m, &AttnMask::Causal, seq) {
        Ok(e) => json!({
            "method": method.name(),
            "tgs": e.tgs,
            "mfu": e.mfu,
            "mem_gb": e.mem_gb,
            "step_time_s": e.step_time,
            "comm_exposed_s": e.comm_exposed,
        }),
        Err(err) => json!({
            "method": method.name(),
            "infeasible": format!("{err}"),
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--kernels") {
        let baseline = args
            .iter()
            .position(|a| a == "--baseline")
            .and_then(|i| args.get(i + 1))
            .cloned();
        export_kernels(baseline);
        return;
    }
    let c32 = Cluster::a800(4, 8);
    let c64 = Cluster::a800(8, 8);
    let m7 = PaperModel::llama_7b();
    let m14 = PaperModel::llama_14b();

    let fig2: Vec<Value> = (15..=20)
        .map(|e| {
            let n = 1usize << e;
            json!({
                "seq": n,
                "attention_share": flops::attention_time_fraction(&c32, &m7, n),
            })
        })
        .collect();

    let tab1: Vec<Value> = [2usize, 4, 8]
        .iter()
        .flat_map(|&nodes| {
            let c = Cluster::a800(nodes, 8);
            [19usize, 20, 21].iter().map(move |&e| {
                let t = commtime::layer_comm_times(&c, 1 << e, m14.d_model);
                json!({
                    "nodes": nodes,
                    "seq": 1usize << e,
                    "ring_s": t.ring,
                    "double_ring_s": t.double_ring,
                    "burst_s": t.burst,
                })
            })
        })
        .collect();

    let fig6: Vec<Value> = rho_sweep(&c32, &m14, &AttnMask::Causal, 1 << 20, 10)
        .into_iter()
        .map(|(rho, e)| json!({"rho": rho, "tgs": e.tgs, "mfu": e.mfu, "mem_gb": e.mem_gb}))
        .collect();

    let fig7: Vec<Value> = (16..=20)
        .map(|e| {
            let local = (1u64 << e) as f64 / 32.0;
            json!({
                "seq": 1u64 << e,
                "full_gb": m14.layers as f64 * ckpt_bytes_per_layer(&m14, local, CkptKind::Full) / 1e9,
                "seq_selective_gb": m14.layers as f64
                    * ckpt_bytes_per_layer(&m14, local, CkptKind::SeqSelective { rho: 0.5 }) / 1e9,
                "selective_pp_gb": m14.layers as f64
                    * ckpt_bytes_per_layer(&m14, local, CkptKind::SelectivePP) / 1e9,
                "none_gb": m14.layers as f64 * ckpt_bytes_per_layer(&m14, local, CkptKind::None) / 1e9,
            })
        })
        .collect();

    let fig8: Vec<Value> = [13usize, 15, 17, 19, 20]
        .iter()
        .map(|&e| {
            let n = (1usize << e) as f64;
            json!({
                "seq": 1usize << e,
                "llama2_gb": lm_head_bytes(&m7, n, LmHeadKind::Chunked) / 1e9,
                "llama3_gb": lm_head_bytes(&PaperModel::llama3_8b(), n, LmHeadKind::Chunked) / 1e9,
                "fused_gb": lm_head_bytes(&PaperModel::llama3_8b(), n, LmHeadKind::Fused) / 1e9,
            })
        })
        .collect();

    let fig12: Vec<Value> = [
        ("7B@2M/32", &m7, 2usize << 20, &c32),
        ("14B@1M/32", &m14, 1 << 20, &c32),
        ("7B@4M/64", &m7, 4 << 20, &c64),
        ("14B@2M/64", &m14, 2 << 20, &c64),
    ]
    .into_iter()
    .map(|(name, m, seq, c)| {
        json!({
            "setting": name,
            "methods": Method::all().iter().map(|mm| method_row(mm, c, m, seq)).collect::<Vec<_>>(),
        })
    })
    .collect();

    let fig14: Vec<Value> = [17usize, 18, 19, 20]
        .iter()
        .map(|&e| {
            let n = 1usize << e;
            let rows: Vec<Value> = Method::all()
                .iter()
                .map(
                    |mm| match attention_only(mm, &c32, &m14, &AttnMask::Causal, n) {
                        Ok(t) => json!({"method": mm.name(), "time_s": t}),
                        Err(err) => json!({"method": mm.name(), "infeasible": format!("{err}")}),
                    },
                )
                .collect();
            json!({"seq": n, "methods": rows})
        })
        .collect();

    let tab2: Vec<Value> = [
        ("baseline", BurstOpts::baseline()),
        (
            "backward_opt",
            BurstOpts {
                backward_opt: true,
                ..BurstOpts::baseline()
            },
        ),
        (
            "topo_ring",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                ..BurstOpts::baseline()
            },
        ),
        (
            "fused_head",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                fused_lm_head: true,
                ckpt: CkptKind::Full,
            },
        ),
        (
            "seq_selective",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                fused_lm_head: true,
                ckpt: CkptKind::SeqSelective { rho: 0.5 },
            },
        ),
        (
            "selective_pp",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                fused_lm_head: true,
                ckpt: CkptKind::SelectivePP,
            },
        ),
    ]
    .into_iter()
    .map(|(name, o)| {
        let e = evaluate(
            &Method::BurstEngine(o),
            &c32,
            &m14,
            &AttnMask::Causal,
            1 << 20,
        )
        .unwrap();
        json!({"config": name, "tgs": e.tgs, "mfu": e.mfu, "mem_gb": e.mem_gb})
    })
    .collect();

    let doc = json!({
        "source": "burstengine-rs analytical models (see EXPERIMENTS.md for calibration)",
        "fig2_attention_share": fig2,
        "tab1_comm_time": tab1,
        "fig6_rho_sweep": fig6,
        "fig7_ckpt_memory": fig7,
        "fig8_lmhead_memory": fig8,
        "fig12_13_end_to_end": fig12,
        "fig14_attention_only": fig14,
        "tab2_ablation": tab2,
    });
    println!("{}", serde_json::to_string_pretty(&doc).unwrap());
}
