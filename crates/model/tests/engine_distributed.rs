//! End-to-end distributed training on the simulated cluster: every backend
//! must reproduce the single-device run's loss trajectory, losses must
//! decrease, and checkpointing strategies must stay equivalent under
//! distribution.

use burst_comm::{Topology, World};
use burst_dattn::{Algo, CostModel, Layout};
use burst_kernels::AttnMask;
use burst_model::engine::{train, Backend, EngineConfig};
use burst_model::{ModelConfig, Strategy};

fn cfg(backend: Backend) -> EngineConfig {
    EngineConfig {
        model: ModelConfig {
            layers: 2,
            d_model: 16,
            heads: 4,
            d_ff: 32,
            vocab: 29,
            seq_len: 32,
            rope: true,
        },
        backend,
        layout: Layout::Zigzag,
        strategy: Strategy::Full,
        mask: AttnMask::Causal,
        cost: CostModel::free(),
        fsdp: true,
        offload_optimizer: false,
        grad_accum: 1,
        emulate_bf16: false,
        bf16_activations: false,
        overlap: burst_dattn::OverlapMode::Fine,
        skip_masked_rounds: false,
        adam: Default::default(),
        seed: 77,
    }
}

fn local_reference(steps: usize) -> Vec<f32> {
    let world = World::new(Topology::single_node(1));
    let mut c = cfg(Backend::Local);
    c.fsdp = false;
    train(&world, &c, steps).losses
}

fn close(a: &[f32], b: &[f32], tol: f32, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() / (1.0 + y.abs()) < tol,
            "{ctx}: step {i}: {x} vs {y}"
        );
    }
}

#[test]
fn ring_backends_match_local_training() {
    let reference = local_reference(4);
    for (algo, topo) in [
        (Algo::RingFlat, Topology::single_node(4)),
        (Algo::BurstFlat, Topology::single_node(4)),
        (Algo::DoubleRing, Topology::a800(2, 2)),
        (Algo::BurstTopo, Topology::a800(2, 2)),
    ] {
        let world = World::new(topo);
        let m = train(&world, &cfg(Backend::Ring(algo)), 4);
        close(&m.losses, &reference, 5e-3, &format!("{algo:?}"));
    }
}

#[test]
fn ulysses_backend_matches_local_training() {
    let reference = local_reference(3);
    let world = World::new(Topology::single_node(4));
    let mut c = cfg(Backend::Ulysses);
    c.layout = Layout::Contiguous;
    let m = train(&world, &c, 3);
    close(&m.losses, &reference, 5e-3, "ulysses");
}

#[test]
fn usp_backend_matches_local_training() {
    let reference = local_reference(3);
    let world = World::new(Topology::a800(2, 2));
    let m = train(&world, &cfg(Backend::Usp { ulysses_size: 2 }), 3);
    close(&m.losses, &reference, 5e-3, "usp");
}

#[test]
fn distributed_training_reduces_loss() {
    let world = World::new(Topology::single_node(4));
    let mut c = cfg(Backend::Ring(Algo::BurstFlat));
    c.adam.lr = 3e-3;
    let m = train(&world, &c, 25);
    let first = m.losses[0];
    let last = *m.losses.last().unwrap();
    // The synthetic stream shifts every step, so this is generalisation,
    // not memorisation — expect a steady but not dramatic descent.
    assert!(
        last < first * 0.85,
        "loss should fall: {first} → {last} ({:?})",
        m.losses
    );
}

#[test]
fn checkpoint_strategies_equivalent_distributed() {
    let world = World::new(Topology::single_node(4));
    let run = |strategy: Strategy| {
        let mut c = cfg(Backend::Ring(Algo::BurstTopo));
        c.strategy = strategy;
        train(&world, &c, 3).losses
    };
    let reference = run(Strategy::None);
    for strategy in [
        Strategy::Full,
        Strategy::SelectivePlusPlus,
        Strategy::SeqSelective { rho: 0.5 },
    ] {
        close(&run(strategy), &reference, 1e-3, &format!("{strategy:?}"));
    }
}

#[test]
fn seq_selective_memory_sits_between_full_and_pp_distributed() {
    let world = World::new(Topology::single_node(4));
    let mem = |strategy: Strategy| {
        let mut c = cfg(Backend::Ring(Algo::BurstFlat));
        c.strategy = strategy;
        train(&world, &c, 1).peak_activation_bytes
    };
    let full = mem(Strategy::Full);
    let seq = mem(Strategy::SeqSelective { rho: 0.5 });
    let pp = mem(Strategy::SelectivePlusPlus);
    let none = mem(Strategy::None);
    assert!(
        full < seq && seq < pp && pp < none,
        "{full} {seq} {pp} {none}"
    );
}

#[test]
fn virtual_step_time_orders_methods_on_multinode() {
    // End-to-end: with realistic A800 costs, BurstTopo must beat the flat
    // ring on a 2×4 cluster (the Fig. 12 mechanism at miniature scale).
    let topo = Topology::a800(2, 4);
    let run = |algo: Algo| {
        let world = World::new(topo.clone());
        let mut c = cfg(Backend::Ring(algo));
        c.cost = CostModel::a800();
        train(&world, &c, 2).wall_time
    };
    let flat = run(Algo::RingFlat);
    let burst = run(Algo::BurstTopo);
    assert!(
        burst < flat,
        "BurstTopo end-to-end ({burst}) should beat flat ring ({flat})"
    );
}

#[test]
fn fsdp_gather_catches_replica_divergence() {
    // Sanity: with FSDP on, losses stay identical across ranks (already
    // asserted inside train) and runs are reproducible.
    let world = World::new(Topology::single_node(2));
    let a = train(&world, &cfg(Backend::Ring(Algo::BurstFlat)), 2);
    let b = train(&world, &cfg(Backend::Ring(Algo::BurstFlat)), 2);
    assert_eq!(a.losses, b.losses);
    assert_eq!(a.wall_time, b.wall_time);
}

#[test]
fn optimizer_offload_trades_time_for_device_state() {
    let world = World::new(Topology::single_node(4));
    let base = cfg(Backend::Ring(Algo::BurstFlat));
    let mut off = base.clone();
    off.offload_optimizer = true;
    let with = train(&world, &base, 2);
    let without = train(&world, &off, 2);
    // Same numerics, slower steps, smaller device state.
    assert_eq!(with.losses, without.losses);
    assert!(
        without.wall_time > with.wall_time,
        "offload must cost PCIe time"
    );
    assert!(without.state_bytes_per_rank < with.state_bytes_per_rank);
}

#[test]
fn dilated_mask_trains_distributed() {
    // The §3.4 dilated pattern through the whole stack.
    let world = World::new(Topology::single_node(4));
    let mut c = cfg(Backend::Ring(Algo::BurstTopo));
    c.mask = AttnMask::Dilated {
        window: 16,
        step: 2,
    };
    let dist = train(&world, &c, 2).losses;
    let mut local = cfg(Backend::Local);
    local.fsdp = false;
    local.mask = AttnMask::Dilated {
        window: 16,
        step: 2,
    };
    let reference = train(&World::new(Topology::single_node(1)), &local, 2).losses;
    close(&dist, &reference, 5e-3, "dilated");
}

#[test]
fn gradient_accumulation_runs_and_stays_consistent() {
    // Accumulated micro-batches: ranks still agree on the loss, training
    // still descends, and the run is deterministic.
    let world = World::new(Topology::single_node(4));
    let mut c = cfg(Backend::Ring(Algo::BurstFlat));
    c.grad_accum = 3;
    c.adam.lr = 3e-3;
    let a = train(&world, &c, 6);
    let b = train(&world, &c, 6);
    assert_eq!(a.losses, b.losses, "accumulated runs must be deterministic");
    assert!(
        a.losses.last().unwrap() < &a.losses[0],
        "loss should fall with accumulation: {:?}",
        a.losses
    );
    // Single-device equivalence with accumulation.
    let mut local = cfg(Backend::Local);
    local.fsdp = false;
    local.grad_accum = 3;
    local.adam.lr = 3e-3;
    let r = train(&World::new(Topology::single_node(1)), &local, 6);
    close(
        &a.losses,
        &r.losses,
        5e-3,
        "accumulated distributed vs local",
    );
}

#[test]
fn engine_overlap_ablation_changes_time_not_numerics() {
    use burst_dattn::OverlapMode;
    let topo = Topology::a800(2, 2);
    let mut fine = cfg(Backend::Ring(Algo::BurstFlat));
    fine.cost = CostModel {
        peak_flops: 1e9,
        efficiency: 1.0,
    };
    let mut none = fine.clone();
    none.overlap = OverlapMode::None;
    let a = train(&World::new(topo.clone()), &fine, 2);
    let b = train(&World::new(topo), &none, 2);
    assert_eq!(a.losses, b.losses, "overlap is a pure scheduling change");
    assert!(
        a.wall_time < b.wall_time,
        "fine overlap ({}) must beat serialized comm ({})",
        a.wall_time,
        b.wall_time
    );
}

#[test]
fn tgs_accounts_compute_and_comm() {
    let world = World::new(Topology::single_node(2));
    let mut c = cfg(Backend::Ring(Algo::BurstFlat));
    c.cost = CostModel::a800();
    let m = train(&world, &c, 2);
    assert!(m.wall_time > 0.0);
    assert!(m.tgs.is_finite() && m.tgs > 0.0);
    assert!(
        m.mfu.is_finite() && m.mfu > 0.0 && m.mfu < 1.0,
        "mfu {}",
        m.mfu
    );
    assert!(m.comm.total_elems() > 0);
}

#[test]
fn engine_step_spans_validate_and_tracing_is_bit_identical() {
    use burst_comm::obs::{self, SpanKind};
    use burst_model::engine::run_span;
    use burst_model::Model;

    let topo = Topology::a800(2, 2);
    let steps = 2usize;
    let mut c = cfg(Backend::Ring(Algo::BurstTopo));
    c.grad_accum = 2;
    // Zero-cost kernels emit no spans; use the real cost model so compute
    // and recompute show up on the timeline.
    c.cost = CostModel::a800();
    let run = |trace: bool| {
        let world = World::new(topo.clone());
        world.run(|comm| {
            if trace {
                comm.start_trace();
            }
            let mut model = Model::new(c.model, c.seed);
            run_span(comm, &c, &mut model, 0, steps, |_, _, _, _| {})
                .expect("healthy run")
                .losses
        })
    };
    let plain = run(false);
    let traced = run(true);
    for (p, t) in plain.iter().zip(&traced) {
        assert_eq!(p.result, t.result, "losses differ under tracing");
        assert_eq!(
            p.time.to_bits(),
            t.time.to_bits(),
            "virtual clock differs under tracing"
        );
        let trace = t.trace.as_ref().expect("tracing was on");
        obs::validate(trace).unwrap_or_else(|e| panic!("rank {}: {e}", t.rank));
        assert!(trace.warnings.is_empty(), "healthy run warned");
        assert_eq!(trace.count(SpanKind::Step), steps, "one span per step");
        assert_eq!(
            trace.count(SpanKind::Micro),
            steps * c.grad_accum,
            "one span per micro-batch"
        );
        assert!(trace.count(SpanKind::Layer) > 0, "no layer spans");
        assert!(trace.count(SpanKind::AttnRound) > 0, "no attention rounds");
        // Strategy::Full rebuilds every block in the backward; the rebuilt
        // kernels must be tagged as recomputation.
        assert!(
            trace
                .spans
                .iter()
                .any(|s| s.kind == SpanKind::Kernel && s.name == "recompute"),
            "full checkpointing produced no recompute spans"
        );
    }
}
