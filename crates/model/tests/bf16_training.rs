//! Mixed-precision emulation: training with bf16 weight storage (the
//! paper's format) must still converge, stay deterministic, and keep the
//! distributed ≡ local equivalence.

use burst_comm::{Topology, World};
use burst_dattn::{Algo, CostModel, Layout, OverlapMode};
use burst_kernels::AttnMask;
use burst_model::engine::{train, Backend, EngineConfig};
use burst_model::{ModelConfig, Strategy};

fn cfg(backend: Backend) -> EngineConfig {
    EngineConfig {
        model: ModelConfig {
            layers: 2,
            d_model: 16,
            heads: 4,
            d_ff: 32,
            vocab: 29,
            seq_len: 32,
            rope: true,
        },
        backend,
        layout: Layout::Zigzag,
        strategy: Strategy::Full,
        mask: AttnMask::Causal,
        cost: CostModel::free(),
        fsdp: true,
        offload_optimizer: false,
        grad_accum: 1,
        emulate_bf16: true,
        bf16_activations: true,
        overlap: OverlapMode::Fine,
        skip_masked_rounds: false,
        adam: Default::default(),
        seed: 88,
    }
}

#[test]
fn bf16_training_descends_and_matches_local() {
    let mut c = cfg(Backend::Ring(Algo::BurstTopo));
    c.adam.lr = 3e-3;
    let dist = train(&World::new(Topology::a800(2, 2)), &c, 12);
    assert!(
        dist.losses.last().unwrap() < &(dist.losses[0] * 0.95),
        "bf16 training should descend: {:?}",
        dist.losses
    );
    let mut local = cfg(Backend::Local);
    local.fsdp = false;
    local.adam.lr = 3e-3;
    let reference = train(&World::new(Topology::single_node(1)), &local, 12);
    for (d, l) in dist.losses.iter().zip(&reference.losses) {
        assert!(
            (d - l).abs() / (1.0 + l.abs()) < 5e-3,
            "bf16 distributed {d} vs local {l}"
        );
    }
}

#[test]
fn bf16_changes_the_trajectory_but_not_by_much() {
    let c16 = cfg(Backend::Ring(Algo::BurstFlat));
    let mut c32 = c16.clone();
    c32.emulate_bf16 = false;
    let w = World::new(Topology::single_node(4));
    let a = train(&w, &c16, 4);
    let b = train(&w, &c32, 4);
    // Same data, same seeds: only the precision differs. The trajectories
    // diverge (rounding is real)...
    assert_ne!(a.losses, b.losses, "bf16 rounding must have an effect");
    // ...but stay close (bf16 is adequate for training, as the paper's
    // setup assumes).
    for (x, y) in a.losses.iter().zip(&b.losses) {
        assert!((x - y).abs() / (1.0 + y.abs()) < 0.02, "{x} vs {y}");
    }
}

#[test]
fn bf16_run_is_deterministic() {
    let c = cfg(Backend::Ring(Algo::BurstFlat));
    let w = World::new(Topology::single_node(2));
    assert_eq!(train(&w, &c, 3).losses, train(&w, &c, 3).losses);
}
