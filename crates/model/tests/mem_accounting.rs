//! Ledger accounting at the model/engine layer: device-resident state
//! entries, FSDP collective buffers and the checkpoint stash — including
//! the gate that a bf16 activation stash is exactly half the f32 one.

use burst_comm::obs::{validate_mem, MemReport};
use burst_comm::{Topology, World};
use burst_dattn::{Algo, Layout};
use burst_kernels::AttnMask;
use burst_model::engine::{run_rank, Backend, EngineConfig};
use burst_model::{cutoff_for_masked, Strategy};

/// Run `steps` training steps on every rank with accounting on and return
/// the finished per-rank ledgers.
fn run_accounted(cfg: &EngineConfig, topo: Topology, steps: usize) -> Vec<MemReport> {
    let world = World::new(topo);
    world
        .run(|comm| {
            comm.start_mem_accounting();
            let _ = run_rank(comm, cfg, steps);
            comm.take_mem_report().expect("accounting was on")
        })
        .into_iter()
        .map(|o| o.result)
        .collect()
}

fn stash_peak(bf16: bool) -> u64 {
    let mut cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
    // Strategy::Full stores only block-input matrices, so the stash is a
    // pure f32-vs-bf16 width comparison (no always-f32 Lse vectors mixed
    // in, unlike SelectivePlusPlus).
    cfg.strategy = Strategy::Full;
    cfg.bf16_activations = bf16;
    let reports = run_accounted(&cfg, Topology::a800(1, 2), 1);
    for r in &reports {
        validate_mem(r).unwrap();
        assert!(r.warnings.is_empty(), "clean run: {:?}", r.warnings);
        assert_eq!(r.live_at_close, 0, "clean run frees everything");
    }
    reports.iter().map(|r| r.peak.ckpt_stash).max().unwrap()
}

#[test]
fn bf16_activation_stash_is_exactly_half_of_f32() {
    let f32_peak = stash_peak(false);
    let bf16_peak = stash_peak(true);
    assert!(bf16_peak > 0, "stash must be billed at all");
    assert_eq!(f32_peak, 2 * bf16_peak, "2-byte stash vs 4-byte stash");
}

#[test]
fn device_state_entries_match_the_fsdp_decomposition() {
    let mut cfg = EngineConfig::tiny(Backend::Ring(Algo::RingFlat));
    let p = cfg.model.param_count() as u64;
    // FSDP on (tiny() default), no offload: P·4/G weights, P·4/G grads,
    // 2·(P·4/G) Adam moments.
    let g = 2u64;
    let bytes = p * 4 / g;
    for r in &run_accounted(&cfg, Topology::a800(1, g as usize), 1) {
        assert_eq!(r.peak.params, bytes);
        assert_eq!(r.peak.grads, bytes);
        assert_eq!(r.peak.optim_state, 2 * bytes);
    }
    // ZeRO-Offload: the Adam moments leave the device ledger entirely.
    cfg.offload_optimizer = true;
    for r in &run_accounted(&cfg, Topology::a800(1, g as usize), 1) {
        assert_eq!(r.peak.params, bytes);
        assert_eq!(r.peak.optim_state, 0, "offloaded moments are host-side");
    }
    // No FSDP: fully replicated state, no gather/sync buffers.
    cfg.offload_optimizer = false;
    cfg.fsdp = false;
    for r in &run_accounted(&cfg, Topology::a800(1, g as usize), 1) {
        assert_eq!(r.peak.params, p * 4);
        assert_eq!(r.peak.grads, p * 4);
        assert_eq!(r.peak.optim_state, p * 8);
    }
}

#[test]
fn fsdp_buffers_stash_and_workspace_land_on_their_lanes() {
    let mut cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
    cfg.strategy = Strategy::SelectivePlusPlus;
    let reports = run_accounted(&cfg, Topology::a800(1, 4), 2);
    for r in &reports {
        validate_mem(r).unwrap();
        assert!(r.warnings.is_empty(), "clean run: {:?}", r.warnings);
        assert!(r.peak.comm_buffers > 0, "FSDP + ring buffers were billed");
        assert!(r.peak.ckpt_stash > 0, "selective++ stash was billed");
        assert!(r.peak.workspace > 0, "dense-path peak was noted");
        assert!(
            r.entries.iter().any(|e| e.name == "fsdp_gather_buf"),
            "weight gather buffers appear by name"
        );
        assert!(
            r.entries.iter().any(|e| e.name == "fsdp_sync_buf"),
            "gradient sync buffers appear by name"
        );
    }
}

/// Per-rank expected checkpoint stash of `SeqSelective { rho }`: every
/// block keeps its input plus the tail `(O, Lse)` cache past the
/// mask-aware cutoff, and all blocks' stashes are live at once when the
/// forward finishes. Matrix stashes follow the activation width; `Lse`
/// stays f32.
fn expected_seq_stash(cfg: &EngineConfig, g: usize, rank: usize, rho: f32) -> u64 {
    let m = &cfg.model;
    let width = if cfg.bf16_activations { 2 } else { 4 };
    let cutoff = cutoff_for_masked(rho, m.seq_len, &cfg.mask);
    let idx = cfg.layout.indices(m.seq_len, g, rank);
    let rows = idx.len();
    let tail = idx.iter().filter(|&&i| i >= cutoff).count();
    let per_layer = rows * m.d_model * width   // block input
        + tail * m.d_model * width             // per-head O tail, Σ dh = d
        + m.heads * tail * 4; // Lse tail, always f32
    (m.layers * per_layer) as u64
}

#[test]
fn masked_seq_selective_stash_is_exact_and_smaller() {
    // Satellite: under a window mask the mask-aware cutoff moves right
    // (cheap rows are recomputed, not stashed), so sequence-selective
    // checkpointing stashes strictly fewer bytes than both the causal
    // cutoff at the same ρ and the full attention-output cache — and the
    // measured stash equals the analytic expectation to the byte, at both
    // activation widths.
    let g = 2usize;
    let rho = 0.5f32;
    let run = |mask: AttnMask, strategy: Strategy, bf16: bool| -> (EngineConfig, Vec<MemReport>) {
        let mut cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
        cfg.layout = Layout::Zigzag;
        cfg.mask = mask;
        cfg.strategy = strategy;
        cfg.bf16_activations = bf16;
        let reports = run_accounted(&cfg, Topology::a800(1, g), 1);
        (cfg, reports)
    };
    let window = AttnMask::SlidingWindow { window: 8 };
    for bf16 in [false, true] {
        let (cfg, masked) = run(window.clone(), Strategy::SeqSelective { rho }, bf16);
        for (rank, r) in masked.iter().enumerate() {
            validate_mem(r).unwrap();
            assert_eq!(
                r.peak.ckpt_stash,
                expected_seq_stash(&cfg, g, rank, rho),
                "rank {rank} bf16={bf16}: stash must match the census exactly"
            );
        }
        let (_, causal) = run(AttnMask::Causal, Strategy::SeqSelective { rho }, bf16);
        let (_, pp) = run(window.clone(), Strategy::SelectivePlusPlus, bf16);
        let sum = |rs: &[MemReport]| rs.iter().map(|r| r.peak.ckpt_stash).sum::<u64>();
        assert!(
            sum(&masked) < sum(&causal),
            "bf16={bf16}: window stash {} < causal-cutoff stash {}",
            sum(&masked),
            sum(&causal)
        );
        assert!(
            sum(&masked) < sum(&pp),
            "bf16={bf16}: window stash {} < full-cache stash {}",
            sum(&masked),
            sum(&pp)
        );
    }
}

#[test]
fn engine_accounting_is_a_pure_observer() {
    let cfg = EngineConfig::tiny(Backend::Ring(Algo::BurstFlat));
    let base = World::new(Topology::a800(1, 2)).run(|comm| run_rank(comm, &cfg, 2));
    let acct = World::new(Topology::a800(1, 2)).run(|comm| {
        comm.start_mem_accounting();
        let out = run_rank(comm, &cfg, 2);
        let report = comm.take_mem_report().expect("accounting was on");
        (out, report)
    });
    for (a, b) in base.iter().zip(&acct) {
        let (losses_a, _) = &a.result;
        let ((losses_b, _), report) = &b.result;
        assert!(report.allocated_bytes > 0, "the ledger actually recorded");
        assert_eq!(losses_a.len(), losses_b.len());
        for (x, y) in losses_a.iter().zip(losses_b) {
            assert_eq!(x.to_bits(), y.to_bits(), "losses must be bit-identical");
        }
        assert_eq!(
            a.time.to_bits(),
            b.time.to_bits(),
            "accounting must never touch the virtual clock"
        );
    }
}
