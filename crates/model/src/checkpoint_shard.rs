//! Sharded checkpoints (`BURSTCKPT v2`): the flat training state is split
//! into one payload file per rank plus a checksummed **manifest**, so that
//!
//! * checkpoint writes parallelize — each rank persists only its own slice
//!   of the state, instead of every rank (or one rank) serializing the full
//!   replica;
//! * restore-after-shrink is cheap — a survivor re-assembling an evicted
//!   rank's partition reads **only the shards that overlap the slice it
//!   needs**, and the loaders account every file they open so tests can
//!   assert exactly that;
//! * a torn checkpoint is impossible to observe: shard files are staged and
//!   renamed individually ([`crate::checkpoint_io::atomic_write`]), and the
//!   manifest — which records every shard's length and FNV-1a checksum — is
//!   written **last**, as the commit point. A crash mid-write leaves stale
//!   `*.tmp` droppings and possibly fresh shard files, but the manifest
//!   still describes the previous complete checkpoint; the next successful
//!   commit sweeps the droppings.
//!
//! Layout on disk, for a world of `W` ranks:
//!
//! ```text
//! <dir>/shard-0.ckpt … <dir>/shard-{W-1}.ckpt   framed JSON Vec<f32>
//! <dir>/manifest.ckpt                           framed JSON ShardManifest
//! ```
//!
//! Shard `s` holds the half-open flat range [`shard_range`]`(flat_len, W,
//! s)` — the same `rows*s/W` split the FSDP layer uses, so shard sizes
//! differ by at most one element and every boundary is reproducible from
//! `(flat_len, W)` alone.

use crate::checkpoint_io::{atomic_write, decode_checkpoint, encode_checkpoint, fnv1a};
use crate::model::{Model, ModelConfig};
use std::io;
use std::path::{Path, PathBuf};

/// What the manifest records about one shard file: enough to detect a
/// missing, truncated, corrupted or mismatched (wrong-checkpoint) shard
/// before any state is loaded from it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardMeta {
    /// Number of `f32` elements in the shard.
    pub elems: usize,
    /// FNV-1a checksum of the shard's serialized payload bytes, as the
    /// `0x`-prefixed hex string [`fnv_hex`] produces (JSON numbers cannot
    /// carry full 64-bit precision).
    pub fnv: String,
}

/// Render a checksum the way shard manifests record it.
pub fn fnv_hex(h: u64) -> String {
    format!("{h:#018x}")
}

/// The checkpoint's commit record: written last, after every shard file is
/// in place. Restoring starts here; a directory whose manifest is missing
/// or stale simply describes the previous complete checkpoint.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardManifest {
    /// Global step the checkpoint was taken at (next step to run).
    pub step: u64,
    /// Membership epoch of the writers (0 until a rank is evicted).
    pub epoch: u64,
    /// World size the state was sharded over.
    pub world_size: usize,
    /// Total `f32` elements across all shards.
    pub flat_len: usize,
    /// Model architecture, so a reader can rebuild a replica to load into.
    pub cfg: ModelConfig,
    /// Per-step mean losses recorded so far.
    pub losses: Vec<f32>,
    /// One entry per shard, indexed by rank.
    pub shards: Vec<ShardMeta>,
}

/// `<dir>/manifest.ckpt`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.ckpt")
}

/// `<dir>/shard-<s>.ckpt`.
pub fn shard_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("shard-{s}.ckpt"))
}

/// Half-open flat range `[lo, hi)` owned by shard `s` of `world` — the
/// FSDP split: sizes differ by at most one element.
pub fn shard_range(flat_len: usize, world: usize, s: usize) -> (usize, usize) {
    assert!(s < world, "shard_range: shard {s} of world {world}");
    (flat_len * s / world, flat_len * (s + 1) / world)
}

fn invalid(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// The manifest entry shard `s` would get — computed from the flat state
/// alone, without touching disk. Because training replicas are
/// bit-identical, the manifest writer can derive **every** shard's metadata
/// from its own state while the other ranks write their shard files in
/// parallel.
pub fn shard_meta(flat: &[f32], world: usize, s: usize) -> io::Result<ShardMeta> {
    let (lo, hi) = shard_range(flat.len(), world, s);
    let payload = serde_json::to_vec(&flat[lo..hi])
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(ShardMeta {
        elems: hi - lo,
        fnv: fnv_hex(fnv1a(&payload)),
    })
}

/// Write shard `s`'s slice of the flat state atomically. Returns the
/// metadata the manifest must record for this shard.
pub fn write_shard(dir: &Path, s: usize, world: usize, flat: &[f32]) -> io::Result<ShardMeta> {
    let (lo, hi) = shard_range(flat.len(), world, s);
    let payload = serde_json::to_vec(&flat[lo..hi])
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let meta = ShardMeta {
        elems: hi - lo,
        fnv: fnv_hex(fnv1a(&payload)),
    };
    atomic_write(&shard_path(dir, s), &encode_checkpoint(&payload))?;
    Ok(meta)
}

/// Remove stale `*.tmp` staging files left behind by a crash mid-write.
/// Called by [`write_manifest`] at commit time; safe to call any time — a
/// `.tmp` file is only ever an unpublished write in progress by *this*
/// checkpoint directory's single writer group.
pub fn clean_stale_tmp(dir: &Path) -> io::Result<usize> {
    let mut removed = 0;
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "tmp") {
            std::fs::remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Commit the checkpoint: sweep stale staging files, then atomically
/// publish the manifest. Every shard file must already be in place — in
/// distributed use, rank 0 calls this only after a barrier confirms all
/// ranks' shard writes completed.
pub fn write_manifest(dir: &Path, man: &ShardManifest) -> io::Result<()> {
    clean_stale_tmp(dir)?;
    let payload =
        serde_json::to_vec(man).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    atomic_write(&manifest_path(dir), &encode_checkpoint(&payload))
}

/// Read and validate the manifest.
pub fn read_manifest(dir: &Path) -> io::Result<ShardManifest> {
    let bytes = std::fs::read(manifest_path(dir))?;
    let payload = decode_checkpoint(&bytes)?;
    let man: ShardManifest = serde_json::from_slice(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if man.shards.len() != man.world_size {
        return Err(invalid(format!(
            "manifest lists {} shards for world size {}",
            man.shards.len(),
            man.world_size
        )));
    }
    let total: usize = man.shards.iter().map(|m| m.elems).sum();
    if total != man.flat_len {
        return Err(invalid(format!(
            "manifest shard sizes sum to {total}, flat_len says {}",
            man.flat_len
        )));
    }
    Ok(man)
}

/// Read shard `s`, validating its frame *and* cross-checking it against the
/// manifest's recorded length and checksum — a shard left over from a
/// different checkpoint generation is rejected even if internally intact.
pub fn read_shard(dir: &Path, s: usize, man: &ShardManifest) -> io::Result<Vec<f32>> {
    let meta = &man.shards[s];
    let bytes = std::fs::read(shard_path(dir, s))?;
    let payload = decode_checkpoint(&bytes)?;
    let got = fnv_hex(fnv1a(payload));
    if got != meta.fnv {
        return Err(invalid(format!(
            "shard {s} does not match the manifest: fnv {got} vs recorded {}",
            meta.fnv
        )));
    }
    let data: Vec<f32> = serde_json::from_slice(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if data.len() != meta.elems {
        return Err(invalid(format!(
            "shard {s} holds {} elements, manifest records {}",
            data.len(),
            meta.elems
        )));
    }
    Ok(data)
}

/// Read the flat range `[lo, hi)`, opening **only** the shard files that
/// overlap it. Returns the data and the number of shard files read — the
/// IO-accounting hook elastic recovery tests assert on.
pub fn read_flat_range(
    dir: &Path,
    man: &ShardManifest,
    lo: usize,
    hi: usize,
) -> io::Result<(Vec<f32>, usize)> {
    assert!(lo <= hi && hi <= man.flat_len, "read_flat_range: bad range");
    let mut out = Vec::with_capacity(hi - lo);
    let mut files_read = 0;
    for s in 0..man.world_size {
        let (slo, shi) = shard_range(man.flat_len, man.world_size, s);
        if shi <= lo || slo >= hi {
            continue;
        }
        let data = read_shard(dir, s, man)?;
        files_read += 1;
        let a = lo.max(slo);
        let b = hi.min(shi);
        out.extend_from_slice(&data[a - slo..b - slo]);
    }
    Ok((out, files_read))
}

/// Read the complete flat state (every shard, in rank order).
pub fn read_full_state(dir: &Path, man: &ShardManifest) -> io::Result<(Vec<f32>, usize)> {
    read_flat_range(dir, man, 0, man.flat_len)
}

/// Single-writer convenience: shard the model's full state over
/// `world_size` files and commit the manifest. In distributed training each
/// rank instead calls [`write_shard`] for its own rank and rank 0 commits
/// with [`write_manifest`].
pub fn save_sharded(
    model: &Model,
    dir: &Path,
    world_size: usize,
    step: u64,
    epoch: u64,
    losses: &[f32],
) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let flat = model.flat_state();
    let mut shards = Vec::with_capacity(world_size);
    for s in 0..world_size {
        shards.push(write_shard(dir, s, world_size, &flat)?);
    }
    write_manifest(
        dir,
        &ShardManifest {
            step,
            epoch,
            world_size,
            flat_len: flat.len(),
            cfg: model.cfg,
            losses: losses.to_vec(),
            shards,
        },
    )
}

/// Restore a full model replica from a sharded checkpoint. Returns the
/// model, the manifest, and how many shard files were read (always all of
/// them here — partial restore goes through [`read_flat_range`]).
///
/// The replica is rebuilt from the manifest's [`ModelConfig`] and then every
/// weight, gradient and Adam moment is overwritten from the shards, so the
/// construction seed is irrelevant.
pub fn load_sharded(dir: &Path) -> io::Result<(Model, ShardManifest, usize)> {
    let man = read_manifest(dir)?;
    let mut model = Model::new(man.cfg, 0);
    if model.flat_state_len() != man.flat_len {
        return Err(invalid(format!(
            "manifest flat_len {} does not fit cfg (expected {})",
            man.flat_len,
            model.flat_state_len()
        )));
    }
    let (flat, files_read) = read_full_state(dir, &man)?;
    model.load_flat_state(&flat);
    Ok((model, man, files_read))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::LocalExec;
    use crate::checkpoint::Strategy;
    use crate::model::{Model, ModelConfig};
    use crate::param::AdamCfg;
    use burst_kernels::AttnMask;

    fn trained_model(seed: u64, steps: u64) -> Model {
        let cfg = ModelConfig::tiny();
        let mut m = Model::new(cfg, seed);
        let tokens: Vec<usize> = (0..cfg.seq_len).map(|i| (i * 3 + 1) % cfg.vocab).collect();
        let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
        let mut exec = LocalExec::new(AttnMask::Causal, cfg.seq_len);
        for t in 1..=steps {
            m.zero_grads();
            m.train_step(&tokens, &targets, &mut exec, Strategy::None, cfg.seq_len);
            m.adam_step(&AdamCfg::default(), t);
        }
        m
    }

    fn tdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("burstengine-shard-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn flat_state_roundtrips_bit_exactly() {
        let m = trained_model(40, 2);
        let flat = m.flat_state();
        assert_eq!(flat.len(), m.flat_state_len());
        let mut fresh = Model::new(m.cfg, 12345);
        fresh.load_flat_state(&flat);
        assert_eq!(fresh.flat_state(), flat);
        assert_eq!(fresh.head.w, m.head.w);
        assert_eq!(fresh.embed.table.grad, m.embed.table.grad);
    }

    #[test]
    fn sharded_save_and_load_roundtrip() {
        let m = trained_model(41, 2);
        let dir = tdir("roundtrip");
        save_sharded(&m, &dir, 4, 7, 0, &[1.5, 1.2]).unwrap();
        let (loaded, man, files_read) = load_sharded(&dir).unwrap();
        assert_eq!(man.step, 7);
        assert_eq!(man.world_size, 4);
        assert_eq!(man.losses, vec![1.5, 1.2]);
        assert_eq!(files_read, 4);
        assert_eq!(loaded.flat_state(), m.flat_state());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_restore_reads_only_overlapping_shards() {
        let m = trained_model(42, 1);
        let dir = tdir("partial");
        save_sharded(&m, &dir, 4, 3, 0, &[]).unwrap();
        let man = read_manifest(&dir).unwrap();
        let flat = m.flat_state();
        // A slice inside shard 1 only.
        let (lo, hi) = shard_range(man.flat_len, 4, 1);
        let mid = (lo + hi) / 2;
        let (data, files) = read_flat_range(&dir, &man, lo + 1, mid).unwrap();
        assert_eq!(files, 1, "slice within one shard must read one file");
        assert_eq!(data, flat[lo + 1..mid]);
        // A slice spanning the 1/2 boundary.
        let (_, bhi) = shard_range(man.flat_len, 4, 2);
        let (data, files) = read_flat_range(&dir, &man, mid, bhi - 1).unwrap();
        assert_eq!(files, 2, "boundary-spanning slice must read two files");
        assert_eq!(data, flat[mid..bhi - 1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_rejects_mismatched_shard() {
        let m = trained_model(43, 1);
        let dir = tdir("mismatch");
        save_sharded(&m, &dir, 2, 1, 0, &[]).unwrap();
        // Overwrite shard 1 with a validly-framed but different payload —
        // as a crash between shard writes of two generations could leave.
        let other = trained_model(99, 1);
        write_shard(&dir, 1, 2, &other.flat_state()).unwrap();
        let err = load_sharded(&dir).unwrap_err();
        assert!(
            err.to_string().contains("does not match the manifest"),
            "got: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_sweeps_stale_tmp_and_previous_checkpoint_survives_a_torn_write() {
        let m = trained_model(44, 1);
        let dir = tdir("torn");
        save_sharded(&m, &dir, 2, 5, 0, &[0.9]).unwrap();
        // A later checkpoint attempt dies mid-shard-write: garbage staging
        // file, no manifest update.
        std::fs::write(shard_path(&dir, 0).with_extension("ckpt.tmp"), b"junk").unwrap();
        let (loaded, man, _) = load_sharded(&dir).unwrap();
        assert_eq!(man.step, 5, "manifest still describes the old checkpoint");
        assert_eq!(loaded.flat_state(), m.flat_state());
        // The next successful commit sweeps the dropping.
        save_sharded(&m, &dir, 2, 6, 0, &[0.9, 0.8]).unwrap();
        let stale: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .collect();
        assert!(stale.is_empty(), "commit must sweep stale .tmp files");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_ranges_tile_the_state() {
        for flat_len in [0usize, 1, 7, 100, 101] {
            for world in 1..=5 {
                let mut expect = 0;
                for s in 0..world {
                    let (lo, hi) = shard_range(flat_len, world, s);
                    assert_eq!(lo, expect);
                    expect = hi;
                }
                assert_eq!(expect, flat_len);
            }
        }
    }
}
