//! Gradient-checkpointing strategies over a stack of Transformer blocks
//! (paper §3.2, Fig. 6–7).
//!
//! The forward decides what to *store* per block; the backward rebuilds
//! whatever is missing by recomputation. All four strategies produce
//! bit-identical gradients for ring-family backends — only memory and
//! recompute differ (asserted in the crate tests):
//!
//! | strategy          | stored per block          | attention recompute |
//! |--------------------|---------------------------|---------------------|
//! | `None`             | everything                | none                |
//! | `Full`             | block input               | full                |
//! | `SelectivePlusPlus`| block input + `(O, Lse)`  | none                |
//! | `SeqSelective{ρ}`  | block input + tail `(O, Lse)` | front segment (≈ ρ² of full for causal) |

use crate::attention::AttnExec;
use crate::block::{BlockSaved, TransformerBlock};
use crate::memory::MemoryTracker;
use burst_comm::SpanKind;
use burst_kernels::AttnMask;
use burst_tensor::{Bf16Mat, Mat};

/// Precision of stashed activations (block inputs and cached attention
/// outputs). Softmax statistics (`Lse`) always stay f32 — they anchor the
/// online merges and are `O(m)` against the `O(m·d)` matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActPrecision {
    /// Full-width stashes: recompute starts from exact inputs.
    #[default]
    F32,
    /// Genuine 2-byte stashes ([`Bf16Mat`]): halves stored activation
    /// bytes; recompute starts from bf16-rounded inputs (the paper's
    /// training precision).
    Bf16,
}

/// One stashed activation matrix, stored at the configured precision.
#[derive(Debug, Clone)]
pub enum StoredMat {
    F32(Mat),
    Bf16(Bf16Mat),
}

impl StoredMat {
    pub fn store(m: Mat, precision: ActPrecision) -> Self {
        match precision {
            ActPrecision::F32 => StoredMat::F32(m),
            ActPrecision::Bf16 => StoredMat::Bf16(Bf16Mat::from_mat(&m)),
        }
    }

    /// Materialise the full-width matrix (decodes exactly for bf16).
    pub fn load(&self) -> Mat {
        match self {
            StoredMat::F32(m) => m.clone(),
            StoredMat::Bf16(h) => h.to_mat(),
        }
    }

    /// True storage footprint: 4 bytes per element for f32, 2 for bf16.
    pub fn nbytes(&self) -> usize {
        match self {
            StoredMat::F32(m) => m.nbytes(),
            StoredMat::Bf16(h) => h.nbytes(),
        }
    }
}

/// Cached attention outputs a strategy chose to keep.
#[derive(Debug, Clone)]
pub enum AttnCache {
    /// Per-head `(O, Lse)` for all local rows (selective checkpointing++).
    Full {
        o: Vec<StoredMat>,
        lse: Vec<Vec<f32>>,
    },
    /// Per-head `(O, Lse)` for local rows with global index `>= cutoff`
    /// only (sequence-level selective checkpointing).
    Tail {
        o_tail: Vec<StoredMat>,
        lse_tail: Vec<Vec<f32>>,
        cutoff: usize,
    },
}

impl AttnCache {
    pub fn nbytes(&self) -> usize {
        match self {
            AttnCache::Full { o, lse } => {
                o.iter().map(|m| m.nbytes()).sum::<usize>()
                    + lse.iter().map(|l| l.len() * 4).sum::<usize>()
            }
            AttnCache::Tail {
                o_tail, lse_tail, ..
            } => {
                o_tail.iter().map(|m| m.nbytes()).sum::<usize>()
                    + lse_tail.iter().map(|l| l.len() * 4).sum::<usize>()
            }
        }
    }
}

/// The checkpointing strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Store all activations (no recomputation).
    None,
    /// Classic gradient checkpointing: store block inputs only.
    Full,
    /// DISTFLASHATTN / LoongTrain selective checkpointing++: additionally
    /// store each attention's outputs so attention is never recomputed.
    SelectivePlusPlus,
    /// The paper's sequence-level selective checkpointing: store the tail
    /// `(1−ρ)` fraction of the attention outputs, recompute the front `ρ`.
    SeqSelective { rho: f32 },
}

/// What the forward kept for one block.
pub enum Stored {
    Everything(Box<BlockSaved>),
    InputOnly { x: StoredMat },
    WithCache { x: StoredMat, cache: AttnCache },
}

impl Stored {
    pub fn nbytes(&self) -> usize {
        match self {
            Stored::Everything(s) => s.nbytes(),
            Stored::InputOnly { x } => x.nbytes(),
            Stored::WithCache { x, cache } => x.nbytes() + cache.nbytes(),
        }
    }
}

/// Forward through all blocks, storing per `strategy`. Registers stored
/// bytes with the tracker (freed by [`backward_blocks`]).
pub fn forward_blocks<E: AttnExec>(
    blocks: &[TransformerBlock],
    x: &Mat,
    exec: &mut E,
    strategy: Strategy,
    seq_len: usize,
    tracker: &mut MemoryTracker,
) -> (Mat, Vec<Stored>) {
    forward_blocks_prec(
        blocks,
        x,
        exec,
        strategy,
        seq_len,
        tracker,
        ActPrecision::F32,
    )
}

/// [`forward_blocks`] at an explicit stash precision: under
/// [`ActPrecision::Bf16`] every kept block input and cached attention
/// output occupies 2 bytes per element, halving the tracked stash.
#[allow(clippy::too_many_arguments)]
pub fn forward_blocks_prec<E: AttnExec>(
    blocks: &[TransformerBlock],
    x: &Mat,
    exec: &mut E,
    strategy: Strategy,
    seq_len: usize,
    tracker: &mut MemoryTracker,
    precision: ActPrecision,
) -> (Mat, Vec<Stored>) {
    let mut cur = x.clone();
    let mut stored = Vec::with_capacity(blocks.len());
    for block in blocks {
        exec.span_begin(SpanKind::Layer, "layer_fwd");
        let input = cur.clone();
        let (y, saved) = block.forward(&cur, exec);
        let keep = match strategy {
            Strategy::None => Stored::Everything(Box::new(saved)),
            Strategy::Full => Stored::InputOnly {
                x: StoredMat::store(input, precision),
            },
            Strategy::SelectivePlusPlus => Stored::WithCache {
                x: StoredMat::store(input, precision),
                cache: AttnCache::Full {
                    o: saved
                        .mha
                        .o_heads
                        .iter()
                        .map(|m| StoredMat::store(m.clone(), precision))
                        .collect(),
                    lse: saved.mha.lse.clone(),
                },
            },
            Strategy::SeqSelective { rho } => {
                let cutoff = cutoff_for_masked(rho, seq_len, exec.mask());
                let idx = exec.local_indices();
                let tail_rows: Vec<usize> = idx
                    .iter()
                    .enumerate()
                    .filter(|(_, &g)| g >= cutoff)
                    .map(|(r, _)| r)
                    .collect();
                let o_tail: Vec<StoredMat> = saved
                    .mha
                    .o_heads
                    .iter()
                    .map(|m| StoredMat::store(m.gather_rows(&tail_rows), precision))
                    .collect();
                let lse_tail: Vec<Vec<f32>> = saved
                    .mha
                    .lse
                    .iter()
                    .map(|l| tail_rows.iter().map(|&r| l[r]).collect())
                    .collect();
                Stored::WithCache {
                    x: StoredMat::store(input, precision),
                    cache: AttnCache::Tail {
                        o_tail,
                        lse_tail,
                        cutoff,
                    },
                }
            }
        };
        tracker.alloc(keep.nbytes());
        exec.stash_push(keep.nbytes());
        stored.push(keep);
        cur = y;
        exec.span_end();
    }
    (cur, stored)
}

/// Round the split point to the sequence position `ρ·N`.
pub fn cutoff_for(rho: f32, seq_len: usize) -> usize {
    ((rho as f64 * seq_len as f64).round() as usize).min(seq_len)
}

/// Mask-aware split point for sequence-level selective checkpointing.
///
/// The paper's rule trades `ρ²` of the attention recompute for `(1−ρ)` of
/// the output stash, which is exact for causal attention: the front `ρ·N`
/// rows hold `ρ²` of the causal score pairs. A sparse mask keeps that
/// *absolute* recompute budget but makes each recomputed row cheaper (its
/// cost is its allowed-pair count, not its position), so the same budget
/// buys a longer recomputed front — segments the mask makes cheap are
/// recomputed rather than stashed. The cutoff is the largest prefix whose
/// masked recompute work stays within the causal-calibrated budget:
/// `allowed_pairs(c) ≤ ρ² · N(N+1)/2`. `Full` and `Causal` reduce to
/// [`cutoff_for`] (the paper's position rule), keeping every existing
/// schedule bit-identical.
pub fn cutoff_for_masked(rho: f32, seq_len: usize, mask: &AttnMask) -> usize {
    match mask {
        AttnMask::Full | AttnMask::Causal => cutoff_for(rho, seq_len),
        _ => {
            let causal_total = seq_len as f64 * (seq_len + 1) as f64 / 2.0;
            let budget = (rho as f64) * (rho as f64) * causal_total;
            // `allowed_pairs` is monotone in the prefix length: binary
            // search the largest prefix within the budget.
            let (mut lo, mut hi) = (0usize, seq_len);
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                if allowed_pairs(mask, mid, seq_len) as f64 <= budget {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            lo
        }
    }
}

/// Allowed `(q, k)` pairs with query index `< c`: the recompute work of
/// the front segment, in score-matrix elements.
fn allowed_pairs(mask: &AttnMask, c: usize, seq_len: usize) -> usize {
    (0..c)
        .map(|i| (0..seq_len).filter(|&j| mask.allowed(i, j)).count())
        .sum()
}

/// Backward through all blocks in reverse, recomputing per the stored kind.
/// Frees each block's stored bytes as it is consumed and accounts the
/// transient recompute working set.
pub fn backward_blocks<E: AttnExec>(
    blocks: &mut [TransformerBlock],
    stored: Vec<Stored>,
    grad_y: &Mat,
    exec: &mut E,
    tracker: &mut MemoryTracker,
) -> Mat {
    assert_eq!(
        blocks.len(),
        stored.len(),
        "backward_blocks: layer mismatch"
    );
    let mut grad = grad_y.clone();
    for (block, keep) in blocks.iter_mut().zip(stored).rev() {
        exec.span_begin(SpanKind::Layer, "layer_bwd");
        let kept_bytes = keep.nbytes();
        // Rebuilding discarded activations is recomputation: tag the time
        // so the trace splits it from first-run compute.
        let saved = match keep {
            Stored::Everything(saved) => *saved,
            Stored::InputOnly { x } => {
                exec.recompute_scope(true);
                let s = block.forward(&x.load(), exec).1;
                exec.recompute_scope(false);
                s
            }
            Stored::WithCache { x, cache } => {
                exec.recompute_scope(true);
                let s = block.forward_with_cache(&x.load(), exec, &cache).1;
                exec.recompute_scope(false);
                s
            }
        };
        // The rebuilt full context is transient: live only during this
        // block's backward.
        let transient = saved.nbytes().saturating_sub(kept_bytes);
        exec.note_workspace(transient);
        grad = tracker.with_transient(transient, |_t| block.backward(&saved, &grad, exec));
        tracker.free(kept_bytes);
        exec.stash_pop();
        exec.span_end();
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::LocalExec;
    use burst_kernels::AttnMask;
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::assert_allclose;

    fn blocks(d: usize, heads: usize, dff: usize, layers: usize) -> Vec<TransformerBlock> {
        (0..layers)
            .map(|l| TransformerBlock::new(d, heads, dff, 500 + 100 * l as u64))
            .collect()
    }

    fn run(strategy: Strategy) -> (Mat, Vec<Mat>, usize) {
        run_prec(strategy, ActPrecision::F32)
    }

    fn run_prec(strategy: Strategy, precision: ActPrecision) -> (Mat, Vec<Mat>, usize) {
        let (n, d, heads, dff, layers) = (16usize, 4usize, 2usize, 8usize, 3usize);
        let mut bs = blocks(d, heads, dff, layers);
        let x = randn_mat(n, d, 0.8, 600);
        let gy = randn_mat(n, d, 1.0, 601);
        let mut exec = LocalExec::new(AttnMask::Causal, n);
        let mut tracker = MemoryTracker::new();
        let (y, stored) =
            forward_blocks_prec(&bs, &x, &mut exec, strategy, n, &mut tracker, precision);
        let stored_peak = tracker.current();
        let gx = backward_blocks(&mut bs, stored, &gy, &mut exec, &mut tracker);
        let grads: Vec<Mat> = bs
            .iter()
            .flat_map(|b| {
                vec![
                    b.attn.wq.weight.grad.clone(),
                    b.ffn.w_down.weight.grad.clone(),
                    b.norm1.weight.grad.clone(),
                ]
            })
            .collect();
        let mut all = vec![y, gx];
        all.extend(grads);
        let out = all.remove(0);
        (out, all, stored_peak)
    }

    #[test]
    fn all_strategies_produce_identical_gradients() {
        let (y_ref, grads_ref, _) = run(Strategy::None);
        for strategy in [
            Strategy::Full,
            Strategy::SelectivePlusPlus,
            Strategy::SeqSelective { rho: 0.5 },
            Strategy::SeqSelective { rho: 0.25 },
        ] {
            let (y, grads, _) = run(strategy);
            assert_allclose(&y, &y_ref, 1e-5, &format!("{strategy:?} output"));
            for (g, gr) in grads.iter().zip(&grads_ref) {
                assert_allclose(g, gr, 1e-5, &format!("{strategy:?} grads"));
            }
        }
    }

    #[test]
    fn stored_memory_ordering_matches_figure_7() {
        let (_, _, m_none) = run(Strategy::None);
        let (_, _, m_full) = run(Strategy::Full);
        let (_, _, m_pp) = run(Strategy::SelectivePlusPlus);
        let (_, _, m_seq) = run(Strategy::SeqSelective { rho: 0.5 });
        assert!(m_full < m_seq, "full ckpt {m_full} < seq-selective {m_seq}");
        assert!(m_seq < m_pp, "seq-selective {m_seq} < selective++ {m_pp}");
        assert!(m_pp < m_none, "selective++ {m_pp} < no ckpt {m_none}");
        // Sequence-level at ρ=0.5 halves the attention-output storage of ++
        // (plus the shared block-input storage).
        let attn_pp = m_pp - m_full;
        let attn_seq = m_seq - m_full;
        let ratio = attn_seq as f64 / attn_pp as f64;
        assert!(
            (0.4..0.6).contains(&ratio),
            "tail storage should be ~half of ++: {ratio}"
        );
    }

    #[test]
    fn cutoff_rounds_correctly() {
        assert_eq!(cutoff_for(0.5, 16), 8);
        assert_eq!(cutoff_for(0.0, 16), 0);
        assert_eq!(cutoff_for(1.0, 16), 16);
        assert_eq!(cutoff_for(0.26, 100), 26);
    }

    #[test]
    fn masked_cutoff_reduces_to_position_rule_for_dense_masks() {
        for n in [16usize, 100] {
            for rho in [0.0f32, 0.25, 0.5, 1.0] {
                assert_eq!(
                    cutoff_for_masked(rho, n, &AttnMask::Causal),
                    cutoff_for(rho, n)
                );
                assert_eq!(
                    cutoff_for_masked(rho, n, &AttnMask::Full),
                    cutoff_for(rho, n)
                );
            }
        }
    }

    #[test]
    fn masked_cutoff_recomputes_more_under_a_window() {
        // Window rows cost O(w) to recompute instead of O(i): the same
        // causal-calibrated ρ² budget buys a longer recomputed front, so
        // the cutoff moves right and the stash shrinks.
        let n = 256;
        let mask = AttnMask::SlidingWindow { window: 64 };
        for rho in [0.5f32, 0.75] {
            let masked = cutoff_for_masked(rho, n, &mask);
            let causal = cutoff_for(rho, n);
            assert!(
                masked > causal,
                "rho {rho}: window cutoff {masked} must exceed causal {causal}"
            );
        }
        // A narrow enough window makes the whole sequence cheaper than the
        // budget: everything is recomputed, nothing stashed.
        assert_eq!(
            cutoff_for_masked(0.25, n, &AttnMask::SlidingWindow { window: 8 }),
            n
        );
        // Endpoints are preserved: no budget recomputes nothing, full
        // budget covers the (cheaper-than-causal) whole sequence.
        assert_eq!(cutoff_for_masked(0.0, n, &mask), 0);
        assert_eq!(cutoff_for_masked(1.0, n, &mask), n);
        // The budget rule is exact: the chosen prefix fits, the next row
        // does not.
        let rho = 0.5f32;
        let c = cutoff_for_masked(rho, n, &mask);
        assert!(c < n, "boundary check needs a mid-sequence cutoff");
        let budget = (rho as f64).powi(2) * (n as f64) * (n as f64 + 1.0) / 2.0;
        assert!(allowed_pairs(&mask, c, n) as f64 <= budget);
        assert!(allowed_pairs(&mask, c + 1, n) as f64 > budget);
    }

    #[test]
    fn masked_seq_selective_keeps_gradients_identical() {
        // The mask-aware cutoff only moves the stash/recompute split; the
        // rebuilt state must stay bit-compatible with the no-checkpoint
        // reference under the same mask.
        let (n, d, heads, dff, layers) = (16usize, 4usize, 2usize, 8usize, 2usize);
        let mask = AttnMask::SlidingWindow { window: 5 };
        let run = |strategy: Strategy| {
            let mut bs = blocks(d, heads, dff, layers);
            let x = randn_mat(n, d, 0.8, 610);
            let gy = randn_mat(n, d, 1.0, 611);
            let mut exec = LocalExec::new(mask.clone(), n);
            let mut tracker = MemoryTracker::new();
            let (y, stored) = forward_blocks(&bs, &x, &mut exec, strategy, n, &mut tracker);
            let stash = tracker.current();
            let gx = backward_blocks(&mut bs, stored, &gy, &mut exec, &mut tracker);
            let gw = bs[0].attn.wq.weight.grad.clone();
            (y, gx, gw, stash)
        };
        let (y_ref, gx_ref, gw_ref, _) = run(Strategy::None);
        let (y, gx, gw, stash_seq) = run(Strategy::SeqSelective { rho: 0.5 });
        assert_allclose(&y, &y_ref, 1e-5, "masked seq-selective output");
        assert_allclose(&gx, &gx_ref, 1e-5, "masked seq-selective ∇x");
        assert_allclose(&gw, &gw_ref, 1e-5, "masked seq-selective ∇W");
        // And the window stash is strictly below the full-cache stash.
        let (_, _, _, stash_pp) = run(Strategy::SelectivePlusPlus);
        assert!(
            stash_seq < stash_pp,
            "window stash {stash_seq} < selective++ {stash_pp}"
        );
    }

    #[test]
    fn seq_selective_with_rho_zero_equals_selective_pp() {
        // ρ = 0: nothing recomputed, everything cached — memory equals ++.
        let (_, _, m_pp) = run(Strategy::SelectivePlusPlus);
        let (_, _, m_seq0) = run(Strategy::SeqSelective { rho: 0.0 });
        assert_eq!(m_pp, m_seq0);
        // ρ = 1: everything recomputed — memory equals full checkpointing.
        let (_, _, m_full) = run(Strategy::Full);
        let (_, _, m_seq1) = run(Strategy::SeqSelective { rho: 1.0 });
        assert_eq!(m_full, m_seq1);
    }

    #[test]
    fn bf16_stash_halves_stored_peak() {
        // Strategy::Full stores only block-input matrices, so the bf16
        // stash is exactly half the f32 stash.
        let (_, _, f32_peak) = run_prec(Strategy::Full, ActPrecision::F32);
        let (_, _, bf16_peak) = run_prec(Strategy::Full, ActPrecision::Bf16);
        assert_eq!(bf16_peak * 2, f32_peak, "bf16 block-input stash");
        // Selective++ adds f32 Lse vectors to the stash, so the ratio sits
        // strictly between ½ (all-matrix) and 1.
        let (_, _, pp32) = run_prec(Strategy::SelectivePlusPlus, ActPrecision::F32);
        let (_, _, pp16) = run_prec(Strategy::SelectivePlusPlus, ActPrecision::Bf16);
        assert!(
            pp16 * 2 > pp32 && pp16 < pp32,
            "selective++ bf16 stash: {pp16} vs f32 {pp32}"
        );
    }

    #[test]
    fn bf16_stash_gradients_stay_close_to_f32() {
        // Recompute starts from bf16-rounded inputs. The ~0.4% input
        // rounding amplifies through three blocks of recompute, so the
        // bound is loose — what matters is that gradients stay the same
        // order, not bitwise (training tolerance, not kernel tolerance).
        let (y32, g32, _) = run_prec(Strategy::Full, ActPrecision::F32);
        let (y16, g16, _) = run_prec(Strategy::Full, ActPrecision::Bf16);
        assert_allclose(&y16, &y32, 1e-5, "bf16 stash forward output");
        assert_ne!(
            g16[0].as_slice(),
            g32[0].as_slice(),
            "bf16 rounding must actually perturb the recompute"
        );
        for (a, b) in g16.iter().zip(&g32) {
            assert_allclose(a, b, 1e-1, "bf16 stash grads");
        }
    }
}
