//! Model checkpoint persistence: serialize the full training state
//! (weights, gradients, Adam moments, configuration) so a run can stop and
//! resume bit-exactly — the operational counterpart of the paper's
//! long-duration 1M-token training jobs.
//!
//! Checkpoints are written **atomically** (payload goes to `<path>.tmp`,
//! then a single `rename` publishes it) and carry a versioned header with a
//! content checksum, so a reader can never observe a half-written file and
//! a bit-rotted or truncated checkpoint is rejected on load instead of
//! silently resuming from garbage:
//!
//! ```text
//! BURSTCKPT v1 len=<payload bytes> fnv=<hex checksum>\n
//! <payload: serde_json of the checkpointed value>
//! ```

use crate::model::Model;
use std::io;
use std::path::{Path, PathBuf};

/// Magic + format version written at the front of every checkpoint file.
pub const CKPT_MAGIC: &str = "BURSTCKPT";
/// Current checkpoint format version. v2 adds sharded checkpoints (one
/// payload per rank plus a checksummed manifest — see
/// [`crate::checkpoint_shard`]); the framing itself is unchanged, and v1
/// files remain readable.
pub const CKPT_VERSION: u32 = 2;
/// Oldest checkpoint format version this build still reads.
pub const CKPT_MIN_VERSION: u32 = 1;

/// FNV-1a over the payload bytes — the same cheap, dependency-free checksum
/// the communication layer uses to detect corrupted messages.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn invalid(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// Frame a serialized payload with the versioned header and checksum.
pub fn encode_checkpoint(payload: &[u8]) -> Vec<u8> {
    let header = format!(
        "{CKPT_MAGIC} v{CKPT_VERSION} len={} fnv={:#018x}\n",
        payload.len(),
        fnv1a(payload)
    );
    let mut out = Vec::with_capacity(header.len() + payload.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate the header of an encoded checkpoint and return the payload.
///
/// Rejects (with `io::ErrorKind::InvalidData`) anything that is not a
/// complete, uncorrupted checkpoint in a supported version
/// (v1–v2; the reader is backward-compatible): wrong magic, unknown
/// version, truncated payload, or a checksum mismatch.
pub fn decode_checkpoint(bytes: &[u8]) -> io::Result<&[u8]> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| invalid("checkpoint header missing terminating newline".into()))?;
    let header = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| invalid("checkpoint header is not valid UTF-8".into()))?;
    let mut fields = header.split_whitespace();
    let magic = fields.next().unwrap_or("");
    if magic != CKPT_MAGIC {
        return Err(invalid(format!(
            "bad checkpoint magic: expected {CKPT_MAGIC:?}, got {magic:?}"
        )));
    }
    let version = fields.next().unwrap_or("");
    let vnum: u32 = version
        .strip_prefix('v')
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if !(CKPT_MIN_VERSION..=CKPT_VERSION).contains(&vnum) {
        return Err(invalid(format!(
            "unsupported checkpoint version {version:?} \
             (this build reads v{CKPT_MIN_VERSION}..v{CKPT_VERSION})"
        )));
    }
    let len: usize = fields
        .next()
        .and_then(|f| f.strip_prefix("len="))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| invalid("checkpoint header missing len= field".into()))?;
    let fnv: u64 = fields
        .next()
        .and_then(|f| f.strip_prefix("fnv="))
        .and_then(|v| v.strip_prefix("0x"))
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| invalid("checkpoint header missing fnv= field".into()))?;
    let payload = &bytes[nl + 1..];
    if payload.len() != len {
        return Err(invalid(format!(
            "truncated checkpoint: header promises {len} payload bytes, file has {}",
            payload.len()
        )));
    }
    let got = fnv1a(payload);
    if got != fnv {
        return Err(invalid(format!(
            "checkpoint checksum mismatch: header says {fnv:#018x}, payload hashes to {got:#018x}"
        )));
    }
    Ok(payload)
}

/// The temporary staging path used by [`atomic_write`]: `<path>.tmp`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Crash-safe file replacement: write the full contents to `<path>.tmp`,
/// then `rename` over `path`. A crash before the rename leaves any previous
/// checkpoint at `path` untouched and loadable; the rename itself is atomic
/// on POSIX filesystems, so readers see either the old file or the new one,
/// never a prefix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

impl Model {
    /// Serialize the full training state to JSON bytes.
    pub fn to_json(&self) -> serde_json::Result<Vec<u8>> {
        serde_json::to_vec(self)
    }

    /// Restore a model (including optimizer state) from [`Model::to_json`]
    /// output.
    pub fn from_json(bytes: &[u8]) -> serde_json::Result<Model> {
        serde_json::from_slice(bytes)
    }

    /// Write a checkpoint file atomically (versioned header + checksum,
    /// staged via [`tmp_path`] and published by a single rename).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let payload = self
            .to_json()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        atomic_write(path.as_ref(), &encode_checkpoint(&payload))
    }

    /// Load a checkpoint file, validating the header and content checksum
    /// before deserializing.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Model> {
        let bytes = std::fs::read(path)?;
        let payload = decode_checkpoint(&bytes)?;
        Model::from_json(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::LocalExec;
    use crate::checkpoint::Strategy;
    use crate::model::{Model, ModelConfig};
    use crate::param::AdamCfg;
    use burst_kernels::AttnMask;

    fn toy(cfg: &ModelConfig) -> (Vec<usize>, Vec<usize>) {
        let tokens: Vec<usize> = (0..cfg.seq_len).map(|i| (i * 3 + 1) % cfg.vocab).collect();
        let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
        (tokens, targets)
    }

    fn step(m: &mut Model, cfg: &ModelConfig, t: u64) -> f32 {
        let (tokens, targets) = toy(cfg);
        let mut exec = LocalExec::new(AttnMask::Causal, cfg.seq_len);
        m.zero_grads();
        let out = m.train_step(&tokens, &targets, &mut exec, Strategy::None, cfg.seq_len);
        m.adam_step(&AdamCfg::default(), t);
        out.loss_sum
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let cfg = ModelConfig::tiny();
        let mut m = Model::new(cfg, 33);
        // Create non-trivial grads and optimizer state first.
        step(&mut m, &cfg, 1);
        let bytes = m.to_json().unwrap();
        let restored = Model::from_json(&bytes).unwrap();
        assert_eq!(restored.cfg, m.cfg);
        assert_eq!(restored.head.w, m.head.w);
        assert_eq!(restored.embed.table.grad, m.embed.table.grad);
        assert_eq!(
            restored.blocks[0].attn.wq.weight.w,
            m.blocks[0].attn.wq.weight.w
        );
    }

    #[test]
    fn resume_training_is_bit_identical_to_uninterrupted() {
        let cfg = ModelConfig::tiny();
        // Uninterrupted: 6 steps.
        let mut full = Model::new(cfg, 34);
        let mut full_losses = Vec::new();
        for t in 1..=6 {
            full_losses.push(step(&mut full, &cfg, t));
        }
        // Interrupted: 3 steps, checkpoint roundtrip, 3 more.
        let mut first = Model::new(cfg, 34);
        let mut losses = Vec::new();
        for t in 1..=3 {
            losses.push(step(&mut first, &cfg, t));
        }
        let mut resumed = Model::from_json(&first.to_json().unwrap()).unwrap();
        for t in 4..=6 {
            losses.push(step(&mut resumed, &cfg, t));
        }
        assert_eq!(
            losses, full_losses,
            "Adam moments must survive the roundtrip"
        );
        assert_eq!(resumed.head.w, full.head.w);
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let cfg = ModelConfig::tiny();
        let m = Model::new(cfg, 35);
        let dir = std::env::temp_dir().join("burstengine-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        m.save(&path).unwrap();
        let loaded = Model::load(&path).unwrap();
        assert_eq!(loaded.head.w, m.head.w);
        assert!(
            !tmp_path(&path).exists(),
            "atomic save must not leave a .tmp file behind"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_roundtrip_and_checksum() {
        let payload = b"hello checkpoint".to_vec();
        let framed = encode_checkpoint(&payload);
        assert!(framed.starts_with(b"BURSTCKPT v2 len=16 fnv=0x"));
        assert_eq!(decode_checkpoint(&framed).unwrap(), &payload[..]);
    }

    #[test]
    fn v1_checkpoints_remain_readable() {
        // A frame written by the v1 code path (same framing, old version
        // tag) must still decode — restore-after-upgrade compatibility.
        let payload = b"legacy payload";
        let header = format!(
            "BURSTCKPT v1 len={} fnv={:#018x}\n",
            payload.len(),
            fnv1a(payload)
        );
        let mut framed = header.into_bytes();
        framed.extend_from_slice(payload);
        assert_eq!(decode_checkpoint(&framed).unwrap(), &payload[..]);
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let mut framed = encode_checkpoint(b"some payload bytes");
        let last = framed.len() - 1;
        framed[last] ^= 0x01;
        let err = decode_checkpoint(&framed).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("checksum"),
            "error must name the checksum: {err}"
        );
    }

    #[test]
    fn truncated_and_foreign_files_are_rejected() {
        let framed = encode_checkpoint(b"payload");
        let truncated = &framed[..framed.len() - 2];
        assert!(decode_checkpoint(truncated)
            .unwrap_err()
            .to_string()
            .contains("truncated"));
        assert!(decode_checkpoint(b"NOTACKPT v1 len=0 fnv=0x0\n")
            .unwrap_err()
            .to_string()
            .contains("magic"));
        assert!(
            decode_checkpoint(b"BURSTCKPT v9 len=0 fnv=0x0000000000000000\n")
                .unwrap_err()
                .to_string()
                .contains("version")
        );
        assert!(decode_checkpoint(b"no newline at all").is_err());
    }

    #[test]
    fn interrupted_save_preserves_previous_checkpoint() {
        let cfg = ModelConfig::tiny();
        let m = Model::new(cfg, 36);
        let dir = std::env::temp_dir().join("burstengine-ckpt-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        m.save(&path).unwrap();
        // Simulate a crash mid-write: garbage lands in the staging file and
        // the rename never happens.
        std::fs::write(tmp_path(&path), b"half-written garbage").unwrap();
        let loaded = Model::load(&path).unwrap();
        assert_eq!(loaded.head.w, m.head.w);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(tmp_path(&path)).ok();
    }
}
