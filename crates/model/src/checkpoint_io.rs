//! Model checkpoint persistence: serialize the full training state
//! (weights, gradients, Adam moments, configuration) so a run can stop and
//! resume bit-exactly — the operational counterpart of the paper's
//! long-duration 1M-token training jobs.

use crate::model::Model;
use std::io;
use std::path::Path;

impl Model {
    /// Serialize the full training state to JSON bytes.
    pub fn to_json(&self) -> serde_json::Result<Vec<u8>> {
        serde_json::to_vec(self)
    }

    /// Restore a model (including optimizer state) from [`Model::to_json`]
    /// output.
    pub fn from_json(bytes: &[u8]) -> serde_json::Result<Model> {
        serde_json::from_slice(bytes)
    }

    /// Write a checkpoint file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let bytes = self
            .to_json()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, bytes)
    }

    /// Load a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Model> {
        let bytes = std::fs::read(path)?;
        Model::from_json(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use crate::attention::LocalExec;
    use crate::checkpoint::Strategy;
    use crate::model::{Model, ModelConfig};
    use crate::param::AdamCfg;
    use burst_kernels::AttnMask;

    fn toy(cfg: &ModelConfig) -> (Vec<usize>, Vec<usize>) {
        let tokens: Vec<usize> = (0..cfg.seq_len).map(|i| (i * 3 + 1) % cfg.vocab).collect();
        let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
        (tokens, targets)
    }

    fn step(m: &mut Model, cfg: &ModelConfig, t: u64) -> f32 {
        let (tokens, targets) = toy(cfg);
        let mut exec = LocalExec::new(AttnMask::Causal, cfg.seq_len);
        m.zero_grads();
        let out = m.train_step(&tokens, &targets, &mut exec, Strategy::None, cfg.seq_len);
        m.adam_step(&AdamCfg::default(), t);
        out.loss_sum
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let cfg = ModelConfig::tiny();
        let mut m = Model::new(cfg, 33);
        // Create non-trivial grads and optimizer state first.
        step(&mut m, &cfg, 1);
        let bytes = m.to_json().unwrap();
        let restored = Model::from_json(&bytes).unwrap();
        assert_eq!(restored.cfg, m.cfg);
        assert_eq!(restored.head.w, m.head.w);
        assert_eq!(restored.embed.table.grad, m.embed.table.grad);
        assert_eq!(
            restored.blocks[0].attn.wq.weight.w,
            m.blocks[0].attn.wq.weight.w
        );
    }

    #[test]
    fn resume_training_is_bit_identical_to_uninterrupted() {
        let cfg = ModelConfig::tiny();
        // Uninterrupted: 6 steps.
        let mut full = Model::new(cfg, 34);
        let mut full_losses = Vec::new();
        for t in 1..=6 {
            full_losses.push(step(&mut full, &cfg, t));
        }
        // Interrupted: 3 steps, checkpoint roundtrip, 3 more.
        let mut first = Model::new(cfg, 34);
        let mut losses = Vec::new();
        for t in 1..=3 {
            losses.push(step(&mut first, &cfg, t));
        }
        let mut resumed = Model::from_json(&first.to_json().unwrap()).unwrap();
        for t in 4..=6 {
            losses.push(step(&mut resumed, &cfg, t));
        }
        assert_eq!(
            losses, full_losses,
            "Adam moments must survive the roundtrip"
        );
        assert_eq!(resumed.head.w, full.head.w);
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let cfg = ModelConfig::tiny();
        let m = Model::new(cfg, 35);
        let dir = std::env::temp_dir().join("burstengine-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        m.save(&path).unwrap();
        let loaded = Model::load(&path).unwrap();
        assert_eq!(loaded.head.w, m.head.w);
        std::fs::remove_file(&path).ok();
    }
}
