//! Multi-head attention with pluggable execution backends.
//!
//! The projection math (`W_Q/W_K/W_V/W_attn` of Eq. 1) lives here; the
//! actual attention runs through an [`AttnExec`] implementation:
//!
//! * [`LocalExec`] — single-device blocked flash attention (the reference);
//! * [`DistExec`] — ring-family context parallelism (RingAttention,
//!   BurstAttention, DoubleRing, topology-aware Burst);
//! * [`UlyssesExec`] — DeepSpeed-Ulysses head parallelism;
//! * [`UspExec`] — LoongTrain's hybrid head+context parallelism.
//!
//! `backward` is self-contained (takes `q, k, v, o, lse` explicitly), so
//! gradient-checkpointing strategies can rebuild those tensors any way they
//! like — including the paper's sequence-level selective scheme, which
//! recomputes only the front of the sequence via
//! [`AttnExec::forward_partial`].

use crate::linear::{Linear, LinearSaved};
use crate::rope::{rope_apply, rope_backward, ROPE_THETA};
use burst_comm::{CommError, Communicator, SpanKind};
use burst_dattn::ulysses::{ulysses_backward, ulysses_forward};
use burst_dattn::usp::{usp_backward, usp_forward, UspTopo};
use burst_dattn::{
    burst_backward, double_ring, ring_backward, ring_forward, try_burst_backward,
    try_ring_backward, try_ring_forward, Algo, AttnFailure, AttnShard, BackwardInputs, CostModel,
    DoubleRingSpec, Layout, OverlapMode, Ring,
};
use burst_kernels::{flash_backward, flash_forward, AttnMask};
use burst_tensor::Mat;
use serde::{Deserialize, Serialize};

/// Per-head attention outputs of a forward pass.
pub type AttnOut = (Vec<Mat>, Vec<Vec<f32>>);

/// An attention execution backend: computes per-head attention over this
/// rank's rows, given per-head `Q/K/V` shards.
pub trait AttnExec {
    /// Forward: per-head `(O, Lse)` for the local rows.
    fn forward(&mut self, q: &[Mat], k: &[Mat], v: &[Mat]) -> AttnOut;

    /// Backward: per-head `(∇Q, ∇K, ∇V)` for the local rows, given the
    /// tensors the forward produced (however the caller obtained them).
    #[allow(clippy::too_many_arguments)]
    fn backward(
        &mut self,
        q: &[Mat],
        k: &[Mat],
        v: &[Mat],
        o: &[Mat],
        lse: &[Vec<f32>],
        grad_o: &[Mat],
    ) -> (Vec<Mat>, Vec<Mat>, Vec<Mat>);

    /// Recompute the attention outputs restricted to global tokens
    /// `< cutoff` (inputs are the local rows below the cutoff, in layout
    /// order). `None` when the backend does not support partial recompute.
    fn forward_partial(
        &mut self,
        _q: &[Mat],
        _k: &[Mat],
        _v: &[Mat],
        _cutoff: usize,
    ) -> Option<AttnOut> {
        None
    }

    /// Global token indices of this rank's local rows, in storage order.
    fn local_indices(&self) -> Vec<usize>;

    /// The attention mask this executor computes under. Drives the
    /// mask-aware sequence-selective checkpointing cutoff: sparse masks
    /// make front-segment recompute cheaper, so the same recompute budget
    /// buys a smaller stash.
    fn mask(&self) -> &AttnMask;

    /// Open a structural span on the rank's timeline (no-op for backends
    /// without a communicator). Layer-level instrumentation goes through
    /// these so `checkpoint.rs` stays backend-agnostic.
    fn span_begin(&mut self, _kind: SpanKind, _name: &'static str) {}

    /// Close the innermost open span (no-op without a communicator).
    fn span_end(&mut self) {}

    /// Enter/leave a recompute scope: compute charged inside is tagged
    /// `"recompute"` in the trace (no-op without a communicator).
    fn recompute_scope(&mut self, _enter: bool) {}

    /// Register `bytes` of checkpoint stash kept for one block, freed in
    /// reverse block order by [`AttnExec::stash_pop`] during the backward.
    /// Lands on the accountant's `CkptStash` lane (no-op without a
    /// communicator or with accounting off).
    fn stash_push(&mut self, _bytes: usize) {}

    /// Release the most recently pushed, still-open stash entry.
    fn stash_pop(&mut self) {}

    /// Note transient working-set bytes (recompute scratch, rebuilt block
    /// contexts) on the accountant's ungated `Workspace` lane.
    fn note_workspace(&mut self, _bytes: usize) {}
}

/// Single-device blocked flash attention.
pub struct LocalExec {
    pub mask: AttnMask,
    pub seq_len: usize,
}

impl LocalExec {
    pub fn new(mask: AttnMask, seq_len: usize) -> Self {
        LocalExec { mask, seq_len }
    }
}

fn head_scale(q: &Mat) -> f32 {
    1.0 / (q.cols() as f32).sqrt()
}

impl AttnExec for LocalExec {
    fn forward(&mut self, q: &[Mat], k: &[Mat], v: &[Mat]) -> AttnOut {
        let idx = self.local_indices();
        let mut o = Vec::with_capacity(q.len());
        let mut lse = Vec::with_capacity(q.len());
        for h in 0..q.len() {
            let out = flash_forward(
                &q[h],
                &k[h],
                &v[h],
                head_scale(&q[h]),
                &self.mask,
                &idx,
                &idx,
            );
            o.push(out.o);
            lse.push(out.lse);
        }
        (o, lse)
    }

    fn backward(
        &mut self,
        q: &[Mat],
        k: &[Mat],
        v: &[Mat],
        o: &[Mat],
        lse: &[Vec<f32>],
        grad_o: &[Mat],
    ) -> (Vec<Mat>, Vec<Mat>, Vec<Mat>) {
        let idx = self.local_indices();
        let mut dq = Vec::with_capacity(q.len());
        let mut dk = Vec::with_capacity(q.len());
        let mut dv = Vec::with_capacity(q.len());
        for h in 0..q.len() {
            let (a, b, c, _) = flash_backward(
                &q[h],
                &k[h],
                &v[h],
                &o[h],
                &grad_o[h],
                &lse[h],
                head_scale(&q[h]),
                &self.mask,
                &idx,
                &idx,
            );
            dq.push(a);
            dk.push(b);
            dv.push(c);
        }
        (dq, dk, dv)
    }

    fn forward_partial(
        &mut self,
        q: &[Mat],
        k: &[Mat],
        v: &[Mat],
        cutoff: usize,
    ) -> Option<AttnOut> {
        let idx: Vec<usize> = (0..cutoff.min(self.seq_len)).collect();
        let mut o = Vec::with_capacity(q.len());
        let mut lse = Vec::with_capacity(q.len());
        for h in 0..q.len() {
            let out = flash_forward(
                &q[h],
                &k[h],
                &v[h],
                head_scale(&q[h]),
                &self.mask,
                &idx,
                &idx,
            );
            o.push(out.o);
            lse.push(out.lse);
        }
        Some((o, lse))
    }

    fn local_indices(&self) -> Vec<usize> {
        (0..self.seq_len).collect()
    }

    fn mask(&self) -> &AttnMask {
        &self.mask
    }
}

/// Ring-family context parallelism on the simulated cluster.
pub struct DistExec<'a> {
    pub comm: &'a mut Communicator,
    pub algo: Algo,
    pub layout: Layout,
    pub mask: AttnMask,
    pub seq_len: usize,
    pub cost: CostModel,
    /// Overlap discipline for the flat-ring backward passes (the paper's
    /// fine-grained overlap ablation knob; the topology-aware algorithms
    /// have their schedule built in).
    pub overlap: OverlapMode,
    /// Mask-aware round skipping: fully-masked ring rounds are elided
    /// (no wire traffic, no compute, no virtual time) while remaining
    /// bit-identical to the dense schedule. Off by default.
    pub skip: bool,
}

impl<'a> DistExec<'a> {
    pub fn new(
        comm: &'a mut Communicator,
        algo: Algo,
        layout: Layout,
        mask: AttnMask,
        seq_len: usize,
        cost: CostModel,
    ) -> Self {
        DistExec {
            comm,
            algo,
            layout,
            mask,
            seq_len,
            cost,
            overlap: OverlapMode::Fine,
            skip: false,
        }
    }

    fn fwd_one(&mut self, q: &Mat, k: &Mat, v: &Mat, cutoff: Option<usize>) -> (Mat, Vec<f32>) {
        let shard = AttnShard {
            q,
            k,
            v,
            scale: head_scale(q),
            mask: &self.mask,
            layout: self.layout,
            seq_len: self.seq_len,
            cost: self.cost,
            max_token: cutoff,
            skip: self.skip,
        };
        let out = match self.algo {
            Algo::RingFlat | Algo::BurstFlat => {
                let ring = Ring::global(self.comm);
                ring_forward(self.comm, &ring, &shard)
            }
            Algo::DoubleRing | Algo::BurstTopo => {
                double_ring::double_ring_forward(self.comm, &shard)
            }
        };
        (out.o, out.lse)
    }
}

impl AttnExec for DistExec<'_> {
    fn forward(&mut self, q: &[Mat], k: &[Mat], v: &[Mat]) -> AttnOut {
        let mut o = Vec::with_capacity(q.len());
        let mut lse = Vec::with_capacity(q.len());
        for h in 0..q.len() {
            let (oh, lh) = self.fwd_one(&q[h], &k[h], &v[h], None);
            o.push(oh);
            lse.push(lh);
        }
        (o, lse)
    }

    fn backward(
        &mut self,
        q: &[Mat],
        k: &[Mat],
        v: &[Mat],
        o: &[Mat],
        lse: &[Vec<f32>],
        grad_o: &[Mat],
    ) -> (Vec<Mat>, Vec<Mat>, Vec<Mat>) {
        let mut dq = Vec::with_capacity(q.len());
        let mut dk = Vec::with_capacity(q.len());
        let mut dv = Vec::with_capacity(q.len());
        for h in 0..q.len() {
            let shard = AttnShard {
                q: &q[h],
                k: &k[h],
                v: &v[h],
                scale: head_scale(&q[h]),
                mask: &self.mask,
                layout: self.layout,
                seq_len: self.seq_len,
                cost: self.cost,
                max_token: None,
                skip: self.skip,
            };
            let back = BackwardInputs {
                o: &o[h],
                lse: &lse[h],
                grad_o: &grad_o[h],
            };
            let (a, b, c) = match self.algo {
                Algo::RingFlat => {
                    let ring = Ring::global(self.comm);
                    ring_backward(self.comm, &ring, &shard, &back, self.overlap)
                }
                Algo::BurstFlat => {
                    let ring = Ring::global(self.comm);
                    burst_backward(self.comm, &ring, &shard, &back, self.overlap)
                }
                Algo::DoubleRing => {
                    double_ring::double_ring_backward_alg1(self.comm, &shard, &back)
                }
                Algo::BurstTopo => double_ring::double_ring_backward_alg2(self.comm, &shard, &back),
            };
            dq.push(a);
            dk.push(b);
            dv.push(c);
        }
        (dq, dk, dv)
    }

    fn forward_partial(
        &mut self,
        q: &[Mat],
        k: &[Mat],
        v: &[Mat],
        cutoff: usize,
    ) -> Option<AttnOut> {
        let mut o = Vec::with_capacity(q.len());
        let mut lse = Vec::with_capacity(q.len());
        for h in 0..q.len() {
            let (oh, lh) = self.fwd_one(&q[h], &k[h], &v[h], Some(cutoff));
            o.push(oh);
            lse.push(lh);
        }
        Some((o, lse))
    }

    fn local_indices(&self) -> Vec<usize> {
        self.layout
            .indices(self.seq_len, self.comm.world_size(), self.comm.rank())
    }

    fn mask(&self) -> &AttnMask {
        &self.mask
    }

    fn span_begin(&mut self, kind: SpanKind, name: &'static str) {
        self.comm.span_begin(kind, name);
    }

    fn span_end(&mut self) {
        self.comm.span_end();
    }

    fn recompute_scope(&mut self, enter: bool) {
        self.comm.recompute_scope(enter);
    }

    fn stash_push(&mut self, bytes: usize) {
        self.comm.mem_stash_push(bytes as u64);
    }

    fn stash_pop(&mut self) {
        self.comm.mem_stash_pop();
    }

    fn note_workspace(&mut self, bytes: usize) {
        self.comm.mem_note_workspace(bytes as u64);
    }
}

/// Membership-aware ring attention for **in-step recovery**: [`DistExec`]
/// over the current alive set, but a communication fault returns control to
/// the engine instead of aborting the process.
///
/// The model's layer stack drives [`AttnExec`] infallibly, so the first
/// fault is *latched*: the failing call yields zero-shaped outputs and every
/// later call short-circuits without touching the wire. The train step then
/// unwinds cheaply; the engine reads [`ElasticExec::take_failure`], agrees
/// on the eviction with the survivors and replays the step on the shrunken
/// ring.
///
/// Bit-identity: the ring is the ascending alive set with this rank at its
/// membership position, so a `g'`-member step reproduces a fresh `g'`-world
/// step bit-for-bit. Topology-aware algorithms run on a
/// [`DoubleRingSpec`] when the survivors preserve node balance and fall
/// back to the flat ring (counted) when they are ragged.
pub struct ElasticExec<'a> {
    pub comm: &'a mut Communicator,
    /// Alive ranks in ascending order (the elastic ring).
    members: Vec<usize>,
    /// This rank's position within `members`.
    pos: usize,
    pub algo: Algo,
    pub layout: Layout,
    pub mask: AttnMask,
    pub seq_len: usize,
    pub cost: CostModel,
    pub overlap: OverlapMode,
    /// Mask-aware round skipping on the elastic ring (off by default).
    pub skip: bool,
    /// Two-level geometry over the alive set (topology-aware algorithms
    /// with node-balanced survivors only).
    spec: Option<DoubleRingSpec>,
    /// A topology-aware algorithm had to run on the flat ring because the
    /// survivor pattern is ragged across nodes.
    flat_fallback: bool,
    /// First communication fault observed; latched until taken.
    failure: Option<CommError>,
}

impl<'a> ElasticExec<'a> {
    /// Panics if the calling rank is not in `members`.
    pub fn new(
        comm: &'a mut Communicator,
        members: Vec<usize>,
        algo: Algo,
        layout: Layout,
        mask: AttnMask,
        seq_len: usize,
        cost: CostModel,
    ) -> Self {
        let pos = members
            .iter()
            .position(|&m| m == comm.rank())
            .expect("ElasticExec: calling rank not in member list");
        let topo_algo = matches!(algo, Algo::DoubleRing | Algo::BurstTopo);
        let spec = if topo_algo {
            DoubleRingSpec::from_members(comm.topology(), &members)
        } else {
            None
        };
        let flat_fallback = topo_algo && spec.is_none();
        ElasticExec {
            comm,
            members,
            pos,
            algo,
            layout,
            mask,
            seq_len,
            cost,
            overlap: OverlapMode::Fine,
            skip: false,
            spec,
            flat_fallback,
            failure: None,
        }
    }

    /// The fault that stopped this step, if any (cleared on read).
    pub fn take_failure(&mut self) -> Option<CommError> {
        self.failure.take()
    }

    /// Whether a topology-aware algorithm ran flat because the survivors
    /// are ragged across nodes.
    pub fn flat_fallback(&self) -> bool {
        self.flat_fallback
    }

    /// Members of the current elastic ring, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    fn ring(&self) -> Ring {
        Ring {
            members: self.members.clone(),
            pos: self.pos,
        }
    }

    fn latch(&mut self, e: AttnFailure) {
        if self.failure.is_none() {
            self.failure = Some(e.source);
        }
    }

    fn fwd_one(
        &mut self,
        q: &Mat,
        k: &Mat,
        v: &Mat,
        cutoff: Option<usize>,
    ) -> Result<(Mat, Vec<f32>), AttnFailure> {
        let shard = AttnShard {
            q,
            k,
            v,
            scale: head_scale(q),
            mask: &self.mask,
            layout: self.layout,
            seq_len: self.seq_len,
            cost: self.cost,
            max_token: cutoff,
            skip: self.skip,
        };
        let out = match &self.spec {
            Some(spec) => double_ring::try_double_ring_forward_on(self.comm, &shard, spec)?,
            None => {
                let ring = self.ring();
                try_ring_forward(self.comm, &ring, &shard)?
            }
        };
        Ok((out.o, out.lse))
    }
}

impl AttnExec for ElasticExec<'_> {
    fn forward(&mut self, q: &[Mat], k: &[Mat], v: &[Mat]) -> AttnOut {
        let mut o = Vec::with_capacity(q.len());
        let mut lse = Vec::with_capacity(q.len());
        for h in 0..q.len() {
            if self.failure.is_none() {
                match self.fwd_one(&q[h], &k[h], &v[h], None) {
                    Ok((oh, lh)) => {
                        o.push(oh);
                        lse.push(lh);
                        continue;
                    }
                    Err(e) => self.latch(e),
                }
            }
            o.push(Mat::zeros(q[h].rows(), v[h].cols()));
            lse.push(vec![0.0; q[h].rows()]);
        }
        (o, lse)
    }

    fn backward(
        &mut self,
        q: &[Mat],
        k: &[Mat],
        v: &[Mat],
        o: &[Mat],
        lse: &[Vec<f32>],
        grad_o: &[Mat],
    ) -> (Vec<Mat>, Vec<Mat>, Vec<Mat>) {
        let mut dq = Vec::with_capacity(q.len());
        let mut dk = Vec::with_capacity(q.len());
        let mut dv = Vec::with_capacity(q.len());
        for h in 0..q.len() {
            if self.failure.is_none() {
                let shard = AttnShard {
                    q: &q[h],
                    k: &k[h],
                    v: &v[h],
                    scale: head_scale(&q[h]),
                    mask: &self.mask,
                    layout: self.layout,
                    seq_len: self.seq_len,
                    cost: self.cost,
                    max_token: None,
                    skip: self.skip,
                };
                let back = BackwardInputs {
                    o: &o[h],
                    lse: &lse[h],
                    grad_o: &grad_o[h],
                };
                let res = match (&self.spec, self.algo) {
                    (Some(spec), Algo::DoubleRing) => {
                        double_ring::try_double_ring_backward_alg1_on(
                            self.comm, &shard, &back, spec,
                        )
                    }
                    (Some(spec), _) => double_ring::try_double_ring_backward_alg2_on(
                        self.comm, &shard, &back, spec,
                    ),
                    (None, Algo::RingFlat | Algo::DoubleRing) => {
                        let ring = self.ring();
                        try_ring_backward(self.comm, &ring, &shard, &back, self.overlap)
                    }
                    (None, Algo::BurstFlat | Algo::BurstTopo) => {
                        let ring = self.ring();
                        try_burst_backward(self.comm, &ring, &shard, &back, self.overlap)
                    }
                };
                match res {
                    Ok((a, b, c)) => {
                        dq.push(a);
                        dk.push(b);
                        dv.push(c);
                        continue;
                    }
                    Err(e) => self.latch(e),
                }
            }
            dq.push(Mat::zeros(q[h].rows(), q[h].cols()));
            dk.push(Mat::zeros(k[h].rows(), k[h].cols()));
            dv.push(Mat::zeros(v[h].rows(), v[h].cols()));
        }
        (dq, dk, dv)
    }

    fn forward_partial(
        &mut self,
        q: &[Mat],
        k: &[Mat],
        v: &[Mat],
        cutoff: usize,
    ) -> Option<AttnOut> {
        let mut o = Vec::with_capacity(q.len());
        let mut lse = Vec::with_capacity(q.len());
        for h in 0..q.len() {
            if self.failure.is_none() {
                match self.fwd_one(&q[h], &k[h], &v[h], Some(cutoff)) {
                    Ok((oh, lh)) => {
                        o.push(oh);
                        lse.push(lh);
                        continue;
                    }
                    Err(e) => self.latch(e),
                }
            }
            o.push(Mat::zeros(q[h].rows(), v[h].cols()));
            lse.push(vec![0.0; q[h].rows()]);
        }
        Some((o, lse))
    }

    fn local_indices(&self) -> Vec<usize> {
        self.layout
            .indices(self.seq_len, self.members.len(), self.pos)
    }

    fn mask(&self) -> &AttnMask {
        &self.mask
    }

    fn span_begin(&mut self, kind: SpanKind, name: &'static str) {
        self.comm.span_begin(kind, name);
    }

    fn span_end(&mut self) {
        self.comm.span_end();
    }

    fn recompute_scope(&mut self, enter: bool) {
        self.comm.recompute_scope(enter);
    }

    fn stash_push(&mut self, bytes: usize) {
        self.comm.mem_stash_push(bytes as u64);
    }

    fn stash_pop(&mut self) {
        self.comm.mem_stash_pop();
    }

    fn note_workspace(&mut self, bytes: usize) {
        self.comm.mem_note_workspace(bytes as u64);
    }
}

/// DeepSpeed-Ulysses backend (global group, contiguous sequence chunks).
pub struct UlyssesExec<'a> {
    pub comm: &'a mut Communicator,
    pub mask: AttnMask,
    pub seq_len: usize,
    pub cost: CostModel,
}

impl UlyssesExec<'_> {
    fn members(&self) -> Vec<usize> {
        (0..self.comm.world_size()).collect()
    }

    fn member_idx(&self) -> Vec<Vec<usize>> {
        let g = self.comm.world_size();
        (0..g)
            .map(|m| Layout::Contiguous.indices(self.seq_len, g, m))
            .collect()
    }
}

impl AttnExec for UlyssesExec<'_> {
    fn forward(&mut self, q: &[Mat], k: &[Mat], v: &[Mat]) -> AttnOut {
        let members = self.members();
        let idx = self.member_idx();
        let scale = head_scale(&q[0]);
        let (o, _saved) = ulysses_forward(
            self.comm, &members, &idx, q, k, v, scale, &self.mask, &self.cost,
        )
        .expect("Ulysses infeasible for this head/rank combination");
        // Ulysses' Lse lives head-sharded on the owning rank; `backward`
        // rebuilds everything it needs from (q, k, v) — the recompute that
        // gradient checkpointing (the paper's evaluation setting) implies —
        // so the per-row Lse is never consumed and is returned as NaN
        // placeholders of the right shape.
        let lse = vec![vec![f32::NAN; idx[self.comm.rank()].len()]; q.len()];
        (o, lse)
    }

    fn backward(
        &mut self,
        q: &[Mat],
        k: &[Mat],
        v: &[Mat],
        o: &[Mat],
        _lse: &[Vec<f32>],
        grad_o: &[Mat],
    ) -> (Vec<Mat>, Vec<Mat>, Vec<Mat>) {
        let members = self.members();
        let idx = self.member_idx();
        let scale = head_scale(&q[0]);
        let _ = o;
        // Rebuild the head-sharded state (including a fresh forward for the
        // Lse — Ulysses under gradient checkpointing recomputes attention).
        self.comm.recompute_scope(true);
        let saved = ulysses_forward(
            self.comm, &members, &idx, q, k, v, scale, &self.mask, &self.cost,
        )
        .map(|(_, s)| s);
        self.comm.recompute_scope(false);
        let saved = saved.expect("Ulysses infeasible");
        let (dq, dk, dv) = ulysses_backward(
            self.comm, &members, &idx, &saved, grad_o, scale, &self.mask, &self.cost,
        )
        .expect("Ulysses infeasible");
        (dq, dk, dv)
    }

    fn local_indices(&self) -> Vec<usize> {
        Layout::Contiguous.indices(self.seq_len, self.comm.world_size(), self.comm.rank())
    }

    fn mask(&self) -> &AttnMask {
        &self.mask
    }

    fn span_begin(&mut self, kind: SpanKind, name: &'static str) {
        self.comm.span_begin(kind, name);
    }

    fn span_end(&mut self) {
        self.comm.span_end();
    }

    fn recompute_scope(&mut self, enter: bool) {
        self.comm.recompute_scope(enter);
    }

    fn stash_push(&mut self, bytes: usize) {
        self.comm.mem_stash_push(bytes as u64);
    }

    fn stash_pop(&mut self) {
        self.comm.mem_stash_pop();
    }

    fn note_workspace(&mut self, bytes: usize) {
        self.comm.mem_note_workspace(bytes as u64);
    }
}

/// LoongTrain USP backend.
pub struct UspExec<'a> {
    pub comm: &'a mut Communicator,
    pub ulysses_size: usize,
    pub mask: AttnMask,
    pub seq_len: usize,
    pub cost: CostModel,
    /// Mask-aware round skipping on the context-parallel ring legs (the
    /// all-to-alls are mask-independent). Off by default.
    pub skip: bool,
}

impl AttnExec for UspExec<'_> {
    fn forward(&mut self, q: &[Mat], k: &[Mat], v: &[Mat]) -> AttnOut {
        let topo = UspTopo::new(self.comm, self.ulysses_size).with_skip(self.skip);
        let scale = head_scale(&q[0]);
        let (o, saved) = usp_forward(
            self.comm,
            &topo,
            q,
            k,
            v,
            scale,
            &self.mask,
            self.seq_len,
            &self.cost,
        )
        .expect("USP infeasible for this head/group combination");
        let _ = saved;
        let rows = o[0].rows();
        let lse = vec![vec![f32::NAN; rows]; q.len()];
        (o, lse)
    }

    fn backward(
        &mut self,
        q: &[Mat],
        k: &[Mat],
        v: &[Mat],
        o: &[Mat],
        _lse: &[Vec<f32>],
        grad_o: &[Mat],
    ) -> (Vec<Mat>, Vec<Mat>, Vec<Mat>) {
        let topo = UspTopo::new(self.comm, self.ulysses_size).with_skip(self.skip);
        let scale = head_scale(&q[0]);
        let _ = o;
        self.comm.recompute_scope(true);
        let saved = usp_forward(
            self.comm,
            &topo,
            q,
            k,
            v,
            scale,
            &self.mask,
            self.seq_len,
            &self.cost,
        )
        .map(|(_, s)| s);
        self.comm.recompute_scope(false);
        let saved = saved.expect("USP infeasible");
        let (dq, dk, dv) = usp_backward(
            self.comm,
            &topo,
            &saved,
            grad_o,
            scale,
            &self.mask,
            self.seq_len,
            &self.cost,
        )
        .expect("USP infeasible");
        (dq, dk, dv)
    }

    fn local_indices(&self) -> Vec<usize> {
        let topo = UspTopo::new(self.comm, self.ulysses_size);
        topo.local_idx(self.seq_len)
    }

    fn mask(&self) -> &AttnMask {
        &self.mask
    }

    fn span_begin(&mut self, kind: SpanKind, name: &'static str) {
        self.comm.span_begin(kind, name);
    }

    fn span_end(&mut self) {
        self.comm.span_end();
    }

    fn recompute_scope(&mut self, enter: bool) {
        self.comm.recompute_scope(enter);
    }

    fn stash_push(&mut self, bytes: usize) {
        self.comm.mem_stash_push(bytes as u64);
    }

    fn stash_pop(&mut self) {
        self.comm.mem_stash_pop();
    }

    fn note_workspace(&mut self, bytes: usize) {
        self.comm.mem_note_workspace(bytes as u64);
    }
}

/// Multi-head attention module: QKV projections + backend + output
/// projection (Eq. 1's `W_Q, W_K, W_V, W_attn`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub heads: usize,
    /// Number of key/value heads (grouped-query attention); `heads` query
    /// heads share `kv_heads` K/V projections. `kv_heads == heads` is
    /// classic multi-head attention.
    pub kv_heads: usize,
    /// Apply rotary position embeddings to Q and K (LLaMA). Positions are
    /// the backend's global token indices, so distributed shards rotate
    /// consistently with the single-device reference.
    pub rope: bool,
}

/// Saved forward context of the attention module.
#[derive(Debug, Clone)]
pub struct MhaSaved {
    /// Input to the three projections.
    pub proj_in: LinearSaved,
    pub q_heads: Vec<Mat>,
    pub k_heads: Vec<Mat>,
    pub v_heads: Vec<Mat>,
    pub o_heads: Vec<Mat>,
    pub lse: Vec<Vec<f32>>,
}

impl MhaSaved {
    pub fn nbytes(&self) -> usize {
        let mats = |v: &Vec<Mat>| v.iter().map(|m| m.nbytes()).sum::<usize>();
        self.proj_in.nbytes()
            + mats(&self.q_heads)
            + mats(&self.k_heads)
            + mats(&self.v_heads)
            + mats(&self.o_heads)
            + self.lse.iter().map(|l| l.len() * 4).sum::<usize>()
    }

    /// Bytes attributable to the attention outputs `(O, Lse)` — what
    /// selective checkpointing++ stores.
    pub fn attn_out_nbytes(&self) -> usize {
        self.o_heads.iter().map(|m| m.nbytes()).sum::<usize>()
            + self.lse.iter().map(|l| l.len() * 4).sum::<usize>()
    }
}

fn split_heads(x: &Mat, heads: usize) -> Vec<Mat> {
    let dh = x.cols() / heads;
    (0..heads)
        .map(|h| x.slice_cols(h * dh, (h + 1) * dh))
        .collect()
}

impl MultiHeadAttention {
    pub fn new(d_model: usize, heads: usize, seed: u64) -> Self {
        Self::new_gqa(d_model, heads, heads, seed)
    }

    /// Grouped-query attention: `heads` query heads share `kv_heads`
    /// key/value projections (`heads % kv_heads == 0`).
    pub fn new_gqa(d_model: usize, heads: usize, kv_heads: usize, seed: u64) -> Self {
        assert_eq!(d_model % heads, 0, "MHA: d_model must divide by heads");
        assert!(
            kv_heads > 0 && heads.is_multiple_of(kv_heads),
            "MHA: heads ({heads}) must divide by kv_heads ({kv_heads})"
        );
        let dh = d_model / heads;
        MultiHeadAttention {
            wq: Linear::new(d_model, d_model, seed),
            wk: Linear::new(kv_heads * dh, d_model, seed + 1),
            wv: Linear::new(kv_heads * dh, d_model, seed + 2),
            wo: Linear::new(d_model, d_model, seed + 3),
            heads,
            kv_heads,
            rope: false,
        }
    }

    /// Expand `kv_heads` tensors to one per query head (GQA sharing).
    fn expand_kv(&self, kv: Vec<Mat>) -> Vec<Mat> {
        if self.kv_heads == self.heads {
            return kv;
        }
        let group = self.heads / self.kv_heads;
        (0..self.heads).map(|h| kv[h / group].clone()).collect()
    }

    /// Sum per-query-head gradients back onto their shared KV heads.
    fn reduce_kv(&self, grads: Vec<Mat>) -> Vec<Mat> {
        if self.kv_heads == self.heads {
            return grads;
        }
        let group = self.heads / self.kv_heads;
        let mut out: Vec<Mat> = Vec::with_capacity(self.kv_heads);
        for kvh in 0..self.kv_heads {
            let mut acc = grads[kvh * group].clone();
            for g in 1..group {
                acc.add_assign(&grads[kvh * group + g]);
            }
            out.push(acc);
        }
        out
    }

    /// Rotate per-head Q/K by their global positions (no-op when `rope` is
    /// off).
    fn maybe_rope<E: AttnExec>(&self, heads: &mut [Mat], exec: &E) {
        if !self.rope {
            return;
        }
        let idx = exec.local_indices();
        for h in heads.iter_mut() {
            assert_eq!(h.cols() % 2, 0, "RoPE needs an even head dimension");
            *h = rope_apply(h, &idx, ROPE_THETA);
        }
    }

    pub fn forward<E: AttnExec>(&self, x: &Mat, exec: &mut E) -> (Mat, MhaSaved) {
        let q = self.wq.forward_nosave(x);
        let k = self.wk.forward_nosave(x);
        let v = self.wv.forward_nosave(x);
        let mut q_heads = split_heads(&q, self.heads);
        let mut kv_k = split_heads(&k, self.kv_heads);
        let kv_v = split_heads(&v, self.kv_heads);
        self.maybe_rope(&mut q_heads, exec);
        self.maybe_rope(&mut kv_k, exec);
        let k_heads = self.expand_kv(kv_k);
        let v_heads = self.expand_kv(kv_v);
        let (o_heads, lse) = exec.forward(&q_heads, &k_heads, &v_heads);
        let merged = Mat::hstack(&o_heads);
        let y = self.wo.forward_nosave(&merged);
        (
            y,
            MhaSaved {
                proj_in: LinearSaved { x: x.clone() },
                q_heads,
                k_heads,
                v_heads,
                o_heads,
                lse,
            },
        )
    }

    /// Forward that injects cached attention outputs instead of running the
    /// backend (selective checkpointing++), or recomputes only the front
    /// segment and stitches in the cached tail (sequence-level selective).
    pub fn forward_with_cache<E: AttnExec>(
        &self,
        x: &Mat,
        exec: &mut E,
        cache: &crate::checkpoint::AttnCache,
    ) -> (Mat, MhaSaved) {
        use crate::checkpoint::AttnCache;
        let q = self.wq.forward_nosave(x);
        let k = self.wk.forward_nosave(x);
        let v = self.wv.forward_nosave(x);
        let mut q_heads = split_heads(&q, self.heads);
        let mut kv_k = split_heads(&k, self.kv_heads);
        let kv_v = split_heads(&v, self.kv_heads);
        self.maybe_rope(&mut q_heads, exec);
        self.maybe_rope(&mut kv_k, exec);
        let k_heads = self.expand_kv(kv_k);
        let v_heads = self.expand_kv(kv_v);
        let (o_heads, lse) = match cache {
            AttnCache::Full { o, lse } => (
                o.iter().map(|m| m.load()).collect::<Vec<Mat>>(),
                lse.clone(),
            ),
            AttnCache::Tail {
                o_tail,
                lse_tail,
                cutoff,
            } => {
                let idx = exec.local_indices();
                let front_rows: Vec<usize> = idx
                    .iter()
                    .enumerate()
                    .filter(|(_, &g)| g < *cutoff)
                    .map(|(r, _)| r)
                    .collect();
                let tail_rows: Vec<usize> = idx
                    .iter()
                    .enumerate()
                    .filter(|(_, &g)| g >= *cutoff)
                    .map(|(r, _)| r)
                    .collect();
                let q_sub: Vec<Mat> = q_heads.iter().map(|m| m.gather_rows(&front_rows)).collect();
                let k_sub: Vec<Mat> = k_heads.iter().map(|m| m.gather_rows(&front_rows)).collect();
                let v_sub: Vec<Mat> = v_heads.iter().map(|m| m.gather_rows(&front_rows)).collect();
                let partial = exec.forward_partial(&q_sub, &k_sub, &v_sub, *cutoff);
                let (o_front, lse_front) = match partial {
                    Some(out) => out,
                    // Backends without partial recompute (Ulysses/USP)
                    // recompute the full attention instead — the memory
                    // saving of the tail cache still applies, only the
                    // compute saving is lost.
                    None => {
                        let (o, lse) = exec.forward(&q_heads, &k_heads, &v_heads);
                        let o_front: Vec<Mat> =
                            o.iter().map(|m| m.gather_rows(&front_rows)).collect();
                        let lse_front: Vec<Vec<f32>> = lse
                            .iter()
                            .map(|l| front_rows.iter().map(|&r| l[r]).collect())
                            .collect();
                        (o_front, lse_front)
                    }
                };
                // Stitch front (recomputed) and tail (cached) rows back into
                // local order.
                let rows = idx.len();
                let dh = q_heads[0].cols();
                let mut o = Vec::with_capacity(self.heads);
                let mut lse_full = Vec::with_capacity(self.heads);
                for h in 0..self.heads {
                    let mut oh = Mat::zeros(rows, dh);
                    let mut lh = vec![0.0f32; rows];
                    for (sub, &r) in front_rows.iter().enumerate() {
                        oh.row_mut(r).copy_from_slice(o_front[h].row(sub));
                        lh[r] = lse_front[h][sub];
                    }
                    let ot = o_tail[h].load();
                    for (sub, &r) in tail_rows.iter().enumerate() {
                        oh.row_mut(r).copy_from_slice(ot.row(sub));
                        lh[r] = lse_tail[h][sub];
                    }
                    o.push(oh);
                    lse_full.push(lh);
                }
                (o, lse_full)
            }
        };
        let merged = Mat::hstack(&o_heads);
        let y = self.wo.forward_nosave(&merged);
        (
            y,
            MhaSaved {
                proj_in: LinearSaved { x: x.clone() },
                q_heads,
                k_heads,
                v_heads,
                o_heads,
                lse,
            },
        )
    }

    /// Backward: accumulates all four projection grads, returns `∇x`.
    pub fn backward<E: AttnExec>(&mut self, saved: &MhaSaved, grad_y: &Mat, exec: &mut E) -> Mat {
        let merged = Mat::hstack(&saved.o_heads);
        let grad_merged = self.wo.backward(&LinearSaved { x: merged }, grad_y);
        let grad_o_heads = split_heads(&grad_merged, self.heads);
        let (mut dq, dk, dv) = exec.backward(
            &saved.q_heads,
            &saved.k_heads,
            &saved.v_heads,
            &saved.o_heads,
            &saved.lse,
            &grad_o_heads,
        );
        // Shared KV heads: fold the per-query-head gradients first (the
        // rotation is per-row, so reduce-then-unrotate equals
        // unrotate-then-reduce).
        let mut dk = self.reduce_kv(dk);
        let dv = self.reduce_kv(dv);
        if self.rope {
            // Chain through the (orthogonal) rotation.
            let idx = exec.local_indices();
            for h in dq.iter_mut().chain(dk.iter_mut()) {
                *h = rope_backward(h, &idx, ROPE_THETA);
            }
        }
        let dq_full = Mat::hstack(&dq);
        let dk_full = Mat::hstack(&dk);
        let dv_full = Mat::hstack(&dv);
        let mut grad_x = self.wq.backward(&saved.proj_in, &dq_full);
        grad_x.add_assign(&self.wk.backward(&saved.proj_in, &dk_full));
        grad_x.add_assign(&self.wv.backward(&saved.proj_in, &dv_full));
        grad_x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::{assert_allclose, numerical_grad};

    #[test]
    fn local_exec_forward_backward_numerical() {
        let (n, d, heads) = (8usize, 6usize, 2usize);
        let mha = MultiHeadAttention::new(d, heads, 40);
        let mut exec = LocalExec::new(AttnMask::Causal, n);
        let x = randn_mat(n, d, 0.8, 41);
        let gy = randn_mat(n, d, 1.0, 42);
        let (y, saved) = mha.forward(&x, &mut exec);
        assert_eq!(y.shape(), (n, d));
        let mut mha2 = mha.clone();
        let gx = mha2.backward(&saved, &gy, &mut exec);

        let mha3 = mha.clone();
        let gy2 = gy.clone();
        let nx = numerical_grad(&x, 1e-2, move |m| {
            let mut e = LocalExec::new(AttnMask::Causal, n);
            mha3.forward(m, &mut e)
                .0
                .as_slice()
                .iter()
                .zip(gy2.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_allclose(&gx, &nx, 3e-2, "MHA ∇x");
    }

    #[test]
    fn gqa_backward_matches_numerical() {
        // 4 query heads sharing 2 KV heads, with RoPE on.
        let (n, d, heads, kv) = (8usize, 8usize, 4usize, 2usize);
        let mut mha = MultiHeadAttention::new_gqa(d, heads, kv, 55);
        mha.rope = true;
        assert_eq!(mha.wk.weight.w.rows(), kv * d / heads);
        let mut exec = LocalExec::new(AttnMask::Causal, n);
        let x = randn_mat(n, d, 0.8, 56);
        let gy = randn_mat(n, d, 1.0, 57);
        let (y, saved) = mha.forward(&x, &mut exec);
        assert_eq!(y.shape(), (n, d));
        let mut mha2 = mha.clone();
        let gx = mha2.backward(&saved, &gy, &mut exec);
        let mha3 = mha.clone();
        let gy2 = gy.clone();
        let nx = numerical_grad(&x, 1e-2, move |m| {
            let mut e = LocalExec::new(AttnMask::Causal, n);
            mha3.forward(m, &mut e)
                .0
                .as_slice()
                .iter()
                .zip(gy2.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_allclose(&gx, &nx, 3e-2, "GQA ∇x");
        // KV weight grads must also match numerically.
        let x2 = x.clone();
        let gy3 = gy.clone();
        let mut probe = mha.clone();
        let nw = numerical_grad(&mha.wk.weight.w, 1e-2, move |m| {
            probe.wk.weight.w = m.clone();
            let mut e = LocalExec::new(AttnMask::Causal, n);
            probe
                .forward(&x2, &mut e)
                .0
                .as_slice()
                .iter()
                .zip(gy3.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_allclose(&mha2.wk.weight.grad, &nw, 3e-2, "GQA ∇W_k");
    }

    #[test]
    fn gqa_with_full_kv_heads_equals_mha() {
        let (n, d, heads) = (6usize, 8usize, 4usize);
        let a = MultiHeadAttention::new(d, heads, 58);
        let b = MultiHeadAttention::new_gqa(d, heads, heads, 58);
        let mut exec = LocalExec::new(AttnMask::Causal, n);
        let x = randn_mat(n, d, 0.8, 59);
        let (ya, _) = a.forward(&x, &mut exec);
        let (yb, _) = b.forward(&x, &mut exec);
        assert_allclose(&ya, &yb, 0.0, "kv_heads == heads is plain MHA");
    }

    #[test]
    #[should_panic(expected = "must divide by kv_heads")]
    fn gqa_rejects_nondividing_kv_heads() {
        let _ = MultiHeadAttention::new_gqa(12, 4, 3, 60);
    }

    #[test]
    fn rope_mha_backward_matches_numerical() {
        let (n, d, heads) = (8usize, 8usize, 2usize);
        let mut mha = MultiHeadAttention::new(d, heads, 45);
        mha.rope = true;
        let mut exec = LocalExec::new(AttnMask::Causal, n);
        let x = randn_mat(n, d, 0.8, 46);
        let gy = randn_mat(n, d, 1.0, 47);
        let (_, saved) = mha.forward(&x, &mut exec);
        let mut mha2 = mha.clone();
        let gx = mha2.backward(&saved, &gy, &mut exec);
        let mha3 = mha.clone();
        let gy2 = gy.clone();
        let nx = numerical_grad(&x, 1e-2, move |m| {
            let mut e = LocalExec::new(AttnMask::Causal, n);
            mha3.forward(m, &mut e)
                .0
                .as_slice()
                .iter()
                .zip(gy2.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_allclose(&gx, &nx, 3e-2, "RoPE MHA ∇x");
    }

    #[test]
    fn rope_breaks_permutation_symmetry() {
        // Without positions, swapping two key/value rows with a full mask
        // leaves outputs identical; RoPE must distinguish them.
        let (n, d, heads) = (4usize, 8usize, 2usize);
        let mut mha = MultiHeadAttention::new(d, heads, 48);
        let mut exec = LocalExec::new(AttnMask::Full, n);
        let x = randn_mat(n, d, 0.8, 49);
        let mut x_swapped = x.clone();
        let row0 = x.row(0).to_vec();
        let row1 = x.row(1).to_vec();
        x_swapped.row_mut(0).copy_from_slice(&row1);
        x_swapped.row_mut(1).copy_from_slice(&row0);
        // Plain attention: row 2's output is invariant to the swap.
        let (y_a, _) = mha.forward(&x, &mut exec);
        let (y_b, _) = mha.forward(&x_swapped, &mut exec);
        for (a, b) in y_a.row(2).iter().zip(y_b.row(2)) {
            assert!((a - b).abs() < 1e-5, "plain attention is permutation-blind");
        }
        // RoPE: the swap changes row 2's output.
        mha.rope = true;
        let (y_a, _) = mha.forward(&x, &mut exec);
        let (y_b, _) = mha.forward(&x_swapped, &mut exec);
        let diff: f32 = y_a
            .row(2)
            .iter()
            .zip(y_b.row(2))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3, "RoPE must be position-sensitive (diff {diff})");
    }

    #[test]
    fn split_heads_roundtrip() {
        let x = randn_mat(4, 6, 1.0, 50);
        let heads = split_heads(&x, 3);
        assert_eq!(heads.len(), 3);
        assert_eq!(heads[0].shape(), (4, 2));
        assert_eq!(Mat::hstack(&heads), x);
    }

    #[test]
    fn mha_saved_nbytes_counts_components() {
        let (n, d, heads) = (8usize, 4usize, 2usize);
        let mha = MultiHeadAttention::new(d, heads, 60);
        let mut exec = LocalExec::new(AttnMask::Full, n);
        let x = randn_mat(n, d, 1.0, 61);
        let (_, saved) = mha.forward(&x, &mut exec);
        // x + 3 qkv + o (all n×d) + lse (n per head).
        let expect = 5 * n * d * 4 + heads * n * 4;
        assert_eq!(saved.nbytes(), expect);
        assert_eq!(saved.attn_out_nbytes(), n * d * 4 + heads * n * 4);
    }
}
