//! Token embedding lookup with scatter-add gradient.

use crate::param::Param;
use burst_tensor::Mat;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    /// `vocab × d` table.
    pub table: Param,
}

impl Embedding {
    pub fn new(vocab: usize, d: usize, seed: u64) -> Self {
        Embedding {
            table: Param::randn(vocab, d, 0.02, seed),
        }
    }

    /// Look up `tokens` → `len × d`.
    #[track_caller]
    pub fn forward(&self, tokens: &[usize]) -> Mat {
        assert!(
            tokens.iter().all(|&t| t < self.table.w.rows()),
            "Embedding: token out of vocabulary"
        );
        self.table.w.gather_rows(tokens)
    }

    /// Scatter-add the output gradient into the table gradient.
    pub fn backward(&mut self, tokens: &[usize], grad_y: &Mat) {
        self.table.grad.scatter_add_rows(tokens, grad_y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_returns_rows() {
        let e = Embedding::new(5, 3, 1);
        let y = e.forward(&[4, 0, 4]);
        assert_eq!(y.row(0), e.table.w.row(4));
        assert_eq!(y.row(1), e.table.w.row(0));
        assert_eq!(y.row(2), e.table.w.row(4));
    }

    #[test]
    fn backward_accumulates_repeated_tokens() {
        let mut e = Embedding::new(4, 2, 2);
        let g = Mat::from_vec(3, 2, vec![1.0, 2.0, 10.0, 20.0, 100.0, 200.0]);
        e.backward(&[1, 1, 3], &g);
        assert_eq!(e.table.grad.row(1), &[11.0, 22.0]);
        assert_eq!(e.table.grad.row(3), &[100.0, 200.0]);
        assert_eq!(e.table.grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn rejects_oov() {
        let e = Embedding::new(4, 2, 3);
        let _ = e.forward(&[4]);
    }
}
