//! The BurstEngine training engine: distributed end-to-end training steps
//! on the simulated cluster, with pluggable attention backend, sequence
//! layout, checkpointing strategy and FSDP synchronisation. Reports the
//! paper's evaluation metrics — loss, virtual step time, TGS (tokens per
//! second per GPU), MFU and modeled memory.

use crate::attention::{AttnExec, DistExec, ElasticExec, LocalExec, UlyssesExec, UspExec};
use crate::checkpoint::{ActPrecision, Strategy};
use crate::checkpoint_io::{atomic_write, decode_checkpoint, encode_checkpoint};
use crate::checkpoint_shard::{
    load_sharded, shard_meta, write_manifest, write_shard, ShardManifest,
};
use crate::fsdp;
use crate::model::{Model, ModelConfig, StepOutput};
use crate::param::AdamCfg;
use burst_comm::obs::{MemCategory, MemId};
use burst_comm::{
    agree_on_eviction, agree_on_join, agree_on_leave, send_abort, shrink_all_reduce_vec,
    shrink_barrier, ChurnEvent, ChurnKind, CommError, CommStats, Communicator, Membership,
    RetryPolicy, SpanKind, World,
};
use burst_dattn::{Algo, CostModel, Layout, OverlapMode};
use burst_kernels::AttnMask;
use burst_tensor::Mat;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which attention parallelism the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single-device flash attention (reference; world size 1).
    Local,
    /// Ring-family context parallelism.
    Ring(Algo),
    /// DeepSpeed-Ulysses head parallelism.
    Ulysses,
    /// LoongTrain USP hybrid.
    Usp { ulysses_size: usize },
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub model: ModelConfig,
    pub backend: Backend,
    pub layout: Layout,
    pub strategy: Strategy,
    pub mask: AttnMask,
    pub cost: CostModel,
    /// Synchronise parameters FSDP-style (all-gather weights, all-reduce
    /// gradients) every step.
    pub fsdp: bool,
    /// ZeRO-Offload: keep Adam moments in host memory; each step pays the
    /// PCIe round trip in virtual time but frees device state (the paper's
    /// Table 5 setting for small worlds).
    pub offload_optimizer: bool,
    /// Micro-batches accumulated per optimizer step.
    pub grad_accum: usize,
    /// Emulate bf16 weight storage (the paper's training precision): round
    /// every parameter to bfloat16 before each step's compute while Adam
    /// keeps fp32 masters — the standard mixed-precision recipe.
    pub emulate_bf16: bool,
    /// Hold checkpointed activations (block inputs, cached attention
    /// outputs) at genuine 2-byte bf16 width, halving the tracked stash
    /// (see [`ActPrecision`]).
    pub bf16_activations: bool,
    /// Communication/computation overlap discipline for flat-ring backends.
    pub overlap: OverlapMode,
    /// Mask-aware round skipping in the distributed attention schedules:
    /// fully-masked (q-shard × kv-shard) rounds are elided — no wire
    /// traffic, no compute, no virtual time — bit-identically to the dense
    /// run. Off by default.
    pub skip_masked_rounds: bool,
    pub adam: AdamCfg,
    pub seed: u64,
}

impl EngineConfig {
    pub fn tiny(backend: Backend) -> Self {
        EngineConfig {
            model: ModelConfig::tiny(),
            backend,
            layout: Layout::Zigzag,
            strategy: Strategy::Full,
            mask: AttnMask::Causal,
            cost: CostModel::free(),
            fsdp: true,
            offload_optimizer: false,
            grad_accum: 1,
            emulate_bf16: false,
            bf16_activations: false,
            overlap: OverlapMode::Fine,
            skip_masked_rounds: false,
            adam: AdamCfg::default(),
            seed: 42,
        }
    }
}

/// Metrics of a training run (per rank or aggregated by [`train`]).
#[derive(Debug, Clone)]
pub struct TrainMetrics {
    /// Global mean loss of each step.
    pub losses: Vec<f32>,
    /// Virtual makespan of the whole run in seconds.
    pub wall_time: f64,
    /// Tokens per second per GPU over the run.
    pub tgs: f64,
    /// Model FLOPs utilisation (useful FLOPs / device peak).
    pub mfu: f64,
    /// Max over ranks of tracked peak activation bytes.
    pub peak_activation_bytes: usize,
    /// Modeled device-resident parameter/gradient/optimizer bytes per rank
    /// (shrinks under FSDP sharding and optimizer offloading).
    pub state_bytes_per_rank: usize,
    /// Aggregated communication counters.
    pub comm: CommStats,
}

/// Deterministic synthetic LM data: a periodic stream with a fixed shift
/// rule, memorisable by a tiny model (loss ↓ sanity-checks training).
pub fn synthetic_batch(cfg: &ModelConfig, step: usize) -> (Vec<usize>, Vec<usize>) {
    let tokens: Vec<usize> = (0..cfg.seq_len)
        .map(|i| (i * 7 + step * 13 + 3) % cfg.vocab)
        .collect();
    let mut targets: Vec<usize> = tokens[1..].to_vec();
    targets.push(tokens[0]);
    (tokens, targets)
}

/// Dense (non-attention) FLOPs of one forward+backward per token: the
/// standard `6 P` with one extra forward (`+2 P`) when checkpointing
/// recomputes blocks.
fn dense_flops_per_token(cfg: &ModelConfig, strategy: Strategy) -> f64 {
    let block = 4 * cfg.d_model * cfg.d_model + 3 * cfg.d_model * cfg.d_ff;
    let dense: usize = cfg.layers * block + cfg.vocab * cfg.d_model;
    let factor = match strategy {
        Strategy::None => 6.0,
        // One recomputed forward over the dense path.
        _ => 8.0,
    };
    factor * dense as f64
}

/// Useful model FLOPs per step (for MFU; recompute does not count).
fn useful_flops(cfg: &ModelConfig, mask: &AttnMask) -> f64 {
    let block = 4 * cfg.d_model * cfg.d_model + 3 * cfg.d_model * cfg.d_ff;
    let dense: usize = cfg.layers * block + cfg.vocab * cfg.d_model;
    let dh = cfg.d_model / cfg.heads;
    let pairs = mask.allowed_pairs(cfg.seq_len) as f64 * cfg.heads as f64 * cfg.layers as f64;
    6.0 * dense as f64 * cfg.seq_len as f64 + pairs * 14.0 * dh as f64
}

/// Open ledger entries for the device-resident training state: weights,
/// gradients and (unless offloaded) the two Adam moments, FSDP-sharded
/// across `shard` ranks — [`fsdp::device_state_bytes`]'s decomposition as
/// three accountant lanes. [`free_state_entries`] closes them at span end;
/// an error path that skips the close is force-closed (with a warning)
/// when the ledger is taken, the same crash semantics as every other lane.
fn bill_state_entries(
    comm: &mut Communicator,
    cfg: &EngineConfig,
    shard: usize,
) -> [Option<MemId>; 3] {
    let bytes = (cfg.model.param_count() * 4 / shard) as u64;
    let params = comm.mem_alloc("model_params", MemCategory::Params, bytes);
    let grads = comm.mem_alloc("model_grads", MemCategory::Grads, bytes);
    let optim = if cfg.offload_optimizer {
        // ZeRO-Offload: the Adam moments live in host memory.
        None
    } else {
        comm.mem_alloc("adam_moments", MemCategory::OptimState, 2 * bytes)
    };
    [params, grads, optim]
}

fn free_state_entries(comm: &mut Communicator, ids: [Option<MemId>; 3]) {
    for id in ids {
        comm.mem_free(id);
    }
}

/// What a [`run_span`] call observed, beyond the losses themselves.
#[derive(Debug, Clone)]
pub struct SpanOutcome {
    /// Global mean loss of every step in the span (skipped steps included —
    /// gradient poison does not touch the forward loss).
    pub losses: Vec<f32>,
    /// The final rank-local step output (None for an empty span).
    pub last: Option<StepOutput>,
    /// Optimizer steps skipped because some rank's gradients went
    /// non-finite and could not be salvaged (all ranks agree via the loss
    /// reduction, so the count is identical across ranks).
    pub skipped_steps: usize,
    /// Poisoned micro-batches this rank rolled back individually (gradient
    /// accumulation lets a single bad micro be dropped without losing the
    /// step).
    pub dropped_micros: usize,
}

/// Run `steps` training steps on one rank. Returns per-step global losses
/// and the final rank-local `StepOutput`.
pub fn run_rank(
    comm: &mut Communicator,
    cfg: &EngineConfig,
    steps: usize,
) -> (Vec<f32>, StepOutput) {
    let mut model = Model::new(cfg.model, cfg.seed);
    match run_span(comm, cfg, &mut model, 0, steps, |_, _, _, _| {}) {
        Ok(out) => (out.losses, out.last.expect("steps > 0")),
        Err(e) => comm.escalate(e),
    }
}

/// Run training steps `start_step..end_step` on one rank, mutating `model`
/// in place. Because the synthetic batch and the Adam bias correction are
/// both functions of the *absolute* step index, a model restored from a
/// checkpoint taken after `start_step` steps continues bit-identically to a
/// run that never stopped — the invariant the recovery loop and its tests
/// rely on.
///
/// `on_step(comm, completed, model, losses)` fires after every optimizer
/// step with the rank's communicator, the number of completed steps, the
/// post-update model and the span's losses so far; [`train_with_recovery`]
/// uses it to write checkpoints (the communicator lets every rank write its
/// own shard and synchronise on a barrier before the manifest commits).
///
/// Fails with a typed [`CommError`] instead of aborting: a non-finite
/// reduced loss is reported as [`CommError::Corrupt`], and communication
/// faults injected by a [`burst_comm::FaultPlan`] surface through the
/// fallible collectives.
///
/// Compute-side faults from the plan are honored here: scheduled gradient
/// poison ([`burst_comm::FaultPlan::poison_grad`]) is injected after the
/// affected micro-batch's backward. With gradient accumulation the poisoned
/// micro is rolled back from a snapshot and the surviving micros are
/// rescaled to an unbiased estimate (**skip-and-rescale**); without it the
/// rank raises a flag in the loss reduction and every rank skips the
/// optimizer update for that step in lockstep — the job keeps training
/// instead of restarting. Slow-kernel stragglers
/// ([`burst_comm::FaultPlan::slow_compute`]) are charged inside
/// [`Communicator::advance_compute`].
pub fn run_span(
    comm: &mut Communicator,
    cfg: &EngineConfig,
    model: &mut Model,
    start_step: usize,
    end_step: usize,
    mut on_step: impl FnMut(&mut Communicator, usize, &Model, &[f32]),
) -> Result<SpanOutcome, CommError> {
    let n = cfg.model.seq_len;
    let mut losses = Vec::with_capacity(end_step.saturating_sub(start_step));
    let mut last = None;
    let mut skipped_steps = 0usize;
    let mut dropped_micros = 0usize;
    let accum = cfg.grad_accum.max(1);
    // Per-micro gradient snapshots cost a full state clone, so only arm
    // them when this rank actually has poison scheduled and accumulation
    // gives a finer granularity than the whole step.
    let can_rollback = accum > 1
        && comm
            .fault_plan()
            .is_some_and(|p| p.has_poisons(comm.rank()));
    let state_shard = if cfg.fsdp { comm.world_size() } else { 1 };
    let state_ids = bill_state_entries(comm, cfg, state_shard);
    for step in start_step..end_step {
        // The step span also covers the checkpoint `on_step` may write. A
        // step that fails out via `?` leaves it open; the trace collector
        // force-closes it at the failure clock with a warning.
        comm.span_begin(SpanKind::Step, "step");
        model.zero_grads();
        if cfg.fsdp {
            fsdp::gather_weights(comm, &mut model.params_mut());
        }
        if cfg.emulate_bf16 {
            // fp32 Adam masters persist in `m`/`v` and the pre-rounding `w`
            // evolution; the compute stream sees bf16 weights.
            for p in model.params_mut() {
                p.w.round_bf16_inplace();
            }
        }
        let mut step_loss_sum = 0.0f32;
        let mut out = None;
        let mut local_bad = 0.0f32;
        let mut dropped_this_step = 0usize;
        for micro in 0..accum {
            comm.span_begin(SpanKind::Micro, "micro");
            let snapshot: Option<Vec<Mat>> = if can_rollback {
                Some(model.params().iter().map(|p| p.grad.clone()).collect())
            } else {
                None
            };
            let (tokens, targets) = synthetic_batch(&cfg.model, step * accum + micro);
            let micro_out = {
                // Backend-specific exec and local row indices.
                match cfg.backend {
                    Backend::Local => {
                        let mut exec = LocalExec::new(cfg.mask.clone(), n);
                        step_with(&mut *model, &tokens, &targets, &mut exec, cfg, accum)
                    }
                    Backend::Ring(algo) => {
                        let mut exec =
                            DistExec::new(comm, algo, cfg.layout, cfg.mask.clone(), n, cfg.cost);
                        exec.overlap = cfg.overlap;
                        exec.skip = cfg.skip_masked_rounds;
                        step_with(&mut *model, &tokens, &targets, &mut exec, cfg, accum)
                    }
                    Backend::Ulysses => {
                        let mut exec = UlyssesExec {
                            comm,
                            mask: cfg.mask.clone(),
                            seq_len: n,
                            cost: cfg.cost,
                        };
                        step_with(&mut *model, &tokens, &targets, &mut exec, cfg, accum)
                    }
                    Backend::Usp { ulysses_size } => {
                        let mut exec = UspExec {
                            comm,
                            ulysses_size,
                            mask: cfg.mask.clone(),
                            seq_len: n,
                            cost: cfg.cost,
                            skip: cfg.skip_masked_rounds,
                        };
                        step_with(&mut *model, &tokens, &targets, &mut exec, cfg, accum)
                    }
                }
            };
            // Dense-path compute time (attention time was charged inside
            // the backend).
            let dense_secs = dense_flops_per_token(&cfg.model, cfg.strategy)
                * micro_out.tokens as f64
                / (cfg.cost.peak_flops * cfg.cost.efficiency);
            if dense_secs.is_finite() {
                comm.advance_compute(dense_secs);
            }
            step_loss_sum += micro_out.loss_sum;
            out = Some(micro_out);
            // Scheduled compute-side fault: the backward "produced" a bad
            // gradient. The forward loss above is untouched.
            if let Some(v) = comm.grad_poison(step as u64, micro as u64) {
                comm.span_instant(SpanKind::Fault, "grad_poison");
                model.params_mut()[0].grad.as_mut_slice()[0] = v;
                if !v.is_finite() {
                    match snapshot {
                        Some(snap) => {
                            // Roll the whole micro back and keep going —
                            // the other micros' work is not lost.
                            for (p, s) in model.params_mut().into_iter().zip(snap) {
                                p.grad = s;
                            }
                            dropped_this_step += 1;
                            comm.span_instant(SpanKind::Fault, "micro_rollback");
                        }
                        None => local_bad = 1.0,
                    }
                }
            }
            comm.span_end();
        }
        let out = out.expect("grad_accum >= 1");
        if dropped_this_step == accum {
            // Every micro was poisoned: nothing usable survived.
            local_bad = 1.0;
        } else if dropped_this_step > 0 {
            // Rescale the surviving micros' contribution to an unbiased
            // estimate of this rank's full-step gradient.
            let scale = accum as f32 / (accum - dropped_this_step) as f32;
            for p in model.params_mut() {
                for g in p.grad.as_mut_slice() {
                    *g *= scale;
                }
            }
        }
        dropped_micros += dropped_this_step;
        // Global mean loss + the poison flag, reduced together so every
        // rank takes the same skip decision without an extra collective.
        let reduced = comm.try_all_reduce_vec(&[step_loss_sum, local_bad])?;
        let mean_loss = reduced[0] / (n * accum) as f32;
        if !mean_loss.is_finite() {
            // A poisoned reduction: some rank fed NaN/Inf into the loss
            // itself. Surface it as a typed error so the recovery loop can
            // roll back to the last good checkpoint instead of training on.
            return Err(CommError::Corrupt {
                rank: comm.rank(),
                src: comm.rank(),
                detail: format!("non-finite global loss {mean_loss} at step {step}"),
            });
        }
        losses.push(mean_loss);
        if reduced[1] > 0.0 {
            // Some rank's gradients went non-finite beyond repair: skip the
            // optimizer update in lockstep (grads are discarded, weights
            // and Adam state stay at the last good step) and train on.
            skipped_steps += 1;
            comm.span_instant(SpanKind::Fault, "skip_step");
            model.zero_grads();
            last = Some(out);
            on_step(comm, step + 1, model, &losses);
            comm.span_end();
            continue;
        }
        if cfg.fsdp {
            fsdp::sync_grads(comm, &mut model.params_mut());
        }
        model.adam_step(&cfg.adam, step as u64 + 1);
        if cfg.offload_optimizer {
            // The update itself ran on identical replicas above; charge the
            // ZeRO-Offload PCIe round trip for the sharded states.
            let shard = if cfg.fsdp { comm.world_size() } else { 1 };
            comm.advance_compute(fsdp::offload_step_seconds(cfg.model.param_count(), shard));
        }
        last = Some(out);
        on_step(comm, step + 1, model, &losses);
        comm.span_end();
    }
    free_state_entries(comm, state_ids);
    Ok(SpanOutcome {
        losses,
        last,
        skipped_steps,
        dropped_micros,
    })
}

fn step_with<E: AttnExec>(
    model: &mut Model,
    tokens: &[usize],
    targets: &[usize],
    exec: &mut E,
    cfg: &EngineConfig,
    accum: usize,
) -> StepOutput {
    let idx = exec.local_indices();
    let local_tokens: Vec<usize> = idx.iter().map(|&i| tokens[i]).collect();
    let local_targets: Vec<usize> = idx.iter().map(|&i| targets[i]).collect();
    let precision = if cfg.bf16_activations {
        ActPrecision::Bf16
    } else {
        ActPrecision::F32
    };
    model.train_step_prec(
        &local_tokens,
        &local_targets,
        exec,
        cfg.strategy,
        cfg.model.seq_len * accum,
        precision,
    )
}

/// Run a full distributed training job on `world` and aggregate metrics.
pub fn train(world: &World, cfg: &EngineConfig, steps: usize) -> TrainMetrics {
    let outs = world.run(|comm| run_rank(comm, cfg, steps));
    let wall_time = outs.iter().map(|o| o.time).fold(0.0, f64::max);
    let comm = outs
        .iter()
        .map(|o| o.stats)
        .fold(CommStats::default(), |a, b| a.merge(&b));
    let losses = outs[0].result.0.clone();
    for o in &outs {
        assert_eq!(o.result.0, losses, "ranks disagree on the global loss");
    }
    let g = world.topology().world_size() as f64;
    let total_tokens = (cfg.model.seq_len * steps) as f64;
    let tgs = if wall_time > 0.0 {
        total_tokens / wall_time / g
    } else {
        f64::INFINITY
    };
    let mfu = if wall_time > 0.0 && cfg.cost.peak_flops.is_finite() {
        useful_flops(&cfg.model, &cfg.mask) * steps as f64 / (wall_time * cfg.cost.peak_flops * g)
    } else {
        f64::NAN
    };
    let peak_activation_bytes = outs
        .iter()
        .map(|o| o.result.1.peak_activation_bytes)
        .max()
        .unwrap_or(0);
    let shard = if cfg.fsdp {
        world.topology().world_size()
    } else {
        1
    };
    TrainMetrics {
        losses,
        wall_time,
        tgs,
        mfu,
        peak_activation_bytes,
        state_bytes_per_rank: fsdp::device_state_bytes(
            cfg.model.param_count(),
            shard,
            cfg.offload_optimizer,
        ),
        comm,
    }
}

/// Options for [`run_span_elastic`].
#[derive(Debug, Clone, Default)]
pub struct ElasticCfg {
    /// Retry policy for the shrink collectives and membership agreements.
    pub policy: RetryPolicy,
    /// Sharded checkpoint directory (`BURSTCKPT v2`). Required when the
    /// fault plan schedules joins: a checkpoint is force-written at the end
    /// of the step before each join so the joiner can warm-start from it.
    pub ckpt_dir: Option<PathBuf>,
    /// Also checkpoint every `every` steps (0 = only before joins and at
    /// span end).
    pub every: usize,
    /// Give up on a step after this many in-step replays (0 = world size).
    pub max_replays_per_step: usize,
}

/// Per-rank outcome of an elastic span.
#[derive(Debug, Clone)]
pub struct ElasticOutcome {
    /// Full global loss history (prior + this span) as this rank saw it.
    pub losses: Vec<f32>,
    /// Ranks evicted by in-step recovery, in eviction order.
    pub evicted: Vec<usize>,
    /// Ranks re-admitted by the Join leg, in admission order.
    pub rejoined: Vec<usize>,
    /// Steps replayed from their top by in-step recovery.
    pub steps_replayed: usize,
    /// Steps where a topology-aware algorithm ran on the flat ring because
    /// the survivor pattern was ragged across nodes.
    pub flat_fallbacks: usize,
    /// Optimizer updates skipped in lockstep after gradient poison.
    pub skipped_steps: usize,
    /// Step at which this rank left the job for good (`None` = finished).
    pub parked_at: Option<usize>,
    /// Final membership epoch.
    pub epoch: u64,
}

/// How a failure relates to the rank observing it.
fn fatal_to_me(e: &CommError, me: usize) -> bool {
    matches!(e,
        CommError::Crashed { rank, .. } | CommError::Panicked { rank, .. } if *rank == me)
}

/// Run training steps `start_step..end_step` **elastically**: scheduled
/// leaves shrink the ring, scheduled joins grow it back (the joiner
/// warm-starts from the sharded checkpoint the survivors committed), and a
/// mid-step fault is repaired *inside* the step — the survivors agree on
/// the eviction, restore the step-start model snapshot and replay the step
/// on the shrunken ring, instead of restarting the whole attempt.
///
/// The churn schedule comes from the world's [`burst_comm::FaultPlan`]
/// (`leave_at` / `join_at` / `churn_storm`), which every rank knows
/// deterministically — a real cluster's scheduler plays this role. Within a
/// step the member list is fixed; churn is applied at step boundaries:
/// joins first (so a rank can hand off to its replacement in one step),
/// then leaves, then the step itself.
///
/// Bit-identity: every collective in the step — weight gather, loss
/// reduction, gradient sync, ring attention — runs over the ascending alive
/// set with this rank at its membership position, with the same
/// accumulation order as a fresh world of that size. A span that shrinks at
/// step `f` and regrows at step `j` therefore reproduces, bit for bit, the
/// segmented reference: a fresh full world over `[0, f)`, a fresh shrunken
/// world over `[f, j)` warm-started from the first segment, and a fresh
/// full world over `[j, end)` warm-started from the second. `crates/verify`
/// gates on exactly this equivalence.
pub fn run_span_elastic(
    comm: &mut Communicator,
    cfg: &EngineConfig,
    model: &mut Model,
    start_step: usize,
    end_step: usize,
    prior_losses: &[f32],
    ecfg: &ElasticCfg,
) -> Result<ElasticOutcome, CommError> {
    let algo = match cfg.backend {
        Backend::Ring(a) => a,
        _ => panic!("run_span_elastic requires a ring backend"),
    };
    let me = comm.rank();
    let mut m = Membership::new(comm.world_size());
    // The deterministic churn schedule, cloned out of the plan so the
    // communicator stays mutably borrowable.
    let churn: Vec<ChurnEvent> = comm
        .fault_plan()
        .map(|p| p.churn_events().to_vec())
        .unwrap_or_default();
    let joins_at = |s: usize| -> Vec<usize> {
        let mut v: Vec<usize> = churn
            .iter()
            .filter(|e| e.kind == ChurnKind::Join && e.step == s as u64)
            .map(|e| e.rank)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let leaves_at = |s: usize| -> Vec<usize> {
        let mut v: Vec<usize> = churn
            .iter()
            .filter(|e| e.kind == ChurnKind::Leave && e.step == s as u64)
            .map(|e| e.rank)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let rejoin_of = |rank: usize, after: usize| -> Option<usize> {
        churn
            .iter()
            .filter(|e| e.kind == ChurnKind::Join && e.rank == rank && e.step > after as u64)
            .map(|e| e.step as usize)
            .min()
    };
    if !churn.is_empty() {
        assert!(
            ecfg.ckpt_dir.is_some() || churn.iter().all(|e| e.kind == ChurnKind::Leave),
            "scheduled joins need ElasticCfg::ckpt_dir for the warm-start"
        );
    }
    let mut out = ElasticOutcome {
        losses: prior_losses.to_vec(),
        evicted: Vec::new(),
        rejoined: Vec::new(),
        steps_replayed: 0,
        flat_fallbacks: 0,
        skipped_steps: 0,
        parked_at: None,
        epoch: 0,
    };
    let mut step = start_step;
    'span: while step < end_step {
        // Scheduled joins first: the ring regrows before the step runs.
        let joiners: Vec<usize> = joins_at(step)
            .into_iter()
            .filter(|&r| !m.is_alive(r))
            .collect();
        if !joiners.is_empty() {
            let j = agree_on_join(comm, &mut m, &joiners, &ecfg.policy)?;
            out.rejoined.extend(j.admitted.iter().copied());
        }
        // Scheduled leaves: the departing ranks and the survivors agree,
        // then the leaver parks until its rejoin step (if it has one).
        let leavers: Vec<usize> = leaves_at(step)
            .into_iter()
            .filter(|&r| m.is_alive(r))
            .collect();
        if !leavers.is_empty() {
            agree_on_leave(comm, &mut m, &leavers, &ecfg.policy)?;
            if leavers.contains(&me) {
                let Some(j) = rejoin_of(me, step) else {
                    out.parked_at = Some(step);
                    break 'span;
                };
                // Park: wait for the leader's invite at step `j`. The wait
                // spans many survivor steps, so the petitioner must be
                // patient about receive timeouts.
                let patient = RetryPolicy {
                    max_attempts: u32::MAX,
                    ..ecfg.policy
                };
                let cohort = joins_at(j);
                let res = agree_on_join(comm, &mut m, &cohort, &patient)?;
                if !m.is_alive(me) {
                    out.parked_at = Some(step);
                    break 'span;
                }
                out.rejoined.extend(res.admitted.iter().copied());
                // Warm-start from the checkpoint the survivors committed at
                // the end of step j-1 (BURSTCKPT v2 shards).
                let dir = ecfg
                    .ckpt_dir
                    .as_ref()
                    .expect("scheduled rejoin requires ElasticCfg::ckpt_dir");
                let (loaded, man, _files) = load_sharded(dir).map_err(|e| CommError::Corrupt {
                    rank: me,
                    src: me,
                    detail: format!("warm-start restore failed: {e}"),
                })?;
                *model = loaded;
                out.losses = man.losses.clone();
                debug_assert_eq!(man.step as usize, j, "warm-start checkpoint is stale");
                step = man.step as usize;
                continue 'span;
            }
        }
        // The step itself, replayed in place on the shrunken ring if a
        // member dies partway through it.
        let max_replays = if ecfg.max_replays_per_step == 0 {
            m.world_size()
        } else {
            ecfg.max_replays_per_step
        };
        let mut attempts = 0usize;
        let (mean_loss, skipped) = loop {
            attempts += 1;
            let snapshot = model.clone();
            let span_depth = comm.span_depth();
            if attempts > 1 {
                comm.span_begin(SpanKind::Replay, "replay_step");
            }
            let res = elastic_step(comm, &mut m, cfg, model, step, algo, &ecfg.policy);
            match res {
                Ok((loss, skipped, fell_flat)) => {
                    if attempts > 1 {
                        comm.span_end();
                    }
                    if fell_flat {
                        out.flat_fallbacks += 1;
                    }
                    break (loss, skipped);
                }
                Err(e) => {
                    comm.span_unwind(span_depth);
                    if fatal_to_me(&e, me) {
                        return Err(e);
                    }
                    *model = snapshot;
                    if !m.is_alive(me) {
                        // The step's internal agreement already parked this
                        // rank (minority side of a split) — no second
                        // agreement round; just stop here.
                        if !out.evicted.contains(&me) {
                            out.evicted.push(me);
                        }
                        out.parked_at = Some(step);
                        break 'span;
                    }
                    let suspects: Vec<usize> = dead_ranks(&e)
                        .into_iter()
                        .filter(|&r| r != me && m.is_alive(r))
                        .collect();
                    send_abort(comm, &m, &suspects);
                    let agreed = agree_on_eviction(comm, &mut m, &suspects, &ecfg.policy)?;
                    out.evicted.extend(agreed.evicted.iter().copied());
                    if !m.is_alive(me) {
                        out.parked_at = Some(step);
                        break 'span;
                    }
                    out.steps_replayed += 1;
                    if attempts > max_replays {
                        return Err(e);
                    }
                }
            }
        };
        out.losses.push(mean_loss);
        if skipped {
            out.skipped_steps += 1;
        }
        let done = step + 1;
        if let Some(dir) = ecfg.ckpt_dir.as_ref() {
            let join_next = done < end_step && joins_at(done).iter().any(|&r| !m.is_alive(r));
            let periodic = ecfg.every > 0 && done.is_multiple_of(ecfg.every);
            if join_next || periodic || done == end_step {
                write_elastic_ckpt(comm, &mut m, dir, model, done, &out.losses, &ecfg.policy)?;
            }
        }
        step = done;
    }
    out.epoch = m.epoch();
    Ok(out)
}

/// One attempt at one elastic optimizer step over the current alive set.
/// Returns `(global mean loss, update skipped, flat fallback)`; a typed
/// error means a member died and the caller should evict and replay.
fn elastic_step(
    comm: &mut Communicator,
    m: &mut Membership,
    cfg: &EngineConfig,
    model: &mut Model,
    step: usize,
    algo: Algo,
    policy: &RetryPolicy,
) -> Result<(f32, bool, bool), CommError> {
    let n = cfg.model.seq_len;
    let accum = cfg.grad_accum.max(1);
    let members = m.alive_ranks();
    comm.span_begin(SpanKind::Step, "step");
    // Re-billed every elastic step: the FSDP shard tracks the alive set.
    let state_ids = bill_state_entries(comm, cfg, if cfg.fsdp { m.num_alive() } else { 1 });
    model.zero_grads();
    if cfg.fsdp {
        fsdp::try_gather_weights_m(comm, m, &mut model.params_mut(), policy)?;
    }
    if cfg.emulate_bf16 {
        for p in model.params_mut() {
            p.w.round_bf16_inplace();
        }
    }
    let mut step_loss_sum = 0.0f32;
    let mut local_bad = 0.0f32;
    let mut fell_flat = false;
    for micro in 0..accum {
        comm.span_begin(SpanKind::Micro, "micro");
        let (tokens, targets) = synthetic_batch(&cfg.model, step * accum + micro);
        let (micro_out, flat, failure) = {
            let mut exec = ElasticExec::new(
                comm,
                members.clone(),
                algo,
                cfg.layout,
                cfg.mask.clone(),
                n,
                cfg.cost,
            );
            exec.overlap = cfg.overlap;
            exec.skip = cfg.skip_masked_rounds;
            let mo = step_with(&mut *model, &tokens, &targets, &mut exec, cfg, accum);
            (mo, exec.flat_fallback(), exec.take_failure())
        };
        if let Some(e) = failure {
            return Err(e);
        }
        fell_flat |= flat;
        let dense_secs = dense_flops_per_token(&cfg.model, cfg.strategy) * micro_out.tokens as f64
            / (cfg.cost.peak_flops * cfg.cost.efficiency);
        if dense_secs.is_finite() {
            comm.advance_compute(dense_secs);
        }
        step_loss_sum += micro_out.loss_sum;
        if let Some(v) = comm.grad_poison(step as u64, micro as u64) {
            comm.span_instant(SpanKind::Fault, "grad_poison");
            model.params_mut()[0].grad.as_mut_slice()[0] = v;
            if !v.is_finite() {
                local_bad = 1.0;
            }
        }
        comm.span_end();
    }
    let reduced = shrink_all_reduce_vec(comm, m, &[step_loss_sum, local_bad], policy)?;
    let mean_loss = reduced[0] / (n * accum) as f32;
    if !mean_loss.is_finite() {
        return Err(CommError::Corrupt {
            rank: comm.rank(),
            src: comm.rank(),
            detail: format!("non-finite global loss {mean_loss} at step {step}"),
        });
    }
    if reduced[1] > 0.0 {
        comm.span_instant(SpanKind::Fault, "skip_step");
        model.zero_grads();
        free_state_entries(comm, state_ids);
        comm.span_end();
        return Ok((mean_loss, true, fell_flat));
    }
    if cfg.fsdp {
        fsdp::try_sync_grads_m(comm, m, &mut model.params_mut(), policy)?;
    }
    model.adam_step(&cfg.adam, step as u64 + 1);
    if cfg.offload_optimizer {
        let shard = if cfg.fsdp { m.num_alive() } else { 1 };
        comm.advance_compute(fsdp::offload_step_seconds(cfg.model.param_count(), shard));
    }
    free_state_entries(comm, state_ids);
    comm.span_end();
    Ok((mean_loss, false, fell_flat))
}

/// Sharded checkpoint over the **current members**: each member writes the
/// shard at its membership position for a world of `num_alive` ranks —
/// exactly what a fresh world of that size would write — and the leader
/// (position 0) commits the manifest between two shrink barriers.
fn write_elastic_ckpt(
    comm: &mut Communicator,
    m: &mut Membership,
    dir: &Path,
    model: &Model,
    done: usize,
    losses: &[f32],
    policy: &RetryPolicy,
) -> Result<(), CommError> {
    let g = m.num_alive();
    let pos = m
        .pos_of(comm.rank())
        .expect("checkpoint on an evicted rank");
    let rank = comm.rank();
    comm.span_begin(SpanKind::Checkpoint, "checkpoint");
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("rank {rank}: checkpoint dir creation failed: {e}"));
    let flat = model.flat_state();
    write_shard(dir, pos, g, &flat)
        .unwrap_or_else(|e| panic!("rank {rank}: shard write failed: {e}"));
    shrink_barrier(comm, m, policy)?;
    if pos == 0 {
        let shards = (0..g)
            .map(|s| {
                shard_meta(&flat, g, s)
                    .unwrap_or_else(|e| panic!("rank {rank}: shard meta failed: {e}"))
            })
            .collect();
        let man = ShardManifest {
            step: done as u64,
            epoch: m.epoch(),
            world_size: g,
            flat_len: flat.len(),
            cfg: model.cfg,
            losses: losses.to_vec(),
            shards,
        };
        write_manifest(dir, &man)
            .unwrap_or_else(|e| panic!("rank {rank}: manifest commit failed: {e}"));
    }
    // No member trains past an uncommitted checkpoint.
    shrink_barrier(comm, m, policy)?;
    comm.span_end();
    Ok(())
}

/// Everything needed to resume a training job from the middle: the number
/// of completed optimizer steps, the global loss history, and the full
/// model state (weights, gradients, Adam moments). Persisted with the same
/// versioned, checksummed, atomically-renamed format as [`Model::save`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainCheckpoint {
    /// Optimizer steps completed before this checkpoint was taken.
    pub step: usize,
    /// Global mean loss of every completed step.
    pub losses: Vec<f32>,
    /// Full training state after `step` steps.
    pub model: Model,
}

impl TrainCheckpoint {
    /// Write the checkpoint atomically (staged at `<path>.tmp`, published
    /// by rename) with a validated header.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let payload =
            serde_json::to_vec(self).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        atomic_write(path.as_ref(), &encode_checkpoint(&payload))
    }

    /// Load and validate a checkpoint written by [`TrainCheckpoint::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<TrainCheckpoint> {
        let bytes = std::fs::read(path)?;
        let payload = decode_checkpoint(&bytes)?;
        serde_json::from_slice(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Configuration of the elastic recovery loop in [`train_with_recovery`].
#[derive(Debug, Clone)]
pub struct RecoveryCfg {
    /// Checkpoint every `every` optimizer steps (rank 0 writes).
    pub every: usize,
    /// Checkpoint location: a file for monolithic checkpoints, a directory
    /// when `sharded` is set.
    pub path: PathBuf,
    /// Give up after this many restarts.
    pub max_restarts: usize,
    /// Persist checkpoints as per-rank shard files plus a checksummed
    /// manifest (`BURSTCKPT v2`, see [`crate::checkpoint_shard`]) instead
    /// of one monolithic file; `path` then names a directory.
    pub sharded: bool,
    /// When a restart is caused by a failure that names dead ranks,
    /// continue on a world shrunk by those ranks instead of a same-size
    /// replacement cluster.
    pub shrink: bool,
    /// Repair failures **inside** the failed step (requires `sharded` and a
    /// ring backend): survivors agree on the eviction and replay only the
    /// current step on the shrunken ring via [`run_span_elastic`], instead
    /// of restarting the attempt from the last checkpoint. Scheduled churn
    /// (leave/join events in the world's fault plan) is honored too.
    pub in_step: bool,
    /// Suppress the one-line recovery summary printed on completion.
    pub quiet: bool,
}

/// What [`train_with_recovery`] observed: the full loss history (bit-exact
/// against an uninterrupted run), the restarts it performed, and the typed
/// failure that triggered each one.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Global mean loss of every step, across all attempts.
    pub losses: Vec<f32>,
    /// How many times the job was restarted from a checkpoint.
    pub restarts: usize,
    /// One representative typed failure per failed attempt.
    pub failures: Vec<CommError>,
    /// The final model state after all `steps` completed.
    pub final_model: Model,
    /// Optimizer steps the skip-and-rescale path dropped in the final
    /// (successful) attempt.
    pub skipped_steps: usize,
    /// Poisoned micro-batches rolled back across all ranks of the final
    /// attempt.
    pub dropped_micros: usize,
    /// Ranks evicted by the shrink path or by in-step recovery, in eviction
    /// order (rank ids are relative to the world they were evicted from).
    pub evicted_ranks: Vec<usize>,
    /// Ranks re-admitted by the Join leg, in admission order.
    pub rejoined_ranks: Vec<usize>,
    /// Shard files read across every sharded restore.
    pub shards_reloaded: usize,
    /// Completed-then-lost steps re-run after restarts (work between the
    /// last checkpoint and each failure).
    pub steps_replayed: usize,
}

/// Elastic training: run `steps` optimizer steps, checkpointing every
/// `recovery.every` steps, and when any rank fails — crash, timeout, lost
/// peer, corrupted message or poisoned loss — restore the last good
/// checkpoint and replay from there on a fresh world.
///
/// `make_world(attempt, shrink_to)` builds the cluster for each attempt
/// (attempt 0 first); a fault-injection test hands back a faulty world
/// first and clean worlds after, modelling a failed node being replaced.
/// `shrink_to` is `Some(n)` only when [`RecoveryCfg::shrink`] decided to
/// continue on `n` ranks after an eviction — the closure must then return a
/// world of that size; `None` means "your configured size". Because every
/// quantity in [`run_span`] depends only on the restored model state and
/// the absolute step index, a same-size recovered run is bit-identical to
/// one that never failed.
pub fn train_with_recovery(
    make_world: impl Fn(usize, Option<usize>) -> World,
    cfg: &EngineConfig,
    steps: usize,
    recovery: &RecoveryCfg,
) -> io::Result<RecoveryReport> {
    if recovery.in_step {
        assert!(
            recovery.sharded,
            "RecoveryCfg::in_step requires sharded checkpoints (the joiner warm-start path)"
        );
    }
    let every = recovery.every.max(1);
    let mut restarts = 0usize;
    let mut failures: Vec<CommError> = Vec::new();
    let mut evicted_ranks: Vec<usize> = Vec::new();
    let mut rejoined_ranks: Vec<usize> = Vec::new();
    let mut shards_reloaded = 0usize;
    let mut steps_replayed = 0usize;
    let mut shrink_to: Option<usize> = None;
    // Highest step any rank completed in the current attempt; what was done
    // past the checkpoint at failure time gets replayed.
    let completed = Arc::new(AtomicUsize::new(0));
    // Set after a failed attempt to the step work had reached, so the next
    // restore can account the replay.
    let mut lost_from: Option<usize> = None;
    loop {
        // Resume from the last good checkpoint, or start fresh when none
        // has been written yet. A present-but-invalid file is a hard error:
        // silently restarting a long job from step 0 would be worse.
        let (start_model, start_step, prior_losses) = if recovery.sharded {
            match load_sharded(&recovery.path) {
                Ok((model, man, files)) => {
                    shards_reloaded += files;
                    (model, man.step as usize, man.losses)
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    (Model::new(cfg.model, cfg.seed), 0, Vec::new())
                }
                Err(e) => return Err(e),
            }
        } else {
            match TrainCheckpoint::load(&recovery.path) {
                Ok(ck) => (ck.model, ck.step, ck.losses),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    (Model::new(cfg.model, cfg.seed), 0, Vec::new())
                }
                Err(e) => return Err(e),
            }
        };
        if let Some(reached) = lost_from.take() {
            steps_replayed += reached.saturating_sub(start_step);
        }
        completed.store(start_step, Ordering::Relaxed);
        let world = make_world(restarts, shrink_to);
        let world_size = world.topology().world_size();
        let epoch = evicted_ranks.len() as u64;
        let ckpt_path = recovery.path.clone();
        // In-step recovery reports evictions/rejoins/replays out of the
        // rank closures through a shared accumulator.
        let extras = Arc::new(Mutex::new(ElasticExtras::default()));
        let outs = world.run_faulty::<_, CommError, _>(|comm| {
            let mut model = start_model.clone();
            let completed = Arc::clone(&completed);
            if recovery.in_step {
                let ecfg = ElasticCfg {
                    policy: RetryPolicy::default(),
                    ckpt_dir: Some(ckpt_path.clone()),
                    every,
                    max_replays_per_step: 0,
                };
                let eout = run_span_elastic(
                    comm,
                    cfg,
                    &mut model,
                    start_step,
                    steps,
                    &prior_losses,
                    &ecfg,
                )?;
                let finished = eout.parked_at.is_none();
                if finished {
                    completed.fetch_max(steps, Ordering::Relaxed);
                }
                {
                    let mut ex = extras.lock().unwrap_or_else(|p| p.into_inner());
                    for &r in &eout.evicted {
                        if !ex.evicted.contains(&r) {
                            ex.evicted.push(r);
                        }
                    }
                    for &r in &eout.rejoined {
                        if !ex.rejoined.contains(&r) {
                            ex.rejoined.push(r);
                        }
                    }
                    ex.steps_replayed = ex.steps_replayed.max(eout.steps_replayed);
                }
                let span = SpanOutcome {
                    losses: eout.losses[prior_losses.len()..].to_vec(),
                    last: None,
                    skipped_steps: eout.skipped_steps,
                    dropped_micros: 0,
                };
                return Ok((span, model, finished));
            }
            let out = run_span(
                comm,
                cfg,
                &mut model,
                start_step,
                steps,
                |comm, done, m, sofar| {
                    completed.fetch_max(done, Ordering::Relaxed);
                    if done % every != 0 && done != steps {
                        return;
                    }
                    let rank = comm.rank();
                    comm.span_begin(SpanKind::Checkpoint, "checkpoint");
                    if recovery.sharded {
                        // Parallel per-rank write: every rank persists its
                        // own shard, a barrier confirms all shards landed,
                        // then rank 0 commits the manifest. Replicas are
                        // bit-identical, so rank 0 derives every shard's
                        // metadata from its own state without re-reading
                        // the files.
                        std::fs::create_dir_all(&ckpt_path).unwrap_or_else(|e| {
                            panic!("rank {rank}: checkpoint dir creation failed: {e}")
                        });
                        let flat = m.flat_state();
                        write_shard(&ckpt_path, rank, world_size, &flat)
                            .unwrap_or_else(|e| panic!("rank {rank}: shard write failed: {e}"));
                        comm.barrier();
                        if rank == 0 {
                            let mut losses = prior_losses.clone();
                            losses.extend_from_slice(sofar);
                            let shards = (0..world_size)
                                .map(|s| {
                                    shard_meta(&flat, world_size, s).unwrap_or_else(|e| {
                                        panic!("rank 0: shard meta failed: {e}")
                                    })
                                })
                                .collect();
                            let man = ShardManifest {
                                step: done as u64,
                                epoch,
                                world_size,
                                flat_len: flat.len(),
                                cfg: m.cfg,
                                losses,
                                shards,
                            };
                            write_manifest(&ckpt_path, &man)
                                .unwrap_or_else(|e| panic!("rank 0: manifest commit failed: {e}"));
                        }
                        // No rank trains past an uncommitted checkpoint.
                        comm.barrier();
                    } else if rank == 0 {
                        let mut losses = prior_losses.clone();
                        losses.extend_from_slice(sofar);
                        let ck = TrainCheckpoint {
                            step: done,
                            losses,
                            model: m.clone(),
                        };
                        ck.save(&ckpt_path)
                            .unwrap_or_else(|e| panic!("rank 0: checkpoint write failed: {e}"));
                    }
                    comm.span_end();
                },
            )?;
            Ok((out, model, true))
        });
        let mut first_err: Option<CommError> = None;
        let mut ok: Option<(SpanOutcome, Model)> = None;
        let mut dead: Vec<usize> = Vec::new();
        let mut attempt_dropped = 0usize;
        for out in outs {
            match out.result {
                Ok((span, model, finished)) => {
                    attempt_dropped += span.dropped_micros;
                    // A rank that left the job and stayed parked returns a
                    // partial outcome — not a failure, but not the result
                    // either. Prefer the longest (most complete) history.
                    if finished {
                        let better = ok
                            .as_ref()
                            .is_none_or(|p| span.losses.len() >= p.0.losses.len());
                        if better {
                            ok = Some((span, model));
                        }
                    }
                }
                Err(e) => {
                    dead.extend(dead_ranks(&e));
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        {
            let ex = extras.lock().unwrap_or_else(|p| p.into_inner());
            evicted_ranks.extend(ex.evicted.iter().copied());
            rejoined_ranks.extend(ex.rejoined.iter().copied());
            steps_replayed += ex.steps_replayed;
        }
        // In-step mode the attempt succeeds as long as some rank finished
        // every step: a crashed member's own error was already absorbed by
        // the survivors' in-step eviction.
        if recovery.in_step && ok.is_some() {
            if let Some(e) = first_err.take() {
                failures.push(e);
            }
        }
        match first_err {
            None => {
                let (span, final_model) = ok.expect("run_faulty returned no rank outputs");
                let mut losses = prior_losses;
                losses.extend(span.losses);
                if !recovery.quiet {
                    eprintln!(
                        "[recovery] steps={steps} restarts={restarts} replayed={steps_replayed} \
                         skipped={} dropped_micros={attempt_dropped} evicted={evicted_ranks:?} \
                         rejoined={rejoined_ranks:?} shards_reloaded={shards_reloaded}",
                        span.skipped_steps
                    );
                }
                return Ok(RecoveryReport {
                    losses,
                    restarts,
                    failures,
                    final_model,
                    skipped_steps: span.skipped_steps,
                    dropped_micros: attempt_dropped,
                    evicted_ranks,
                    rejoined_ranks,
                    shards_reloaded,
                    steps_replayed,
                });
            }
            Some(e) => {
                failures.push(e);
                restarts += 1;
                if restarts > recovery.max_restarts {
                    let last = failures.last().expect("at least one failure");
                    return Err(io::Error::other(format!(
                        "giving up after {} restarts; last failure: {last}",
                        recovery.max_restarts
                    )));
                }
                lost_from = Some(completed.load(Ordering::Relaxed));
                dead.sort_unstable();
                dead.dedup();
                dead.retain(|&r| r < world_size);
                if recovery.shrink && !dead.is_empty() && dead.len() < world_size {
                    shrink_to = Some(world_size - dead.len());
                    evicted_ranks.extend(dead);
                } else {
                    shrink_to = None;
                }
            }
        }
    }
}

/// What the in-step recovery closures report out of [`run_span_elastic`],
/// shared across the rank threads of one attempt.
#[derive(Default)]
struct ElasticExtras {
    evicted: Vec<usize>,
    rejoined: Vec<usize>,
    steps_replayed: usize,
}

/// Which ranks a failure implicates as dead, for the shrink path.
fn dead_ranks(e: &CommError) -> Vec<usize> {
    match e {
        CommError::Crashed { rank, .. } | CommError::Panicked { rank, .. } => vec![*rank],
        CommError::PeerLost { src, .. } | CommError::Timeout { src, .. } => vec![*src],
        CommError::Aborted { suspects, .. } => suspects.clone(),
        CommError::Evicted { evicted, .. } => evicted.clone(),
        _ => Vec::new(),
    }
}
