//! The BurstEngine training engine: distributed end-to-end training steps
//! on the simulated cluster, with pluggable attention backend, sequence
//! layout, checkpointing strategy and FSDP synchronisation. Reports the
//! paper's evaluation metrics — loss, virtual step time, TGS (tokens per
//! second per GPU), MFU and modeled memory.

use crate::attention::{AttnExec, DistExec, LocalExec, UlyssesExec, UspExec};
use crate::checkpoint::{ActPrecision, Strategy};
use crate::checkpoint_io::{atomic_write, decode_checkpoint, encode_checkpoint};
use crate::checkpoint_shard::{
    load_sharded, shard_meta, write_manifest, write_shard, ShardManifest,
};
use crate::fsdp;
use crate::model::{Model, ModelConfig, StepOutput};
use crate::param::AdamCfg;
use burst_comm::{CommError, CommStats, Communicator, SpanKind, World};
use burst_dattn::{Algo, CostModel, Layout, OverlapMode};
use burst_kernels::AttnMask;
use burst_tensor::Mat;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which attention parallelism the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single-device flash attention (reference; world size 1).
    Local,
    /// Ring-family context parallelism.
    Ring(Algo),
    /// DeepSpeed-Ulysses head parallelism.
    Ulysses,
    /// LoongTrain USP hybrid.
    Usp { ulysses_size: usize },
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub model: ModelConfig,
    pub backend: Backend,
    pub layout: Layout,
    pub strategy: Strategy,
    pub mask: AttnMask,
    pub cost: CostModel,
    /// Synchronise parameters FSDP-style (all-gather weights, all-reduce
    /// gradients) every step.
    pub fsdp: bool,
    /// ZeRO-Offload: keep Adam moments in host memory; each step pays the
    /// PCIe round trip in virtual time but frees device state (the paper's
    /// Table 5 setting for small worlds).
    pub offload_optimizer: bool,
    /// Micro-batches accumulated per optimizer step.
    pub grad_accum: usize,
    /// Emulate bf16 weight storage (the paper's training precision): round
    /// every parameter to bfloat16 before each step's compute while Adam
    /// keeps fp32 masters — the standard mixed-precision recipe.
    pub emulate_bf16: bool,
    /// Hold checkpointed activations (block inputs, cached attention
    /// outputs) at genuine 2-byte bf16 width, halving the tracked stash
    /// (see [`ActPrecision`]).
    pub bf16_activations: bool,
    /// Communication/computation overlap discipline for flat-ring backends.
    pub overlap: OverlapMode,
    pub adam: AdamCfg,
    pub seed: u64,
}

impl EngineConfig {
    pub fn tiny(backend: Backend) -> Self {
        EngineConfig {
            model: ModelConfig::tiny(),
            backend,
            layout: Layout::Zigzag,
            strategy: Strategy::Full,
            mask: AttnMask::Causal,
            cost: CostModel::free(),
            fsdp: true,
            offload_optimizer: false,
            grad_accum: 1,
            emulate_bf16: false,
            bf16_activations: false,
            overlap: OverlapMode::Fine,
            adam: AdamCfg::default(),
            seed: 42,
        }
    }
}

/// Metrics of a training run (per rank or aggregated by [`train`]).
#[derive(Debug, Clone)]
pub struct TrainMetrics {
    /// Global mean loss of each step.
    pub losses: Vec<f32>,
    /// Virtual makespan of the whole run in seconds.
    pub wall_time: f64,
    /// Tokens per second per GPU over the run.
    pub tgs: f64,
    /// Model FLOPs utilisation (useful FLOPs / device peak).
    pub mfu: f64,
    /// Max over ranks of tracked peak activation bytes.
    pub peak_activation_bytes: usize,
    /// Modeled device-resident parameter/gradient/optimizer bytes per rank
    /// (shrinks under FSDP sharding and optimizer offloading).
    pub state_bytes_per_rank: usize,
    /// Aggregated communication counters.
    pub comm: CommStats,
}

/// Deterministic synthetic LM data: a periodic stream with a fixed shift
/// rule, memorisable by a tiny model (loss ↓ sanity-checks training).
pub fn synthetic_batch(cfg: &ModelConfig, step: usize) -> (Vec<usize>, Vec<usize>) {
    let tokens: Vec<usize> = (0..cfg.seq_len)
        .map(|i| (i * 7 + step * 13 + 3) % cfg.vocab)
        .collect();
    let mut targets: Vec<usize> = tokens[1..].to_vec();
    targets.push(tokens[0]);
    (tokens, targets)
}

/// Dense (non-attention) FLOPs of one forward+backward per token: the
/// standard `6 P` with one extra forward (`+2 P`) when checkpointing
/// recomputes blocks.
fn dense_flops_per_token(cfg: &ModelConfig, strategy: Strategy) -> f64 {
    let block = 4 * cfg.d_model * cfg.d_model + 3 * cfg.d_model * cfg.d_ff;
    let dense: usize = cfg.layers * block + cfg.vocab * cfg.d_model;
    let factor = match strategy {
        Strategy::None => 6.0,
        // One recomputed forward over the dense path.
        _ => 8.0,
    };
    factor * dense as f64
}

/// Useful model FLOPs per step (for MFU; recompute does not count).
fn useful_flops(cfg: &ModelConfig, mask: &AttnMask) -> f64 {
    let block = 4 * cfg.d_model * cfg.d_model + 3 * cfg.d_model * cfg.d_ff;
    let dense: usize = cfg.layers * block + cfg.vocab * cfg.d_model;
    let dh = cfg.d_model / cfg.heads;
    let pairs = mask.allowed_pairs(cfg.seq_len) as f64 * cfg.heads as f64 * cfg.layers as f64;
    6.0 * dense as f64 * cfg.seq_len as f64 + pairs * 14.0 * dh as f64
}

/// What a [`run_span`] call observed, beyond the losses themselves.
#[derive(Debug, Clone)]
pub struct SpanOutcome {
    /// Global mean loss of every step in the span (skipped steps included —
    /// gradient poison does not touch the forward loss).
    pub losses: Vec<f32>,
    /// The final rank-local step output (None for an empty span).
    pub last: Option<StepOutput>,
    /// Optimizer steps skipped because some rank's gradients went
    /// non-finite and could not be salvaged (all ranks agree via the loss
    /// reduction, so the count is identical across ranks).
    pub skipped_steps: usize,
    /// Poisoned micro-batches this rank rolled back individually (gradient
    /// accumulation lets a single bad micro be dropped without losing the
    /// step).
    pub dropped_micros: usize,
}

/// Run `steps` training steps on one rank. Returns per-step global losses
/// and the final rank-local `StepOutput`.
pub fn run_rank(
    comm: &mut Communicator,
    cfg: &EngineConfig,
    steps: usize,
) -> (Vec<f32>, StepOutput) {
    let mut model = Model::new(cfg.model, cfg.seed);
    match run_span(comm, cfg, &mut model, 0, steps, |_, _, _, _| {}) {
        Ok(out) => (out.losses, out.last.expect("steps > 0")),
        Err(e) => comm.escalate(e),
    }
}

/// Run training steps `start_step..end_step` on one rank, mutating `model`
/// in place. Because the synthetic batch and the Adam bias correction are
/// both functions of the *absolute* step index, a model restored from a
/// checkpoint taken after `start_step` steps continues bit-identically to a
/// run that never stopped — the invariant the recovery loop and its tests
/// rely on.
///
/// `on_step(comm, completed, model, losses)` fires after every optimizer
/// step with the rank's communicator, the number of completed steps, the
/// post-update model and the span's losses so far; [`train_with_recovery`]
/// uses it to write checkpoints (the communicator lets every rank write its
/// own shard and synchronise on a barrier before the manifest commits).
///
/// Fails with a typed [`CommError`] instead of aborting: a non-finite
/// reduced loss is reported as [`CommError::Corrupt`], and communication
/// faults injected by a [`burst_comm::FaultPlan`] surface through the
/// fallible collectives.
///
/// Compute-side faults from the plan are honored here: scheduled gradient
/// poison ([`burst_comm::FaultPlan::poison_grad`]) is injected after the
/// affected micro-batch's backward. With gradient accumulation the poisoned
/// micro is rolled back from a snapshot and the surviving micros are
/// rescaled to an unbiased estimate (**skip-and-rescale**); without it the
/// rank raises a flag in the loss reduction and every rank skips the
/// optimizer update for that step in lockstep — the job keeps training
/// instead of restarting. Slow-kernel stragglers
/// ([`burst_comm::FaultPlan::slow_compute`]) are charged inside
/// [`Communicator::advance_compute`].
pub fn run_span(
    comm: &mut Communicator,
    cfg: &EngineConfig,
    model: &mut Model,
    start_step: usize,
    end_step: usize,
    mut on_step: impl FnMut(&mut Communicator, usize, &Model, &[f32]),
) -> Result<SpanOutcome, CommError> {
    let n = cfg.model.seq_len;
    let mut losses = Vec::with_capacity(end_step.saturating_sub(start_step));
    let mut last = None;
    let mut skipped_steps = 0usize;
    let mut dropped_micros = 0usize;
    let accum = cfg.grad_accum.max(1);
    // Per-micro gradient snapshots cost a full state clone, so only arm
    // them when this rank actually has poison scheduled and accumulation
    // gives a finer granularity than the whole step.
    let can_rollback = accum > 1
        && comm
            .fault_plan()
            .is_some_and(|p| p.has_poisons(comm.rank()));
    for step in start_step..end_step {
        // The step span also covers the checkpoint `on_step` may write. A
        // step that fails out via `?` leaves it open; the trace collector
        // force-closes it at the failure clock with a warning.
        comm.span_begin(SpanKind::Step, "step");
        model.zero_grads();
        if cfg.fsdp {
            fsdp::gather_weights(comm, &mut model.params_mut());
        }
        if cfg.emulate_bf16 {
            // fp32 Adam masters persist in `m`/`v` and the pre-rounding `w`
            // evolution; the compute stream sees bf16 weights.
            for p in model.params_mut() {
                p.w.round_bf16_inplace();
            }
        }
        let mut step_loss_sum = 0.0f32;
        let mut out = None;
        let mut local_bad = 0.0f32;
        let mut dropped_this_step = 0usize;
        for micro in 0..accum {
            comm.span_begin(SpanKind::Micro, "micro");
            let snapshot: Option<Vec<Mat>> = if can_rollback {
                Some(model.params().iter().map(|p| p.grad.clone()).collect())
            } else {
                None
            };
            let (tokens, targets) = synthetic_batch(&cfg.model, step * accum + micro);
            let micro_out = {
                // Backend-specific exec and local row indices.
                match cfg.backend {
                    Backend::Local => {
                        let mut exec = LocalExec::new(cfg.mask.clone(), n);
                        step_with(&mut *model, &tokens, &targets, &mut exec, cfg, accum)
                    }
                    Backend::Ring(algo) => {
                        let mut exec =
                            DistExec::new(comm, algo, cfg.layout, cfg.mask.clone(), n, cfg.cost);
                        exec.overlap = cfg.overlap;
                        step_with(&mut *model, &tokens, &targets, &mut exec, cfg, accum)
                    }
                    Backend::Ulysses => {
                        let mut exec = UlyssesExec {
                            comm,
                            mask: cfg.mask.clone(),
                            seq_len: n,
                            cost: cfg.cost,
                        };
                        step_with(&mut *model, &tokens, &targets, &mut exec, cfg, accum)
                    }
                    Backend::Usp { ulysses_size } => {
                        let mut exec = UspExec {
                            comm,
                            ulysses_size,
                            mask: cfg.mask.clone(),
                            seq_len: n,
                            cost: cfg.cost,
                        };
                        step_with(&mut *model, &tokens, &targets, &mut exec, cfg, accum)
                    }
                }
            };
            // Dense-path compute time (attention time was charged inside
            // the backend).
            let dense_secs = dense_flops_per_token(&cfg.model, cfg.strategy)
                * micro_out.tokens as f64
                / (cfg.cost.peak_flops * cfg.cost.efficiency);
            if dense_secs.is_finite() {
                comm.advance_compute(dense_secs);
            }
            step_loss_sum += micro_out.loss_sum;
            out = Some(micro_out);
            // Scheduled compute-side fault: the backward "produced" a bad
            // gradient. The forward loss above is untouched.
            if let Some(v) = comm.grad_poison(step as u64, micro as u64) {
                comm.span_instant(SpanKind::Fault, "grad_poison");
                model.params_mut()[0].grad.as_mut_slice()[0] = v;
                if !v.is_finite() {
                    match snapshot {
                        Some(snap) => {
                            // Roll the whole micro back and keep going —
                            // the other micros' work is not lost.
                            for (p, s) in model.params_mut().into_iter().zip(snap) {
                                p.grad = s;
                            }
                            dropped_this_step += 1;
                            comm.span_instant(SpanKind::Fault, "micro_rollback");
                        }
                        None => local_bad = 1.0,
                    }
                }
            }
            comm.span_end();
        }
        let out = out.expect("grad_accum >= 1");
        if dropped_this_step == accum {
            // Every micro was poisoned: nothing usable survived.
            local_bad = 1.0;
        } else if dropped_this_step > 0 {
            // Rescale the surviving micros' contribution to an unbiased
            // estimate of this rank's full-step gradient.
            let scale = accum as f32 / (accum - dropped_this_step) as f32;
            for p in model.params_mut() {
                for g in p.grad.as_mut_slice() {
                    *g *= scale;
                }
            }
        }
        dropped_micros += dropped_this_step;
        // Global mean loss + the poison flag, reduced together so every
        // rank takes the same skip decision without an extra collective.
        let reduced = comm.try_all_reduce_vec(&[step_loss_sum, local_bad])?;
        let mean_loss = reduced[0] / (n * accum) as f32;
        if !mean_loss.is_finite() {
            // A poisoned reduction: some rank fed NaN/Inf into the loss
            // itself. Surface it as a typed error so the recovery loop can
            // roll back to the last good checkpoint instead of training on.
            return Err(CommError::Corrupt {
                rank: comm.rank(),
                src: comm.rank(),
                detail: format!("non-finite global loss {mean_loss} at step {step}"),
            });
        }
        losses.push(mean_loss);
        if reduced[1] > 0.0 {
            // Some rank's gradients went non-finite beyond repair: skip the
            // optimizer update in lockstep (grads are discarded, weights
            // and Adam state stay at the last good step) and train on.
            skipped_steps += 1;
            comm.span_instant(SpanKind::Fault, "skip_step");
            model.zero_grads();
            last = Some(out);
            on_step(comm, step + 1, model, &losses);
            comm.span_end();
            continue;
        }
        if cfg.fsdp {
            fsdp::sync_grads(comm, &mut model.params_mut());
        }
        model.adam_step(&cfg.adam, step as u64 + 1);
        if cfg.offload_optimizer {
            // The update itself ran on identical replicas above; charge the
            // ZeRO-Offload PCIe round trip for the sharded states.
            let shard = if cfg.fsdp { comm.world_size() } else { 1 };
            comm.advance_compute(fsdp::offload_step_seconds(cfg.model.param_count(), shard));
        }
        last = Some(out);
        on_step(comm, step + 1, model, &losses);
        comm.span_end();
    }
    Ok(SpanOutcome {
        losses,
        last,
        skipped_steps,
        dropped_micros,
    })
}

fn step_with<E: AttnExec>(
    model: &mut Model,
    tokens: &[usize],
    targets: &[usize],
    exec: &mut E,
    cfg: &EngineConfig,
    accum: usize,
) -> StepOutput {
    let idx = exec.local_indices();
    let local_tokens: Vec<usize> = idx.iter().map(|&i| tokens[i]).collect();
    let local_targets: Vec<usize> = idx.iter().map(|&i| targets[i]).collect();
    let precision = if cfg.bf16_activations {
        ActPrecision::Bf16
    } else {
        ActPrecision::F32
    };
    model.train_step_prec(
        &local_tokens,
        &local_targets,
        exec,
        cfg.strategy,
        cfg.model.seq_len * accum,
        precision,
    )
}

/// Run a full distributed training job on `world` and aggregate metrics.
pub fn train(world: &World, cfg: &EngineConfig, steps: usize) -> TrainMetrics {
    let outs = world.run(|comm| run_rank(comm, cfg, steps));
    let wall_time = outs.iter().map(|o| o.time).fold(0.0, f64::max);
    let comm = outs
        .iter()
        .map(|o| o.stats)
        .fold(CommStats::default(), |a, b| a.merge(&b));
    let losses = outs[0].result.0.clone();
    for o in &outs {
        assert_eq!(o.result.0, losses, "ranks disagree on the global loss");
    }
    let g = world.topology().world_size() as f64;
    let total_tokens = (cfg.model.seq_len * steps) as f64;
    let tgs = if wall_time > 0.0 {
        total_tokens / wall_time / g
    } else {
        f64::INFINITY
    };
    let mfu = if wall_time > 0.0 && cfg.cost.peak_flops.is_finite() {
        useful_flops(&cfg.model, &cfg.mask) * steps as f64 / (wall_time * cfg.cost.peak_flops * g)
    } else {
        f64::NAN
    };
    let peak_activation_bytes = outs
        .iter()
        .map(|o| o.result.1.peak_activation_bytes)
        .max()
        .unwrap_or(0);
    let shard = if cfg.fsdp {
        world.topology().world_size()
    } else {
        1
    };
    TrainMetrics {
        losses,
        wall_time,
        tgs,
        mfu,
        peak_activation_bytes,
        state_bytes_per_rank: fsdp::device_state_bytes(
            cfg.model.param_count(),
            shard,
            cfg.offload_optimizer,
        ),
        comm,
    }
}

/// Everything needed to resume a training job from the middle: the number
/// of completed optimizer steps, the global loss history, and the full
/// model state (weights, gradients, Adam moments). Persisted with the same
/// versioned, checksummed, atomically-renamed format as [`Model::save`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainCheckpoint {
    /// Optimizer steps completed before this checkpoint was taken.
    pub step: usize,
    /// Global mean loss of every completed step.
    pub losses: Vec<f32>,
    /// Full training state after `step` steps.
    pub model: Model,
}

impl TrainCheckpoint {
    /// Write the checkpoint atomically (staged at `<path>.tmp`, published
    /// by rename) with a validated header.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let payload =
            serde_json::to_vec(self).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        atomic_write(path.as_ref(), &encode_checkpoint(&payload))
    }

    /// Load and validate a checkpoint written by [`TrainCheckpoint::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<TrainCheckpoint> {
        let bytes = std::fs::read(path)?;
        let payload = decode_checkpoint(&bytes)?;
        serde_json::from_slice(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Configuration of the elastic recovery loop in [`train_with_recovery`].
#[derive(Debug, Clone)]
pub struct RecoveryCfg {
    /// Checkpoint every `every` optimizer steps (rank 0 writes).
    pub every: usize,
    /// Checkpoint location: a file for monolithic checkpoints, a directory
    /// when `sharded` is set.
    pub path: PathBuf,
    /// Give up after this many restarts.
    pub max_restarts: usize,
    /// Persist checkpoints as per-rank shard files plus a checksummed
    /// manifest (`BURSTCKPT v2`, see [`crate::checkpoint_shard`]) instead
    /// of one monolithic file; `path` then names a directory.
    pub sharded: bool,
    /// When a restart is caused by a failure that names dead ranks,
    /// continue on a world shrunk by those ranks instead of a same-size
    /// replacement cluster.
    pub shrink: bool,
    /// Suppress the one-line recovery summary printed on completion.
    pub quiet: bool,
}

/// What [`train_with_recovery`] observed: the full loss history (bit-exact
/// against an uninterrupted run), the restarts it performed, and the typed
/// failure that triggered each one.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Global mean loss of every step, across all attempts.
    pub losses: Vec<f32>,
    /// How many times the job was restarted from a checkpoint.
    pub restarts: usize,
    /// One representative typed failure per failed attempt.
    pub failures: Vec<CommError>,
    /// The final model state after all `steps` completed.
    pub final_model: Model,
    /// Optimizer steps the skip-and-rescale path dropped in the final
    /// (successful) attempt.
    pub skipped_steps: usize,
    /// Poisoned micro-batches rolled back across all ranks of the final
    /// attempt.
    pub dropped_micros: usize,
    /// Ranks evicted by the shrink path, in eviction order (rank ids are
    /// relative to the world they were evicted from).
    pub evicted_ranks: Vec<usize>,
    /// Shard files read across every sharded restore.
    pub shards_reloaded: usize,
    /// Completed-then-lost steps re-run after restarts (work between the
    /// last checkpoint and each failure).
    pub steps_replayed: usize,
}

/// Elastic training: run `steps` optimizer steps, checkpointing every
/// `recovery.every` steps, and when any rank fails — crash, timeout, lost
/// peer, corrupted message or poisoned loss — restore the last good
/// checkpoint and replay from there on a fresh world.
///
/// `make_world(attempt, shrink_to)` builds the cluster for each attempt
/// (attempt 0 first); a fault-injection test hands back a faulty world
/// first and clean worlds after, modelling a failed node being replaced.
/// `shrink_to` is `Some(n)` only when [`RecoveryCfg::shrink`] decided to
/// continue on `n` ranks after an eviction — the closure must then return a
/// world of that size; `None` means "your configured size". Because every
/// quantity in [`run_span`] depends only on the restored model state and
/// the absolute step index, a same-size recovered run is bit-identical to
/// one that never failed.
pub fn train_with_recovery(
    make_world: impl Fn(usize, Option<usize>) -> World,
    cfg: &EngineConfig,
    steps: usize,
    recovery: &RecoveryCfg,
) -> io::Result<RecoveryReport> {
    let every = recovery.every.max(1);
    let mut restarts = 0usize;
    let mut failures: Vec<CommError> = Vec::new();
    let mut evicted_ranks: Vec<usize> = Vec::new();
    let mut shards_reloaded = 0usize;
    let mut steps_replayed = 0usize;
    let mut shrink_to: Option<usize> = None;
    // Highest step any rank completed in the current attempt; what was done
    // past the checkpoint at failure time gets replayed.
    let completed = Arc::new(AtomicUsize::new(0));
    // Set after a failed attempt to the step work had reached, so the next
    // restore can account the replay.
    let mut lost_from: Option<usize> = None;
    loop {
        // Resume from the last good checkpoint, or start fresh when none
        // has been written yet. A present-but-invalid file is a hard error:
        // silently restarting a long job from step 0 would be worse.
        let (start_model, start_step, prior_losses) = if recovery.sharded {
            match load_sharded(&recovery.path) {
                Ok((model, man, files)) => {
                    shards_reloaded += files;
                    (model, man.step as usize, man.losses)
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    (Model::new(cfg.model, cfg.seed), 0, Vec::new())
                }
                Err(e) => return Err(e),
            }
        } else {
            match TrainCheckpoint::load(&recovery.path) {
                Ok(ck) => (ck.model, ck.step, ck.losses),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    (Model::new(cfg.model, cfg.seed), 0, Vec::new())
                }
                Err(e) => return Err(e),
            }
        };
        if let Some(reached) = lost_from.take() {
            steps_replayed += reached.saturating_sub(start_step);
        }
        completed.store(start_step, Ordering::Relaxed);
        let world = make_world(restarts, shrink_to);
        let world_size = world.topology().world_size();
        let epoch = evicted_ranks.len() as u64;
        let ckpt_path = recovery.path.clone();
        let outs = world.run_faulty::<_, CommError, _>(|comm| {
            let mut model = start_model.clone();
            let completed = Arc::clone(&completed);
            let out = run_span(
                comm,
                cfg,
                &mut model,
                start_step,
                steps,
                |comm, done, m, sofar| {
                    completed.fetch_max(done, Ordering::Relaxed);
                    if done % every != 0 && done != steps {
                        return;
                    }
                    let rank = comm.rank();
                    comm.span_begin(SpanKind::Checkpoint, "checkpoint");
                    if recovery.sharded {
                        // Parallel per-rank write: every rank persists its
                        // own shard, a barrier confirms all shards landed,
                        // then rank 0 commits the manifest. Replicas are
                        // bit-identical, so rank 0 derives every shard's
                        // metadata from its own state without re-reading
                        // the files.
                        std::fs::create_dir_all(&ckpt_path).unwrap_or_else(|e| {
                            panic!("rank {rank}: checkpoint dir creation failed: {e}")
                        });
                        let flat = m.flat_state();
                        write_shard(&ckpt_path, rank, world_size, &flat)
                            .unwrap_or_else(|e| panic!("rank {rank}: shard write failed: {e}"));
                        comm.barrier();
                        if rank == 0 {
                            let mut losses = prior_losses.clone();
                            losses.extend_from_slice(sofar);
                            let shards = (0..world_size)
                                .map(|s| {
                                    shard_meta(&flat, world_size, s).unwrap_or_else(|e| {
                                        panic!("rank 0: shard meta failed: {e}")
                                    })
                                })
                                .collect();
                            let man = ShardManifest {
                                step: done as u64,
                                epoch,
                                world_size,
                                flat_len: flat.len(),
                                cfg: m.cfg,
                                losses,
                                shards,
                            };
                            write_manifest(&ckpt_path, &man)
                                .unwrap_or_else(|e| panic!("rank 0: manifest commit failed: {e}"));
                        }
                        // No rank trains past an uncommitted checkpoint.
                        comm.barrier();
                    } else if rank == 0 {
                        let mut losses = prior_losses.clone();
                        losses.extend_from_slice(sofar);
                        let ck = TrainCheckpoint {
                            step: done,
                            losses,
                            model: m.clone(),
                        };
                        ck.save(&ckpt_path)
                            .unwrap_or_else(|e| panic!("rank 0: checkpoint write failed: {e}"));
                    }
                    comm.span_end();
                },
            )?;
            Ok((out, model))
        });
        let mut first_err: Option<CommError> = None;
        let mut ok: Option<(SpanOutcome, Model)> = None;
        let mut dead: Vec<usize> = Vec::new();
        let mut attempt_dropped = 0usize;
        for out in outs {
            match out.result {
                Ok(r) => {
                    attempt_dropped += r.0.dropped_micros;
                    ok = Some(r);
                }
                Err(e) => {
                    dead.extend(dead_ranks(&e));
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            None => {
                let (span, final_model) = ok.expect("run_faulty returned no rank outputs");
                let mut losses = prior_losses;
                losses.extend(span.losses);
                if !recovery.quiet {
                    eprintln!(
                        "[recovery] steps={steps} restarts={restarts} replayed={steps_replayed} \
                         skipped={} dropped_micros={attempt_dropped} evicted={evicted_ranks:?} \
                         shards_reloaded={shards_reloaded}",
                        span.skipped_steps
                    );
                }
                return Ok(RecoveryReport {
                    losses,
                    restarts,
                    failures,
                    final_model,
                    skipped_steps: span.skipped_steps,
                    dropped_micros: attempt_dropped,
                    evicted_ranks,
                    shards_reloaded,
                    steps_replayed,
                });
            }
            Some(e) => {
                failures.push(e);
                restarts += 1;
                if restarts > recovery.max_restarts {
                    let last = failures.last().expect("at least one failure");
                    return Err(io::Error::other(format!(
                        "giving up after {} restarts; last failure: {last}",
                        recovery.max_restarts
                    )));
                }
                lost_from = Some(completed.load(Ordering::Relaxed));
                dead.sort_unstable();
                dead.dedup();
                dead.retain(|&r| r < world_size);
                if recovery.shrink && !dead.is_empty() && dead.len() < world_size {
                    shrink_to = Some(world_size - dead.len());
                    evicted_ranks.extend(dead);
                } else {
                    shrink_to = None;
                }
            }
        }
    }
}

/// Which ranks a failure implicates as dead, for the shrink path.
fn dead_ranks(e: &CommError) -> Vec<usize> {
    match e {
        CommError::Crashed { rank, .. } | CommError::Panicked { rank, .. } => vec![*rank],
        CommError::PeerLost { src, .. } | CommError::Timeout { src, .. } => vec![*src],
        CommError::Aborted { suspects, .. } => suspects.clone(),
        CommError::Evicted { evicted, .. } => evicted.clone(),
        _ => Vec::new(),
    }
}
