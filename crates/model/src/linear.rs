//! Linear projection `y = x Wᵀ` with an explicit backward pass.

use crate::param::Param;
use burst_tensor::Mat;
use serde::{Deserialize, Serialize};

/// A bias-free linear layer (`W: out × in`, LLaMA convention).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    pub weight: Param,
}

/// Forward context: the input, needed for `∇W = ∇yᵀ x`.
#[derive(Debug, Clone)]
pub struct LinearSaved {
    pub x: Mat,
}

impl LinearSaved {
    pub fn nbytes(&self) -> usize {
        self.x.nbytes()
    }
}

impl Linear {
    /// Init with std `1/√in` (maintains unit variance).
    pub fn new(out_dim: usize, in_dim: usize, seed: u64) -> Self {
        Linear {
            weight: Param::randn(out_dim, in_dim, 1.0 / (in_dim as f32).sqrt(), seed),
        }
    }

    #[track_caller]
    pub fn forward(&self, x: &Mat) -> (Mat, LinearSaved) {
        assert_eq!(x.cols(), self.weight.w.cols(), "Linear: dim mismatch");
        (x.matmul_nt(&self.weight.w), LinearSaved { x: x.clone() })
    }

    /// Backward: accumulates `∇W += ∇yᵀ x`, returns `∇x = ∇y W`.
    #[track_caller]
    pub fn backward(&mut self, saved: &LinearSaved, grad_y: &Mat) -> Mat {
        assert_eq!(grad_y.cols(), self.weight.w.rows(), "Linear bwd: dim");
        let gw = grad_y.matmul_tn(&saved.x);
        self.weight.grad.add_assign(&gw);
        grad_y.matmul(&self.weight.w)
    }

    /// Forward without retaining the input (used during recomputation when
    /// the caller will immediately run the backward with its own copy).
    pub fn forward_nosave(&self, x: &Mat) -> Mat {
        x.matmul_nt(&self.weight.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::{assert_allclose, numerical_grad};

    #[test]
    fn forward_matches_matmul() {
        let l = Linear::new(3, 4, 1);
        let x = randn_mat(5, 4, 1.0, 2);
        let (y, _) = l.forward(&x);
        assert_eq!(y.shape(), (5, 3));
        assert_allclose(&y, &x.matmul(&l.weight.w.transpose()), 1e-5, "fwd");
    }

    #[test]
    fn backward_matches_numerical() {
        let mut l = Linear::new(3, 4, 3);
        let x = randn_mat(5, 4, 1.0, 4);
        let gy = randn_mat(5, 3, 1.0, 5);
        let (_, saved) = l.forward(&x);
        let gx = l.backward(&saved, &gy);

        // Loss = <y, gy>.
        let w0 = l.weight.w.clone();
        let gy2 = gy.clone();
        let nx = numerical_grad(&x, 1e-2, |m| {
            m.matmul_nt(&w0)
                .as_slice()
                .iter()
                .zip(gy2.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_allclose(&gx, &nx, 1e-2, "∇x");

        let x2 = x.clone();
        let gy3 = gy.clone();
        let nw = numerical_grad(&l.weight.w, 1e-2, |m| {
            x2.matmul_nt(m)
                .as_slice()
                .iter()
                .zip(gy3.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_allclose(&l.weight.grad, &nw, 1e-2, "∇W");
    }

    #[test]
    fn backward_accumulates() {
        let mut l = Linear::new(2, 2, 6);
        let x = randn_mat(3, 2, 1.0, 7);
        let gy = randn_mat(3, 2, 1.0, 8);
        let (_, s) = l.forward(&x);
        l.backward(&s, &gy);
        let once = l.weight.grad.clone();
        l.backward(&s, &gy);
        let mut twice = once.clone();
        twice.add_assign(&once);
        assert_allclose(&l.weight.grad, &twice, 1e-5, "accumulation");
    }
}
