//! SwiGLU feed-forward network (LLaMA): `f = W₂ᵀ(silu(W₁x) ∘ W₃x)`.

use crate::linear::{Linear, LinearSaved};
use burst_tensor::Mat;
use serde::{Deserialize, Serialize};

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[inline]
fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// d silu / dx = σ(x)·(1 + x·(1 − σ(x))).
#[inline]
fn silu_grad(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 + x * (1.0 - s))
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwiGlu {
    /// Gate projection, `hidden × d`.
    pub w_gate: Linear,
    /// Up projection, `hidden × d`.
    pub w_up: Linear,
    /// Down projection, `d × hidden`.
    pub w_down: Linear,
}

#[derive(Debug, Clone)]
pub struct SwiGluSaved {
    gate_saved: LinearSaved,
    /// Pre-activation gate `g = x W₁ᵀ`.
    g: Mat,
    /// Up values `u = x W₃ᵀ`.
    u: Mat,
    down_saved: LinearSaved,
}

impl SwiGluSaved {
    pub fn nbytes(&self) -> usize {
        // gate_saved.x and the up projection share the same input; count
        // the distinct stored tensors.
        self.gate_saved.nbytes() + self.g.nbytes() + self.u.nbytes() + self.down_saved.nbytes()
    }
}

impl SwiGlu {
    pub fn new(d: usize, hidden: usize, seed: u64) -> Self {
        SwiGlu {
            w_gate: Linear::new(hidden, d, seed),
            w_up: Linear::new(hidden, d, seed + 1),
            w_down: Linear::new(d, hidden, seed + 2),
        }
    }

    pub fn forward(&self, x: &Mat) -> (Mat, SwiGluSaved) {
        let (g, gate_saved) = self.w_gate.forward(x);
        let (u, _) = self.w_up.forward(x);
        let mut s = g.clone();
        for (sv, uv) in s.as_mut_slice().iter_mut().zip(u.as_slice()) {
            *sv = silu(*sv) * uv;
        }
        let (y, down_saved) = self.w_down.forward(&s);
        (
            y,
            SwiGluSaved {
                gate_saved,
                g,
                u,
                down_saved,
            },
        )
    }

    /// Backward: accumulates all three weight grads, returns `∇x`.
    pub fn backward(&mut self, saved: &SwiGluSaved, grad_y: &Mat) -> Mat {
        // Through the down projection.
        let grad_s = self.w_down.backward(&saved.down_saved, grad_y);
        // s = silu(g) ∘ u.
        let mut grad_g = grad_s.clone();
        let mut grad_u = grad_s;
        for i in 0..grad_g.len() {
            let g = saved.g.as_slice()[i];
            let u = saved.u.as_slice()[i];
            let gs = grad_g.as_slice()[i];
            grad_g.as_mut_slice()[i] = gs * u * silu_grad(g);
            grad_u.as_mut_slice()[i] *= silu(g);
        }
        // Both projections saw the same input.
        let mut grad_x = self.w_gate.backward(&saved.gate_saved, &grad_g);
        let gx_up = self.w_up.backward(&saved.gate_saved, &grad_u);
        grad_x.add_assign(&gx_up);
        grad_x
    }

    pub fn forward_nosave(&self, x: &Mat) -> Mat {
        let g = self.w_gate.forward_nosave(x);
        let u = self.w_up.forward_nosave(x);
        let mut s = g;
        for (sv, uv) in s.as_mut_slice().iter_mut().zip(u.as_slice()) {
            *sv = silu(*sv) * uv;
        }
        self.w_down.forward_nosave(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::{assert_allclose, numerical_grad};

    #[test]
    fn silu_values() {
        assert!((silu(0.0)).abs() < 1e-7);
        assert!((silu(10.0) - 10.0).abs() < 1e-3); // ≈ identity for large x
        assert!(silu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn silu_grad_matches_finite_difference() {
        for x in [-3.0f32, -0.5, 0.0, 0.7, 4.0] {
            let eps = 1e-3;
            let fd = (silu(x + eps) - silu(x - eps)) / (2.0 * eps);
            assert!((silu_grad(x) - fd).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn forward_shape_and_nosave_agree() {
        let ffn = SwiGlu::new(6, 16, 10);
        let x = randn_mat(5, 6, 1.0, 11);
        let (y, _) = ffn.forward(&x);
        assert_eq!(y.shape(), (5, 6));
        assert_allclose(&y, &ffn.forward_nosave(&x), 0.0, "nosave");
    }

    #[test]
    fn backward_matches_numerical() {
        let mut ffn = SwiGlu::new(4, 8, 20);
        let x = randn_mat(3, 4, 0.8, 21);
        let gy = randn_mat(3, 4, 1.0, 22);
        let (_, saved) = ffn.forward(&x);
        let gx = ffn.backward(&saved, &gy);

        let f2 = ffn.clone();
        let gy2 = gy.clone();
        let nx = numerical_grad(&x, 1e-2, move |m| {
            f2.forward(m)
                .0
                .as_slice()
                .iter()
                .zip(gy2.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_allclose(&gx, &nx, 2e-2, "∇x");

        // Gate weight gradient.
        let x2 = x.clone();
        let gy3 = gy.clone();
        let mut probe = ffn.clone();
        let nw = numerical_grad(&ffn.w_gate.weight.w, 1e-2, move |m| {
            probe.w_gate.weight.w = m.clone();
            probe
                .forward(&x2)
                .0
                .as_slice()
                .iter()
                .zip(gy3.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_allclose(&ffn.w_gate.weight.grad, &nw, 2e-2, "∇W_gate");
    }
}
