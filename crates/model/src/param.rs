//! Trainable parameters and the Adam optimizer.

use burst_tensor::{randn_mat, Mat};
use serde::{Deserialize, Serialize};

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamCfg {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
}

impl Default for AdamCfg {
    fn default() -> Self {
        AdamCfg {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// A trainable matrix with its gradient accumulator and Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    pub w: Mat,
    pub grad: Mat,
    m: Mat,
    v: Mat,
}

impl Param {
    pub fn new(w: Mat) -> Self {
        let (r, c) = w.shape();
        Param {
            w,
            grad: Mat::zeros(r, c),
            m: Mat::zeros(r, c),
            v: Mat::zeros(r, c),
        }
    }

    /// Gaussian init with the given std, deterministic in `seed`.
    pub fn randn(rows: usize, cols: usize, std: f32, seed: u64) -> Self {
        Param::new(randn_mat(rows, cols, std, seed))
    }

    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Scalars in this parameter's full training state: weights, gradient
    /// accumulator and both Adam moments.
    pub fn state_len(&self) -> usize {
        4 * self.w.len()
    }

    /// Append the full training state (`w`, `grad`, `m`, `v` in that order)
    /// to `out` — the flat layout sharded checkpoints serialize.
    pub fn append_state(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(self.grad.as_slice());
        out.extend_from_slice(self.m.as_slice());
        out.extend_from_slice(self.v.as_slice());
    }

    /// Restore the full training state from a flat slice written by
    /// [`Param::append_state`]. Panics on length mismatch.
    pub fn load_state(&mut self, src: &[f32]) {
        let n = self.w.len();
        assert_eq!(src.len(), 4 * n, "Param::load_state: length mismatch");
        self.w.as_mut_slice().copy_from_slice(&src[..n]);
        self.grad.as_mut_slice().copy_from_slice(&src[n..2 * n]);
        self.m.as_mut_slice().copy_from_slice(&src[2 * n..3 * n]);
        self.v.as_mut_slice().copy_from_slice(&src[3 * n..]);
    }

    /// One Adam update; `t` is the 1-based global step (bias correction).
    pub fn adam_step(&mut self, cfg: &AdamCfg, t: u64) {
        debug_assert!(t >= 1, "adam_step: t is 1-based");
        let b1t = 1.0 - cfg.beta1.powi(t as i32);
        let b2t = 1.0 - cfg.beta2.powi(t as i32);
        let w = self.w.as_mut_slice();
        let g = self.grad.as_slice();
        let m = self.m.as_mut_slice();
        let v = self.v.as_mut_slice();
        for i in 0..w.len() {
            m[i] = cfg.beta1 * m[i] + (1.0 - cfg.beta1) * g[i];
            v[i] = cfg.beta2 * v[i] + (1.0 - cfg.beta2) * g[i] * g[i];
            let mhat = m[i] / b1t;
            let vhat = v[i] / b2t;
            w[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_descends_a_quadratic() {
        // minimise f(w) = 0.5‖w − 3‖²; gradient w − 3.
        let mut p = Param::new(Mat::zeros(2, 2));
        let cfg = AdamCfg {
            lr: 0.1,
            ..AdamCfg::default()
        };
        for t in 1..=400 {
            for (g, w) in p.grad.as_mut_slice().iter_mut().zip(p.w.as_slice().iter()) {
                *g = w - 3.0;
            }
            p.adam_step(&cfg, t);
        }
        for &w in p.w.as_slice() {
            assert!((w - 3.0).abs() < 0.05, "converged to {w}");
        }
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::randn(2, 3, 1.0, 1);
        p.grad = Mat::full(2, 3, 5.0);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn adam_is_deterministic() {
        let run = || {
            let mut p = Param::randn(3, 3, 1.0, 7);
            let cfg = AdamCfg::default();
            for t in 1..=5 {
                p.grad = Mat::full(3, 3, 0.3);
                p.adam_step(&cfg, t);
            }
            p.w
        };
        assert_eq!(run(), run());
    }
}
