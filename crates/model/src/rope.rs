//! Rotary position embeddings (RoPE, the LLaMA positional scheme).
//!
//! Each head-dimension pair `(2i, 2i+1)` of a query/key row is rotated by
//! `pos · θ^{−2i/d}`. Positions are **global token indices**, so a
//! distributed shard rotates by the positions it owns — zigzag and striped
//! layouts work unchanged, and distributed attention stays bit-compatible
//! with the single-device reference.
//!
//! The rotation is orthogonal, so the backward pass is the inverse
//! rotation ([`rope_backward`]).

use burst_tensor::Mat;

/// LLaMA's base frequency.
pub const ROPE_THETA: f32 = 10_000.0;

fn rotate(x: &Mat, positions: &[usize], theta: f32, sign: f32) -> Mat {
    assert_eq!(x.rows(), positions.len(), "rope: row/position mismatch");
    let d = x.cols();
    assert_eq!(d % 2, 0, "rope: head dim must be even");
    let mut out = x.clone();
    // Per-pair inverse frequencies, precomputed once per call.
    let inv_freq: Vec<f32> = (0..d / 2)
        .map(|i| theta.powf(-2.0 * i as f32 / d as f32))
        .collect();
    for (r, &pos) in positions.iter().enumerate() {
        let row = out.row_mut(r);
        for (i, &f) in inv_freq.iter().enumerate() {
            let angle = sign * pos as f32 * f;
            let (sin, cos) = angle.sin_cos();
            let a = row[2 * i];
            let b = row[2 * i + 1];
            row[2 * i] = a * cos - b * sin;
            row[2 * i + 1] = a * sin + b * cos;
        }
    }
    out
}

/// Rotate `x` (rows × head_dim) by its global `positions`.
pub fn rope_apply(x: &Mat, positions: &[usize], theta: f32) -> Mat {
    rotate(x, positions, theta, 1.0)
}

/// Gradient through the rotation: the inverse (negative-angle) rotation.
pub fn rope_backward(grad: &Mat, positions: &[usize], theta: f32) -> Mat {
    rotate(grad, positions, theta, -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::assert_allclose;

    #[test]
    fn position_zero_is_identity() {
        let x = randn_mat(1, 8, 1.0, 1);
        let y = rope_apply(&x, &[0], ROPE_THETA);
        assert_allclose(&y, &x, 1e-6, "pos 0");
    }

    #[test]
    fn rotation_preserves_norm() {
        let x = randn_mat(4, 8, 1.0, 2);
        let y = rope_apply(&x, &[3, 100, 7, 100_000], ROPE_THETA);
        for r in 0..4 {
            let nx: f32 = x.row(r).iter().map(|v| v * v).sum();
            let ny: f32 = y.row(r).iter().map(|v| v * v).sum();
            assert!((nx - ny).abs() < 1e-3, "row {r}: {nx} vs {ny}");
        }
    }

    #[test]
    fn backward_inverts_forward() {
        let x = randn_mat(3, 6, 1.0, 3);
        let pos = [5usize, 17, 999];
        let y = rope_apply(&x, &pos, ROPE_THETA);
        let back = rope_backward(&y, &pos, ROPE_THETA);
        assert_allclose(&back, &x, 1e-5, "inverse rotation");
    }

    #[test]
    fn attention_scores_depend_on_relative_position_only() {
        // RoPE's defining property: ⟨R(p)q, R(p+k)v⟩ depends only on k.
        let q = randn_mat(1, 8, 1.0, 4);
        let k = randn_mat(1, 8, 1.0, 5);
        let dot =
            |a: &Mat, b: &Mat| -> f32 { a.row(0).iter().zip(b.row(0)).map(|(x, y)| x * y).sum() };
        let s1 = dot(
            &rope_apply(&q, &[10], ROPE_THETA),
            &rope_apply(&k, &[7], ROPE_THETA),
        );
        let s2 = dot(
            &rope_apply(&q, &[210], ROPE_THETA),
            &rope_apply(&k, &[207], ROPE_THETA),
        );
        assert!((s1 - s2).abs() < 1e-3, "relative invariance: {s1} vs {s2}");
    }

    #[test]
    fn gradient_chain_matches_numerical() {
        // f(x) = <rope(x), a>: ∇x = rope_backward(a).
        let x = randn_mat(2, 4, 1.0, 6);
        let a = randn_mat(2, 4, 1.0, 7);
        let pos = [3usize, 11];
        let analytic = rope_backward(&a, &pos, ROPE_THETA);
        let a2 = a.clone();
        let numeric = burst_tensor::testutil::numerical_grad(&x, 1e-2, move |m| {
            rope_apply(m, &pos, ROPE_THETA)
                .as_slice()
                .iter()
                .zip(a2.as_slice())
                .map(|(u, v)| u * v)
                .sum()
        });
        assert_allclose(&analytic, &numeric, 1e-2, "rope grad");
    }
}
