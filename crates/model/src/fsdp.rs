//! FSDP-style parameter handling (the paper trains with BMTrain's fully
//! sharded data parallelism).
//!
//! Compute replicas hold full parameters; sharding shows up as *real*
//! collective traffic on the simulated cluster: weights are all-gathered
//! from row shards at step start, gradients are all-reduced (ring
//! reduce-scatter + all-gather, numerically the sum every rank needs before
//! the identical Adam update). The virtual clock therefore carries the
//! FSDP communication the paper identifies as the reason end-to-end
//! overlap is imperfect (§4.3).
//!
//! Every per-parameter collective is wrapped in a [`SpanKind::Optim`] span
//! (`fsdp_gather` / `fsdp_sync`), so optimizer-path communication — and
//! under the reliable transport, its retransmissions — is attributable
//! per operation in the trace, not just in aggregate.

use crate::param::Param;
use burst_comm::obs::MemCategory;
use burst_comm::{
    shrink_all_gather_mat, shrink_all_reduce_mat, CommError, Communicator, Membership, RetryPolicy,
    SpanKind,
};
use burst_tensor::Mat;

/// Near-equal row range of `rank` for an `rows`-row parameter.
fn shard_range(rows: usize, g: usize, rank: usize) -> (usize, usize) {
    (rows * rank / g, rows * (rank + 1) / g)
}

/// All-gather every parameter's row shard (charges the weight-gather
/// traffic; the gathered values must reproduce the replica, which is
/// asserted — catching any divergence between ranks).
pub fn gather_weights(comm: &mut Communicator, params: &mut [&mut Param]) {
    let g = comm.world_size();
    if g == 1 {
        return;
    }
    for p in params.iter_mut() {
        let (r0, r1) = shard_range(p.w.rows(), g, comm.rank());
        let shard = p.w.slice_rows(r0, r1);
        // The gathered replica is a transient wire-width buffer, live from
        // the collective until the shards are stitched back together.
        let buf = comm.mem_alloc(
            "fsdp_gather_buf",
            MemCategory::CommBuffers,
            comm.mem_wire_bytes(p.w.rows() * p.w.cols()),
        );
        comm.span_begin(SpanKind::Optim, "fsdp_gather");
        let parts = comm.all_gather_mat(&shard);
        comm.span_end();
        let gathered = Mat::vstack(&parts);
        comm.mem_free(buf);
        debug_assert_eq!(gathered.shape(), p.w.shape());
        assert!(
            burst_tensor::testutil::allclose(&gathered, &p.w, 1e-6, 1e-6),
            "FSDP: rank replicas diverged for a parameter of shape {:?}",
            p.w.shape()
        );
        p.w = gathered;
    }
}

/// Membership-aware [`gather_weights`]: shards over the **alive set** (ring
/// positions replace rank ids), so a shrunken or regrown world gathers
/// exactly like a fresh world of the same size — the bit-identity the
/// elastic engine's differential gates rely on. Fallible: a rank dying
/// mid-gather surfaces as a typed error for the in-step recovery loop.
pub fn try_gather_weights_m(
    comm: &mut Communicator,
    m: &mut Membership,
    params: &mut [&mut Param],
    policy: &RetryPolicy,
) -> Result<(), CommError> {
    let g = m.num_alive();
    if g == 1 {
        return Ok(());
    }
    let pos = m
        .pos_of(comm.rank())
        .expect("FSDP gather on an evicted rank");
    for p in params.iter_mut() {
        let (r0, r1) = shard_range(p.w.rows(), g, pos);
        let shard = p.w.slice_rows(r0, r1);
        let buf = comm.mem_alloc(
            "fsdp_gather_buf",
            MemCategory::CommBuffers,
            comm.mem_wire_bytes(p.w.rows() * p.w.cols()),
        );
        comm.span_begin(SpanKind::Optim, "fsdp_gather");
        let parts = shrink_all_gather_mat(comm, m, &shard, policy);
        comm.span_end();
        // A member dying mid-gather leaves `buf` open; the ledger
        // force-closes it with a warning — the crash's true footprint.
        let gathered = Mat::vstack(&parts?);
        comm.mem_free(buf);
        debug_assert_eq!(gathered.shape(), p.w.shape());
        assert!(
            burst_tensor::testutil::allclose(&gathered, &p.w, 1e-6, 1e-6),
            "FSDP: rank replicas diverged for a parameter of shape {:?}",
            p.w.shape()
        );
        p.w = gathered;
    }
    Ok(())
}

/// Membership-aware [`sync_grads`]: all-reduce over the alive set with the
/// same accumulation order as a fresh world of that size (see
/// [`burst_comm::shrink_all_reduce_mat`]).
pub fn try_sync_grads_m(
    comm: &mut Communicator,
    m: &mut Membership,
    params: &mut [&mut Param],
    policy: &RetryPolicy,
) -> Result<(), CommError> {
    if m.num_alive() == 1 {
        return Ok(());
    }
    for p in params.iter_mut() {
        let buf = comm.mem_alloc(
            "fsdp_sync_buf",
            MemCategory::CommBuffers,
            comm.mem_wire_bytes(p.grad.rows() * p.grad.cols()),
        );
        comm.span_begin(SpanKind::Optim, "fsdp_sync");
        let reduced = shrink_all_reduce_mat(comm, m, &p.grad, policy);
        comm.span_end();
        p.grad = reduced?;
        comm.mem_free(buf);
    }
    Ok(())
}

/// All-reduce (sum) every parameter's gradient across ranks.
pub fn sync_grads(comm: &mut Communicator, params: &mut [&mut Param]) {
    let g = comm.world_size();
    if g == 1 {
        return;
    }
    for p in params.iter_mut() {
        let buf = comm.mem_alloc(
            "fsdp_sync_buf",
            MemCategory::CommBuffers,
            comm.mem_wire_bytes(p.grad.rows() * p.grad.cols()),
        );
        comm.span_begin(SpanKind::Optim, "fsdp_sync");
        p.grad = comm.all_reduce_mat(&p.grad);
        comm.span_end();
        comm.mem_free(buf);
    }
}

/// Modeled per-rank parameter + optimizer memory under FSDP sharding:
/// each rank persists `1/G` of weights, gradients and the two Adam moments
/// (all f32 here; the perf crate models mixed precision at paper scale).
pub fn sharded_state_bytes(total_params: usize, g: usize) -> usize {
    total_params * 4 * 4 / g
}

/// Device-resident state with optional optimizer offloading (ZeRO-Offload):
/// the Adam moments (2 × 4 B/param) move to host memory, leaving weights +
/// gradients on device.
pub fn device_state_bytes(total_params: usize, g: usize, offload_optimizer: bool) -> usize {
    let per_param = if offload_optimizer { 2 * 4 } else { 4 * 4 };
    total_params * per_param / g
}

/// PCIe round-trip seconds for one offloaded optimizer step: gradients
/// stream to the host and updated parameters stream back (ZeRO-Offload's
/// data path), at an effective 12 GB/s per direction.
pub fn offload_step_seconds(total_params: usize, g: usize) -> f64 {
    const PCIE_BW: f64 = 12e9;
    let down = (total_params / g) as f64 * 4.0; // fp32 gradients out
    let up = (total_params / g) as f64 * 4.0; // fp32 master weights back
    down / PCIE_BW + up / PCIE_BW
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_rows() {
        for rows in [7usize, 8, 33] {
            for g in [1usize, 3, 4] {
                let mut covered = 0;
                for r in 0..g {
                    let (a, b) = shard_range(rows, g, r);
                    assert_eq!(a, covered);
                    covered = b;
                }
                assert_eq!(covered, rows);
            }
        }
    }

    #[test]
    fn sharded_state_shrinks_with_world() {
        assert_eq!(sharded_state_bytes(1000, 1), 16_000);
        assert_eq!(sharded_state_bytes(1000, 4), 4_000);
    }

    #[test]
    fn offload_halves_device_state() {
        assert_eq!(device_state_bytes(1000, 1, false), 16_000);
        assert_eq!(device_state_bytes(1000, 1, true), 8_000);
        assert_eq!(device_state_bytes(1000, 4, true), 2_000);
    }

    #[test]
    fn offload_time_scales_with_params_and_shards() {
        let t1 = offload_step_seconds(12_000_000, 1);
        let t4 = offload_step_seconds(12_000_000, 4);
        assert!(t1 > 0.0);
        assert!((t1 / t4 - 4.0).abs() < 1e-9);
    }
}
