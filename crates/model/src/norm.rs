//! RMSNorm (the LLaMA normalisation) with explicit backward.
//!
//! `y_rc = w_c · x_rc / rms_r`, `rms_r = sqrt(mean_c(x_rc²) + ε)`.

use crate::param::Param;
use burst_tensor::Mat;
use serde::{Deserialize, Serialize};

const EPS: f32 = 1e-6;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RmsNorm {
    /// Per-dimension gain, stored as a `1 × d` matrix.
    pub weight: Param,
}

#[derive(Debug, Clone)]
pub struct RmsNormSaved {
    pub x: Mat,
    inv_rms: Vec<f32>,
}

impl RmsNormSaved {
    pub fn nbytes(&self) -> usize {
        self.x.nbytes() + self.inv_rms.len() * 4
    }
}

impl RmsNorm {
    pub fn new(dim: usize) -> Self {
        RmsNorm {
            weight: Param::new(Mat::full(1, dim, 1.0)),
        }
    }

    #[track_caller]
    pub fn forward(&self, x: &Mat) -> (Mat, RmsNormSaved) {
        let d = x.cols();
        assert_eq!(d, self.weight.w.cols(), "RmsNorm: dim mismatch");
        let mut y = x.clone();
        let mut inv_rms = Vec::with_capacity(x.rows());
        let w = self.weight.w.row(0);
        for r in 0..x.rows() {
            let row = y.row_mut(r);
            let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / d as f32;
            let inv = 1.0 / (ms + EPS).sqrt();
            inv_rms.push(inv);
            for (v, &g) in row.iter_mut().zip(w) {
                *v *= inv * g;
            }
        }
        (
            y,
            RmsNormSaved {
                x: x.clone(),
                inv_rms,
            },
        )
    }

    /// Backward: accumulates `∇w`, returns `∇x`.
    ///
    /// With `u = x·inv_rms`: `y = w ∘ u`; `∇u = w ∘ ∇y`;
    /// `∇x = inv_rms · (∇u − u · mean_c(∇u ∘ u))` (projection removes the
    /// component along `x` that the normalisation absorbed).
    #[track_caller]
    pub fn backward(&mut self, saved: &RmsNormSaved, grad_y: &Mat) -> Mat {
        let d = saved.x.cols();
        assert_eq!(grad_y.shape(), saved.x.shape(), "RmsNorm bwd: shape");
        let w = self.weight.w.row(0).to_vec();
        let mut grad_x = Mat::zeros(saved.x.rows(), d);
        let mut grad_w = vec![0.0f32; d];
        for r in 0..saved.x.rows() {
            let inv = saved.inv_rms[r];
            let x = saved.x.row(r);
            let gy = grad_y.row(r);
            // u = x·inv; ∇w_c += gy_c · u_c
            let mut dot = 0.0f32; // Σ_c ∇u_c · u_c / d
            for c in 0..d {
                let u = x[c] * inv;
                grad_w[c] += gy[c] * u;
                dot += w[c] * gy[c] * u;
            }
            dot /= d as f32;
            let gx = grad_x.row_mut(r);
            for c in 0..d {
                let u = x[c] * inv;
                gx[c] = inv * (w[c] * gy[c] - u * dot);
            }
        }
        for (acc, g) in self.weight.grad.row_mut(0).iter_mut().zip(&grad_w) {
            *acc += g;
        }
        grad_x
    }

    pub fn forward_nosave(&self, x: &Mat) -> Mat {
        self.forward(x).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::{assert_allclose, numerical_grad};

    #[test]
    fn output_rows_have_unit_rms_with_unit_gain() {
        let n = RmsNorm::new(8);
        let x = randn_mat(4, 8, 3.0, 1);
        let (y, _) = n.forward(&x);
        for r in 0..4 {
            let ms: f32 = y.row(r).iter().map(|v| v * v).sum::<f32>() / 8.0;
            assert!((ms - 1.0).abs() < 1e-3, "row {r} ms {ms}");
        }
    }

    #[test]
    fn backward_matches_numerical() {
        let mut n = RmsNorm::new(5);
        // Non-trivial gain.
        n.weight.w = randn_mat(1, 5, 1.0, 2);
        let x = randn_mat(4, 5, 1.0, 3);
        let gy = randn_mat(4, 5, 1.0, 4);
        let (_, saved) = n.forward(&x);
        let gx = n.backward(&saved, &gy);

        let n2 = n.clone();
        let gy2 = gy.clone();
        let nx = numerical_grad(&x, 1e-2, move |m| {
            n2.forward(m)
                .0
                .as_slice()
                .iter()
                .zip(gy2.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_allclose(&gx, &nx, 2e-2, "∇x");

        let x2 = x.clone();
        let gy3 = gy.clone();
        let mut probe = n.clone();
        let nw = numerical_grad(&n.weight.w, 1e-2, move |m| {
            probe.weight.w = m.clone();
            probe
                .forward(&x2)
                .0
                .as_slice()
                .iter()
                .zip(gy3.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_allclose(&n.weight.grad, &nw, 2e-2, "∇w");
    }

    #[test]
    fn scale_invariance_of_gradient() {
        // RMSNorm output is invariant to input scale, so ∇x must be
        // orthogonal-ish: scaling x by c scales ∇x by 1/c.
        let mut n = RmsNorm::new(6);
        let x = randn_mat(2, 6, 1.0, 5);
        let gy = randn_mat(2, 6, 1.0, 6);
        let (_, s1) = n.forward(&x);
        let g1 = n.backward(&s1, &gy);
        let xs = x.scaled(2.0);
        let (_, s2) = n.forward(&xs);
        let g2 = n.backward(&s2, &gy);
        assert_allclose(&g2.scaled(2.0), &g1, 1e-3, "1/c scaling");
    }
}
