//! # burst-model
//!
//! The Transformer training substrate of the BurstEngine reproduction:
//! a LLaMA-style model (RMSNorm → multi-head attention → RMSNorm → SwiGLU
//! FFN, pre-norm residuals, tied token embedding ↔ LM head optional) with
//! **hand-written forward and backward passes** — no autograd — so every
//! stored activation is explicit and the gradient-checkpointing strategies
//! of the paper (§3.2) can be implemented literally:
//!
//! * [`checkpoint::Strategy::None`] — store everything;
//! * [`checkpoint::Strategy::Full`] — store block inputs only, recompute
//!   whole blocks in the backward (classic gradient checkpointing);
//! * [`checkpoint::Strategy::SelectivePlusPlus`] — additionally store each
//!   attention module's `(O, Lse)` so attention (and its ring
//!   communication!) is never recomputed — DISTFLASHATTN / LoongTrain's
//!   selective checkpointing++;
//! * [`checkpoint::Strategy::SeqSelective`] — the paper's contribution:
//!   store `(O, Lse)` only for the *tail* of the sequence and recompute the
//!   cheap front segment, halving checkpoint memory at ~¼ of the attention
//!   recompute cost.
//!
//! The same layer code runs single-device (for reference) and distributed:
//! all non-attention ops are row-local, attention plugs in through the
//! [`attention::AttnExec`] trait (local flash, ring/burst/double-ring,
//! Ulysses or USP backends), parameters can be FSDP-sharded
//! ([`fsdp::FsdpParam`]), and the LM head + loss use the fused kernel of
//! `burst-kernels` (§3.3). The [`engine`] module assembles full distributed
//! training steps and reports loss, virtual step time, TGS/MFU and modeled
//! peak memory.

pub mod attention;
pub mod block;
pub mod checkpoint;
pub mod checkpoint_io;
pub mod checkpoint_shard;
pub mod embedding;
pub mod engine;
pub mod ffn;
pub mod fsdp;
pub mod linear;
pub mod memory;
pub mod model;
pub mod norm;
pub mod param;
pub mod rope;

pub use attention::{AttnExec, DistExec, ElasticExec, LocalExec, MultiHeadAttention};
pub use block::TransformerBlock;
pub use checkpoint::{cutoff_for, cutoff_for_masked, ActPrecision, StoredMat, Strategy};
pub use checkpoint_shard::{load_sharded, save_sharded, ShardManifest, ShardMeta};
pub use engine::{
    run_span_elastic, train_with_recovery, ElasticCfg, ElasticOutcome, EngineConfig, RecoveryCfg,
    RecoveryReport, SpanOutcome, TrainCheckpoint, TrainMetrics,
};
pub use memory::MemoryTracker;
pub use model::{Model, ModelConfig};
pub use param::{AdamCfg, Param};
