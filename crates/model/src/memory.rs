//! Activation-memory accounting.
//!
//! The models trained here are tiny, so the interesting quantity is not the
//! process RSS but the *bookkept* activation footprint: every checkpointing
//! strategy registers exactly what it stores, and recomputation registers
//! its transient working set. The resulting peaks reproduce the orderings
//! of the paper's Fig. 7 at any scale.

/// A current/peak byte counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryTracker {
    cur: usize,
    peak: usize,
}

impl MemoryTracker {
    pub fn new() -> Self {
        MemoryTracker::default()
    }

    /// Register `bytes` of live storage.
    pub fn alloc(&mut self, bytes: usize) {
        self.cur += bytes;
        self.peak = self.peak.max(self.cur);
    }

    /// Release previously registered storage.
    #[track_caller]
    pub fn free(&mut self, bytes: usize) {
        debug_assert!(self.cur >= bytes, "MemoryTracker: freeing more than live");
        self.cur = self.cur.saturating_sub(bytes);
    }

    pub fn current(&self) -> usize {
        self.cur
    }

    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Run `f` with `bytes` of transient storage registered.
    pub fn with_transient<R>(&mut self, bytes: usize, f: impl FnOnce(&mut Self) -> R) -> R {
        self.alloc(bytes);
        let r = f(self);
        self.free(bytes);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut t = MemoryTracker::new();
        t.alloc(100);
        t.alloc(50);
        t.free(120);
        t.alloc(10);
        assert_eq!(t.current(), 40);
        assert_eq!(t.peak(), 150);
    }

    #[test]
    fn transient_restores_current() {
        let mut t = MemoryTracker::new();
        t.alloc(10);
        let peak_inside = t.with_transient(90, |t| t.peak());
        assert_eq!(peak_inside, 100);
        assert_eq!(t.current(), 10);
        assert_eq!(t.peak(), 100);
    }
}
