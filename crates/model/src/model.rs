//! The full LLaMA-style model: embedding → blocks → final norm → fused LM
//! head + loss.

use crate::attention::AttnExec;
use crate::block::TransformerBlock;
use crate::checkpoint::{backward_blocks, forward_blocks_prec, ActPrecision, Strategy};
use crate::embedding::Embedding;
use crate::memory::MemoryTracker;
use crate::norm::RmsNorm;
use crate::param::{AdamCfg, Param};
use burst_kernels::lmhead::{fused_lm_loss_with_blocks, naive_lm_loss};

/// Architecture hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ModelConfig {
    pub layers: usize,
    pub d_model: usize,
    pub heads: usize,
    pub d_ff: usize,
    pub vocab: usize,
    /// Global sequence length.
    pub seq_len: usize,
    /// Rotary position embeddings on Q/K (LLaMA).
    pub rope: bool,
}

impl ModelConfig {
    /// A tiny configuration for tests and examples.
    pub fn tiny() -> Self {
        ModelConfig {
            layers: 2,
            d_model: 16,
            heads: 2,
            d_ff: 32,
            vocab: 31,
            seq_len: 32,
            rope: true,
        }
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        let block = 4 * self.d_model * self.d_model        // QKVO
            + 3 * self.d_model * self.d_ff                 // SwiGLU
            + 2 * self.d_model; // two norms
        self.vocab * self.d_model * 2                       // embed + head
            + self.layers * block
            + self.d_model // final norm
    }
}

/// A trainable model instance. Seeded construction is deterministic, so
/// every rank builds identical replicas.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Model {
    pub cfg: ModelConfig,
    pub embed: Embedding,
    pub blocks: Vec<TransformerBlock>,
    pub final_norm: RmsNorm,
    pub head: Param,
    /// Fused LM head tile sizes `(B_s, B_v)`; `None` = unfused reference.
    pub lm_tiles: Option<(usize, usize)>,
}

/// Result of one forward+backward pass.
#[derive(Debug, Clone)]
pub struct StepOutput {
    /// Sum of per-token losses over the *local* rows.
    pub loss_sum: f32,
    /// Number of local rows.
    pub tokens: usize,
    /// Peak tracked activation bytes.
    pub peak_activation_bytes: usize,
    /// Peak live logits elements in the LM head (Fig. 8's quantity).
    pub peak_logits_elems: usize,
}

impl Model {
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        Model {
            cfg,
            embed: Embedding::new(cfg.vocab, cfg.d_model, seed),
            blocks: (0..cfg.layers)
                .map(|l| {
                    let mut b = TransformerBlock::new(
                        cfg.d_model,
                        cfg.heads,
                        cfg.d_ff,
                        seed + 1000 * (l as u64 + 1),
                    );
                    b.attn.rope = cfg.rope;
                    b
                })
                .collect(),
            final_norm: RmsNorm::new(cfg.d_model),
            head: Param::randn(cfg.vocab, cfg.d_model, 0.02, seed + 999_983),
            lm_tiles: Some((32, 64)),
        }
    }

    /// Every parameter, for optimizer steps and gradient synchronisation
    /// (stable order across ranks).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps: Vec<&mut Param> = vec![&mut self.embed.table];
        for b in &mut self.blocks {
            ps.push(&mut b.norm1.weight);
            ps.push(&mut b.attn.wq.weight);
            ps.push(&mut b.attn.wk.weight);
            ps.push(&mut b.attn.wv.weight);
            ps.push(&mut b.attn.wo.weight);
            ps.push(&mut b.norm2.weight);
            ps.push(&mut b.ffn.w_gate.weight);
            ps.push(&mut b.ffn.w_up.weight);
            ps.push(&mut b.ffn.w_down.weight);
        }
        ps.push(&mut self.final_norm.weight);
        ps.push(&mut self.head);
        ps
    }

    /// Read-only view of every parameter, in the same stable order as
    /// [`Model::params_mut`].
    pub fn params(&self) -> Vec<&Param> {
        let mut ps: Vec<&Param> = vec![&self.embed.table];
        for b in &self.blocks {
            ps.push(&b.norm1.weight);
            ps.push(&b.attn.wq.weight);
            ps.push(&b.attn.wk.weight);
            ps.push(&b.attn.wv.weight);
            ps.push(&b.attn.wo.weight);
            ps.push(&b.norm2.weight);
            ps.push(&b.ffn.w_gate.weight);
            ps.push(&b.ffn.w_up.weight);
            ps.push(&b.ffn.w_down.weight);
        }
        ps.push(&self.final_norm.weight);
        ps.push(&self.head);
        ps
    }

    /// Total scalars in the flat training state ([`Model::flat_state`]).
    pub fn flat_state_len(&self) -> usize {
        self.params().iter().map(|p| p.state_len()).sum()
    }

    /// The entire training state — weights, gradients and Adam moments of
    /// every parameter, in [`Model::params`] order — as one flat vector.
    /// This is the layout sharded checkpoints split across ranks.
    pub fn flat_state(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.flat_state_len());
        for p in self.params() {
            p.append_state(&mut out);
        }
        out
    }

    /// Restore the entire training state from a flat vector written by
    /// [`Model::flat_state`]. Panics on length mismatch.
    pub fn load_flat_state(&mut self, src: &[f32]) {
        let want: usize = self.flat_state_len();
        assert_eq!(src.len(), want, "Model::load_flat_state: length mismatch");
        let mut off = 0;
        for p in self.params_mut() {
            let n = p.state_len();
            p.load_state(&src[off..off + n]);
            off += n;
        }
    }

    pub fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// One Adam update on every parameter (`t` 1-based).
    pub fn adam_step(&mut self, cfg: &AdamCfg, t: u64) {
        for p in self.params_mut() {
            p.adam_step(cfg, t);
        }
    }

    /// Forward + backward over this rank's token rows.
    ///
    /// `tokens`/`targets` are the local rows (layout order); the loss
    /// gradient is scaled by `1/global_tokens` so that summing parameter
    /// gradients across ranks yields the gradient of the *global* mean
    /// loss.
    pub fn train_step<E: AttnExec>(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
        exec: &mut E,
        strategy: Strategy,
        global_tokens: usize,
    ) -> StepOutput {
        self.train_step_prec(
            tokens,
            targets,
            exec,
            strategy,
            global_tokens,
            ActPrecision::F32,
        )
    }

    /// [`Model::train_step`] at an explicit activation-stash precision:
    /// under [`ActPrecision::Bf16`] every checkpointed block input and
    /// cached attention output is held at 2 bytes per element, halving
    /// `peak_activation_bytes`' stash component.
    pub fn train_step_prec<E: AttnExec>(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
        exec: &mut E,
        strategy: Strategy,
        global_tokens: usize,
        precision: ActPrecision,
    ) -> StepOutput {
        assert_eq!(tokens.len(), targets.len(), "train_step: token/target");
        let mut tracker = MemoryTracker::new();
        // ---- forward ----
        let x = self.embed.forward(tokens);
        tracker.alloc(x.nbytes());
        let (h, stored) = forward_blocks_prec(
            &self.blocks,
            &x,
            exec,
            strategy,
            self.cfg.seq_len,
            &mut tracker,
            precision,
        );
        let (hn, norm_saved) = self.final_norm.forward(&h);
        tracker.alloc(norm_saved.nbytes());
        // ---- fused LM head + loss (forward AND backward, Algorithm 3) ----
        let lm = match self.lm_tiles {
            Some((bs, bv)) => fused_lm_loss_with_blocks(&hn, &self.head.w, targets, bs, bv),
            None => naive_lm_loss(&hn, &self.head.w, targets),
        };
        tracker.alloc(lm.peak_logits_elems * 4);
        let loss_sum: f32 = lm.losses.iter().sum();
        // Rescale mean-of-local to global mean.
        let rescale = tokens.len() as f32 / global_tokens as f32;
        self.head.grad.axpy(rescale, &lm.grad_w);
        let grad_hn = lm.grad_h.scaled(rescale);
        tracker.free(lm.peak_logits_elems * 4);
        // ---- backward ----
        let grad_h = self.final_norm.backward(&norm_saved, &grad_hn);
        tracker.free(norm_saved.nbytes());
        let grad_x = backward_blocks(&mut self.blocks, stored, &grad_h, exec, &mut tracker);
        self.embed.backward(tokens, &grad_x);
        tracker.free(x.nbytes());
        // Mirror the model-layer tracked peak onto the accountant's ungated
        // workspace lane, so a rank's ledger also carries the dense-path
        // activation high-water mark (stash entries are billed exactly;
        // everything else here is transient).
        exec.note_workspace(tracker.peak());
        StepOutput {
            loss_sum,
            tokens: tokens.len(),
            peak_activation_bytes: tracker.peak(),
            peak_logits_elems: lm.peak_logits_elems,
        }
    }

    /// Forward only (inference/eval): returns per-position losses.
    pub fn eval_loss<E: AttnExec>(&self, tokens: &[usize], targets: &[usize], exec: &mut E) -> f32 {
        let x = self.embed.forward(tokens);
        let mut cur = x;
        for b in &self.blocks {
            cur = b.forward_nosave(&cur, exec);
        }
        let hn = self.final_norm.forward_nosave(&cur);
        let lm = naive_lm_loss(&hn, &self.head.w, targets);
        lm.loss
    }

    /// Logits of the next token after `tokens` (single-device forward).
    pub fn next_token_logits<E: AttnExec>(&self, tokens: &[usize], exec: &mut E) -> Vec<f32> {
        let x = self.embed.forward(tokens);
        let mut cur = x;
        for b in &self.blocks {
            cur = b.forward_nosave(&cur, exec);
        }
        let hn = self.final_norm.forward_nosave(&cur);
        let last = hn.slice_rows(hn.rows() - 1, hn.rows());
        last.matmul_nt(&self.head.w).into_vec()
    }

    /// Greedy decoding: extend `prompt` by `new_tokens` tokens.
    /// `make_exec` builds a single-device executor for the current length
    /// (masks are length-dependent).
    pub fn generate<E: AttnExec>(
        &self,
        prompt: &[usize],
        new_tokens: usize,
        mut make_exec: impl FnMut(usize) -> E,
    ) -> Vec<usize> {
        assert!(!prompt.is_empty(), "generate: empty prompt");
        let mut tokens = prompt.to_vec();
        for _ in 0..new_tokens {
            let mut exec = make_exec(tokens.len());
            let logits = self.next_token_logits(&tokens, &mut exec);
            let next = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            tokens.push(next);
        }
        tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::LocalExec;
    use burst_kernels::AttnMask;

    fn toy_data(cfg: &ModelConfig, seed: u64) -> (Vec<usize>, Vec<usize>) {
        // A deterministic periodic token stream the model can memorise.
        let tokens: Vec<usize> = (0..cfg.seq_len)
            .map(|i| (i * 7 + seed as usize) % cfg.vocab)
            .collect();
        let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
        (tokens, targets)
    }

    #[test]
    fn param_count_formula_matches_actual() {
        let cfg = ModelConfig::tiny();
        let mut m = Model::new(cfg, 1);
        let actual: usize = m.params_mut().iter().map(|p| p.len()).sum();
        assert_eq!(actual, cfg.param_count());
    }

    #[test]
    fn training_reduces_loss() {
        let cfg = ModelConfig::tiny();
        let mut m = Model::new(cfg, 2);
        let (tokens, targets) = toy_data(&cfg, 3);
        let mut exec = LocalExec::new(AttnMask::Causal, cfg.seq_len);
        let adam = AdamCfg {
            lr: 3e-3,
            ..AdamCfg::default()
        };
        let initial = m.eval_loss(&tokens, &targets, &mut exec);
        for t in 1..=60 {
            m.zero_grads();
            m.train_step(&tokens, &targets, &mut exec, Strategy::None, cfg.seq_len);
            m.adam_step(&adam, t);
        }
        let final_loss = m.eval_loss(&tokens, &targets, &mut exec);
        assert!(
            final_loss < initial * 0.5,
            "loss {initial} → {final_loss} after 60 steps"
        );
    }

    #[test]
    fn fused_and_naive_lm_head_agree_in_training() {
        let cfg = ModelConfig::tiny();
        let (tokens, targets) = toy_data(&cfg, 5);
        let run = |fused: bool| {
            let mut m = Model::new(cfg, 7);
            m.lm_tiles = if fused { Some((8, 8)) } else { None };
            let mut exec = LocalExec::new(AttnMask::Causal, cfg.seq_len);
            m.zero_grads();
            let out = m.train_step(&tokens, &targets, &mut exec, Strategy::None, cfg.seq_len);
            (
                out.loss_sum,
                m.head.grad.clone(),
                m.embed.table.grad.clone(),
            )
        };
        let (l1, hg1, eg1) = run(true);
        let (l2, hg2, eg2) = run(false);
        assert!((l1 - l2).abs() / l2.abs() < 1e-4, "loss {l1} vs {l2}");
        burst_tensor::testutil::assert_allclose(&hg1, &hg2, 1e-4, "head grads");
        burst_tensor::testutil::assert_allclose(&eg1, &eg2, 1e-4, "embed grads");
    }

    #[test]
    fn checkpoint_strategies_agree_end_to_end() {
        let cfg = ModelConfig::tiny();
        let (tokens, targets) = toy_data(&cfg, 9);
        let run = |strategy: Strategy| {
            let mut m = Model::new(cfg, 11);
            let mut exec = LocalExec::new(AttnMask::Causal, cfg.seq_len);
            m.zero_grads();
            let out = m.train_step(&tokens, &targets, &mut exec, strategy, cfg.seq_len);
            (out, m.blocks[0].attn.wq.weight.grad.clone())
        };
        let (o_ref, g_ref) = run(Strategy::None);
        for strategy in [
            Strategy::Full,
            Strategy::SelectivePlusPlus,
            Strategy::SeqSelective { rho: 0.5 },
        ] {
            let (o, g) = run(strategy);
            assert!((o.loss_sum - o_ref.loss_sum).abs() < 1e-3);
            burst_tensor::testutil::assert_allclose(&g, &g_ref, 1e-4, "wq grads");
            assert!(
                o.peak_activation_bytes < o_ref.peak_activation_bytes,
                "{strategy:?} must use less memory than no checkpointing"
            );
        }
    }

    #[test]
    fn generate_extends_prompt_deterministically() {
        let cfg = ModelConfig::tiny();
        let m = Model::new(cfg, 21);
        let prompt = [1usize, 2, 3];
        let out = m.generate(&prompt, 5, |n| LocalExec::new(AttnMask::Causal, n));
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..3], &prompt);
        assert!(out.iter().all(|&t| t < cfg.vocab));
        let again = m.generate(&prompt, 5, |n| LocalExec::new(AttnMask::Causal, n));
        assert_eq!(out, again);
    }

    #[test]
    fn overfit_model_generates_the_training_continuation() {
        // Memorise a periodic stream, then greedy decoding must continue it.
        let cfg = ModelConfig {
            layers: 2,
            d_model: 24,
            heads: 2,
            d_ff: 48,
            vocab: 11,
            seq_len: 33,
            rope: true,
        };
        let mut m = Model::new(cfg, 22);
        let tokens: Vec<usize> = (0..cfg.seq_len).map(|i| i % 11).collect();
        let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % 11).collect();
        let adam = AdamCfg {
            lr: 5e-3,
            ..AdamCfg::default()
        };
        let mut exec = LocalExec::new(AttnMask::Causal, cfg.seq_len);
        for t in 1..=150 {
            m.zero_grads();
            m.train_step(&tokens, &targets, &mut exec, Strategy::None, cfg.seq_len);
            m.adam_step(&adam, t);
        }
        let out = m.generate(&tokens[..8], 6, |n| LocalExec::new(AttnMask::Causal, n));
        // Continuation of 0,1,...,7 is 8,9,10,0,1,2.
        assert_eq!(&out[8..], &[8, 9, 10, 0, 1, 2], "generated {:?}", &out[8..]);
    }

    #[test]
    fn fused_lm_head_caps_logit_memory() {
        let cfg = ModelConfig::tiny();
        let (tokens, targets) = toy_data(&cfg, 13);
        let mut m = Model::new(cfg, 15);
        m.lm_tiles = Some((4, 8));
        let mut exec = LocalExec::new(AttnMask::Causal, cfg.seq_len);
        m.zero_grads();
        let out = m.train_step(&tokens, &targets, &mut exec, Strategy::None, cfg.seq_len);
        assert_eq!(out.peak_logits_elems, 4 * cfg.vocab);
        m.lm_tiles = None;
        m.zero_grads();
        let out2 = m.train_step(&tokens, &targets, &mut exec, Strategy::None, cfg.seq_len);
        assert_eq!(out2.peak_logits_elems, cfg.seq_len * cfg.vocab);
    }
}
