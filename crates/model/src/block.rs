//! A pre-norm Transformer block (Eq. 2): attention and SwiGLU FFN with
//! residual connections, hand-written backward.

use crate::attention::{AttnExec, MhaSaved, MultiHeadAttention};
use crate::checkpoint::AttnCache;
use crate::ffn::{SwiGlu, SwiGluSaved};
use crate::norm::{RmsNorm, RmsNormSaved};
use burst_tensor::Mat;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerBlock {
    pub norm1: RmsNorm,
    pub attn: MultiHeadAttention,
    pub norm2: RmsNorm,
    pub ffn: SwiGlu,
}

/// Full forward context of one block.
#[derive(Debug, Clone)]
pub struct BlockSaved {
    pub norm1: RmsNormSaved,
    pub mha: MhaSaved,
    /// Post-attention residual stream (input to the second norm).
    pub h: Mat,
    pub norm2: RmsNormSaved,
    pub ffn: SwiGluSaved,
}

impl BlockSaved {
    pub fn nbytes(&self) -> usize {
        self.norm1.nbytes()
            + self.mha.nbytes()
            + self.h.nbytes()
            + self.norm2.nbytes()
            + self.ffn.nbytes()
    }
}

impl TransformerBlock {
    pub fn new(d_model: usize, heads: usize, d_ff: usize, seed: u64) -> Self {
        TransformerBlock {
            norm1: RmsNorm::new(d_model),
            attn: MultiHeadAttention::new(d_model, heads, seed),
            norm2: RmsNorm::new(d_model),
            ffn: SwiGlu::new(d_model, d_ff, seed + 10),
        }
    }

    pub fn forward<E: AttnExec>(&self, x: &Mat, exec: &mut E) -> (Mat, BlockSaved) {
        let (a, norm1) = self.norm1.forward(x);
        let (y_attn, mha) = self.attn.forward(&a, exec);
        let mut h = x.clone();
        h.add_assign(&y_attn);
        let (b, norm2) = self.norm2.forward(&h);
        let (f, ffn) = self.ffn.forward(&b);
        let mut y = h.clone();
        y.add_assign(&f);
        (
            y,
            BlockSaved {
                norm1,
                mha,
                h,
                norm2,
                ffn,
            },
        )
    }

    /// Forward that injects cached attention outputs (checkpointing
    /// recompute path).
    pub fn forward_with_cache<E: AttnExec>(
        &self,
        x: &Mat,
        exec: &mut E,
        cache: &AttnCache,
    ) -> (Mat, BlockSaved) {
        let (a, norm1) = self.norm1.forward(x);
        let (y_attn, mha) = self.attn.forward_with_cache(&a, exec, cache);
        let mut h = x.clone();
        h.add_assign(&y_attn);
        let (b, norm2) = self.norm2.forward(&h);
        let (f, ffn) = self.ffn.forward(&b);
        let mut y = h.clone();
        y.add_assign(&f);
        (
            y,
            BlockSaved {
                norm1,
                mha,
                h,
                norm2,
                ffn,
            },
        )
    }

    /// Backward through the block; accumulates every parameter gradient and
    /// returns `∇x`.
    pub fn backward<E: AttnExec>(&mut self, saved: &BlockSaved, grad_y: &Mat, exec: &mut E) -> Mat {
        // y = h + f(norm2(h))
        let grad_b = self.ffn.backward(&saved.ffn, grad_y);
        let mut grad_h = self.norm2.backward(&saved.norm2, &grad_b);
        grad_h.add_assign(grad_y);
        // h = x + attn(norm1(x))
        let grad_a = self.attn.backward(&saved.mha, &grad_h, exec);
        let mut grad_x = self.norm1.backward(&saved.norm1, &grad_a);
        grad_x.add_assign(&grad_h);
        grad_x
    }

    pub fn forward_nosave<E: AttnExec>(&self, x: &Mat, exec: &mut E) -> Mat {
        self.forward(x, exec).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::LocalExec;
    use burst_kernels::AttnMask;
    use burst_tensor::randn_mat;
    use burst_tensor::testutil::{assert_allclose, numerical_grad};

    #[test]
    fn block_backward_matches_numerical() {
        let (n, d, heads, dff) = (6usize, 4usize, 2usize, 8usize);
        let block = TransformerBlock::new(d, heads, dff, 70);
        let x = randn_mat(n, d, 0.8, 71);
        let gy = randn_mat(n, d, 1.0, 72);
        let mut exec = LocalExec::new(AttnMask::Causal, n);
        let (_, saved) = block.forward(&x, &mut exec);
        let mut block2 = block.clone();
        let gx = block2.backward(&saved, &gy, &mut exec);

        let gy2 = gy.clone();
        let block3 = block.clone();
        let nx = numerical_grad(&x, 1e-2, move |m| {
            let mut e = LocalExec::new(AttnMask::Causal, n);
            block3
                .forward_nosave(m, &mut e)
                .as_slice()
                .iter()
                .zip(gy2.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_allclose(&gx, &nx, 4e-2, "block ∇x");
    }

    #[test]
    fn residual_stream_preserved_at_zero_weights() {
        // Zero the output projections: the block must act as identity.
        let (n, d) = (5usize, 4usize);
        let mut block = TransformerBlock::new(d, 2, 8, 80);
        block.attn.wo.weight.w = Mat::zeros(d, d);
        block.ffn.w_down.weight.w = Mat::zeros(d, 8);
        let x = randn_mat(n, d, 1.0, 81);
        let mut exec = LocalExec::new(AttnMask::Causal, n);
        let (y, _) = block.forward(&x, &mut exec);
        assert_allclose(&y, &x, 1e-6, "identity with zero projections");
    }

    #[test]
    fn forward_with_full_cache_matches_plain_forward() {
        let (n, d, heads, dff) = (8usize, 4usize, 2usize, 8usize);
        let block = TransformerBlock::new(d, heads, dff, 90);
        let x = randn_mat(n, d, 0.8, 91);
        let mut exec = LocalExec::new(AttnMask::Causal, n);
        let (y1, saved) = block.forward(&x, &mut exec);
        let cache = AttnCache::Full {
            o: saved
                .mha
                .o_heads
                .iter()
                .map(|m| crate::checkpoint::StoredMat::F32(m.clone()))
                .collect(),
            lse: saved.mha.lse.clone(),
        };
        let (y2, saved2) = block.forward_with_cache(&x, &mut exec, &cache);
        assert_allclose(&y2, &y1, 1e-6, "cached forward");
        assert_eq!(saved2.mha.o_heads.len(), saved.mha.o_heads.len());
    }
}
