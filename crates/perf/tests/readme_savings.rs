//! Regenerates (and pins) the README's "wire bytes saved by mask-aware
//! round skipping" table at the paper-scale 1M-token configuration.
//!
//! The table in README.md is this test's output: run
//!
//! ```text
//! cargo test -p burst-perf --test readme_savings -- --nocapture
//! ```
//!
//! and paste the printed markdown. The assertions keep the README honest —
//! every non-causal row must save bytes on every schedule, and actual
//! traffic plus the saved dual must reconstruct the dense census exactly.

use burst_comm::WireDtype;
use burst_dattn::Layout;
use burst_kernels::{AttnMask, BlockSparseMask};
use burst_perf::{exact_wire_counts_dtype, exact_wire_counts_masked_dtype, Cluster, RingMethod};

/// The README configuration: 1Mi tokens on 4 nodes × 8 GPUs, head dim
/// 128, contiguous layout (the skip-rich one), bf16 wire payloads.
const SEQ: usize = 1 << 20;
const D: usize = 128;
const NODES: usize = 4;
const GPN: usize = 8;

/// Deterministic random block-sparse pattern (xorshift64, ~25 %
/// off-diagonal density, diagonal always allowed) at 32Ki-token blocks —
/// the same generator the verification matrix uses, scaled up.
fn block_sparse_1m() -> AttnMask {
    let block = 1 << 15;
    let nblocks = SEQ.div_ceil(block);
    let mut s = 7u64 | 1;
    let mut allowed = vec![false; nblocks * nblocks];
    for bi in 0..nblocks {
        for bj in 0..nblocks {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            allowed[bi * nblocks + bj] = bi == bj || (s >> 33) & 3 == 0;
        }
    }
    AttnMask::BlockSparse(BlockSparseMask::new(block, nblocks, allowed))
}

#[test]
#[ignore = "paper-scale census (~35 s release, minutes debug); the masked-schedules CI job runs it with --release -- --ignored"]
fn readme_wire_savings_table_at_1m_tokens() {
    let cluster = Cluster::a800(NODES, GPN);
    let masks = [
        ("causal", AttnMask::Causal),
        (
            "sliding-window 64Ki",
            AttnMask::SlidingWindow { window: 1 << 16 },
        ),
        (
            "dilated 128Ki/4",
            AttnMask::Dilated {
                window: 1 << 17,
                step: 4,
            },
        ),
        ("block-sparse 32Ki (seed 7)", block_sparse_1m()),
    ];
    let methods = [
        ("ring", RingMethod::Ring),
        ("double_ring", RingMethod::DoubleRing),
        ("burst", RingMethod::Burst),
    ];

    println!("| mask | ring | double_ring | burst |");
    println!("|---|---|---|---|");
    for (mask_name, mask) in &masks {
        let mut cells = Vec::new();
        for (_, method) in methods {
            let dense = exact_wire_counts_dtype(&cluster, SEQ, D, method, WireDtype::Bf16);
            let dense_bytes = dense.intra_bytes + dense.inter_bytes;
            let got = exact_wire_counts_masked_dtype(
                &cluster,
                SEQ,
                D,
                method,
                WireDtype::Bf16,
                mask,
                Layout::Contiguous,
                None,
                true,
            );
            // The dual reconstructs the dense census to the byte.
            assert_eq!(
                got.counts.intra_bytes + got.counts.inter_bytes + got.skipped_bytes,
                dense_bytes,
                "{mask_name}: skipped dual does not reconstruct the dense census"
            );
            // Every mask saves on the contiguous layout — causal included,
            // since a contiguous rank's keys are entirely in the future of
            // every earlier rank's queries (the imbalance zigzag exists to
            // spread, and the skip gates turn into elided traffic here).
            assert!(got.rounds_skipped > 0, "{mask_name}: no rounds skipped");
            assert!(got.skipped_bytes > 0.0, "{mask_name}: no bytes saved");
            cells.push(format!(
                "{:.1} GB ({:.0} %)",
                got.skipped_bytes / 1e9,
                100.0 * got.skipped_bytes / dense_bytes
            ));
        }
        println!("| {mask_name} | {} |", cells.join(" | "));
    }
}
