//! Scratch calibration printout (not part of the public API).
use burst_kernels::AttnMask;
use burst_perf::endtoend::{evaluate, BurstOpts, Method};
use burst_perf::machine::{Cluster, PaperModel};
use burst_perf::memory::{memory, CkptKind, LmHeadKind, MemOptions};

fn main() {
    let causal = AttnMask::Causal;
    for (name, model, seq, nodes) in [
        ("7B@2M/32", PaperModel::llama_7b(), 2usize << 20, 4usize),
        ("14B@1M/32", PaperModel::llama_14b(), 1 << 20, 4),
        ("7B@4M/64", PaperModel::llama_7b(), 4 << 20, 8),
        ("14B@2M/64", PaperModel::llama_14b(), 2 << 20, 8),
    ] {
        let c = Cluster::a800(nodes, 8);
        println!("=== {name} ===");
        for m in Method::all() {
            match evaluate(&m, &c, &model, &causal, seq) {
                Ok(e) => println!(
                    "  {:<24} tgs {:8.2}  mfu {:5.1}%  mem {:6.2} GB  step {:7.1}s",
                    m.name(),
                    e.tgs,
                    e.mfu * 100.0,
                    e.mem_gb,
                    e.step_time
                ),
                Err(e) => println!("  {:<24} {e}", m.name()),
            }
        }
        // raw memory components for LoongTrain-style configs
        let local = seq as f64 / c.world() as f64;
        for (tag, lm, ck) in [
            ("full+vanilla", LmHeadKind::Vanilla, CkptKind::Full),
            ("pp+vanilla", LmHeadKind::Vanilla, CkptKind::SelectivePP),
            (
                "burst",
                LmHeadKind::Fused,
                CkptKind::SeqSelective { rho: 0.5 },
            ),
        ] {
            let b = memory(
                &model,
                c.world(),
                local,
                &MemOptions {
                    fsdp: true,
                    offload_optimizer: false,
                    lm_head: lm,
                    ckpt: ck,
                    comm_state_per_rank: 0.0,
                },
            );
            println!("    mem[{tag:<13}] = {:6.2} GB  (ckpt {:5.2} head {:5.2} trans {:5.2} buf {:5.2} states {:5.2})",
                b.total_gb(), b.checkpoints/1e9, b.lm_head/1e9, b.transient/1e9, b.buffers/1e9,
                (b.weights+b.grads+b.optimizer)/1e9);
        }
    }
    // Table 2 ablation
    let c = Cluster::a800(4, 8);
    let m = PaperModel::llama_14b();
    let rows: Vec<(&str, BurstOpts)> = vec![
        ("row1 baseline", BurstOpts::baseline()),
        (
            "row2 +bwdopt",
            BurstOpts {
                backward_opt: true,
                ..BurstOpts::baseline()
            },
        ),
        (
            "row3 +topo",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                ..BurstOpts::baseline()
            },
        ),
        (
            "row4 +fuse",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                fused_lm_head: true,
                ckpt: CkptKind::Full,
            },
        ),
        (
            "row5 +seqckpt",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                fused_lm_head: true,
                ckpt: CkptKind::SeqSelective { rho: 0.5 },
            },
        ),
        (
            "row6 ++",
            BurstOpts {
                backward_opt: true,
                topo_ring: true,
                fused_lm_head: true,
                ckpt: CkptKind::SelectivePP,
            },
        ),
    ];
    println!("=== Table 2 (paper: 36.75/38.37/41.69/41.58/47.72/51.68 MFU; 48.47/49.31/48.97/41.45/45.93/53.91 GB) ===");
    for (tag, o) in rows {
        let e = evaluate(&Method::BurstEngine(o), &c, &m, &causal, 1 << 20).unwrap();
        println!(
            "  {tag:<14} mfu {:5.2}%  tgs {:7.2}  mem {:6.2} GB",
            e.mfu * 100.0,
            e.tgs,
            e.mem_gb
        );
    }
}
