//! Exact peak-bytes census — the memory twin of [`crate::commtime`]'s
//! `exact_wire_counts`.
//!
//! The per-rank virtual-memory accountant (`burst_obs::MemLedger`) measures
//! the peak bytes of every schedule as it runs. This module predicts those
//! peaks *analytically*, per category, from the schedule geometry alone —
//! and the two must agree **exactly** (`PeakBytes == PeakBytes`), which the
//! `mem_census` integration test gates in CI. Every formula below names the
//! hook site in `burst-dattn` it mirrors, so a drift in either side breaks
//! the build rather than the paper's memory claims.
//!
//! Only the gated categories are predicted (`Activations`, `CkptStash`,
//! `RingShards`, `CommBuffers` and the live `gated_total`); the ungated
//! lanes (in-flight wire bytes, retransmit queue, kernel workspace) are
//! time- or host-dependent and stay measured-only. The attention census
//! leaves `Params`/`Grads`/`OptimState` at zero — those belong to the
//! training-engine census, which layers on top.

use crate::machine::Cluster;
use burst_comm::{PeakBytes, WireDtype};
use burst_dattn::{Layout, RingGeom, SkipPlan};
use burst_kernels::AttnMask;

/// Which distributed-attention schedule to predict. The first four mirror
/// `burst_dattn::Algo` (driven through `try_run_attention`); the last three
/// cover the head-parallel baselines and the elastic wrapper's healthy
/// (full-membership, flat-ring) path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeakMethod {
    /// RingAttention on the flat ring (Algorithm 1 backward, fine overlap).
    RingFlat,
    /// BurstAttention on the flat ring (Algorithm 2 backward, fine overlap).
    BurstFlat,
    /// DoubleRingAttention: two-level rings, Algorithm 1 backward.
    DoubleRing,
    /// Full BurstAttention: two-level rings, Algorithm 2 backward.
    BurstTopo,
    /// DeepSpeed-Ulysses head parallelism over the whole world. `heads`
    /// must divide into both the world size and the model width `d`.
    Ulysses { heads: usize },
    /// USP hybrid: Ulysses groups of size `ulysses` × context rings of size
    /// `world / ulysses`.
    Usp { heads: usize, ulysses: usize },
    /// `try_elastic_attention` on a fault-free full world: local-shard
    /// checkpoint stash + flat ring forward + Algorithm 2 backward.
    ElasticHealthy,
}

/// Exact per-rank peak bytes of `method` on `cluster` at an f32 wire.
pub fn exact_peak_bytes(
    cluster: &Cluster,
    seq_len: usize,
    d: usize,
    method: PeakMethod,
) -> PeakBytes {
    exact_peak_bytes_dtype(cluster, seq_len, d, method, WireDtype::F32)
}

/// [`exact_peak_bytes`] at an explicit matrix wire dtype. Exactly as in the
/// simulator, only circulating `Mat` payloads change width; resident f32
/// tensors, checkpoint stashes and the softmax statistics vectors stay at
/// 4 bytes per element.
pub fn exact_peak_bytes_dtype(
    cluster: &Cluster,
    seq_len: usize,
    d: usize,
    method: PeakMethod,
    dtype: WireDtype,
) -> PeakBytes {
    // Same arithmetic as `Topology::wire_bytes` (f64 product, truncated).
    let wire = |elems: usize| -> u64 { (elems as f64 * dtype.width()) as u64 };
    let g = cluster.world();
    let (n, p) = (cluster.nodes, cluster.gpus_per_node);
    let mut peak = PeakBytes::default();
    match method {
        PeakMethod::RingFlat
        | PeakMethod::BurstFlat
        | PeakMethod::DoubleRing
        | PeakMethod::BurstTopo => {
            let r = seq_len / g;
            // `attn_inputs`: the rank's resident Q/K/V/∇O shards, f32,
            // live for the whole dispatcher call.
            peak.ring_shards = 16 * (r * d) as u64;
            // `ring_fwd_acc`/`dr_fwd_acc` then `attn_fwd_out`: the (O, Lse)
            // accumulator hands over to the dispatcher's saved output at the
            // same instant (release-before-charge), so one term covers both.
            let acc = (4 * r * d + 4 * r) as u64;
            // Forward circulating (K, V) bundles at the wire dtype: one slot
            // on the flat ring, one per active level on the double ring.
            let lvls = (n > 1) as u64 + (p > 1) as u64;
            let cb_fwd = match method {
                PeakMethod::RingFlat | PeakMethod::BurstFlat => {
                    if g > 1 {
                        wire(2 * r * d)
                    } else {
                        0
                    }
                }
                _ => lvls * wire(2 * r * d),
            };
            // Backward extras on top of `attn_fwd_out`.
            let ro_bundle = wire(2 * r * d) + 8 * r as u64; // Q+∇O at wire, Lse+D at f32
            let (act_bwd, cb_bwd) = match method {
                // Algorithm 1, flat: ∇Q accumulator + fused (K,V,∇K,∇V)
                // bundle — both skipped by the single-rank early return.
                PeakMethod::RingFlat => {
                    if g > 1 {
                        ((4 * r * d) as u64, wire(4 * r * d))
                    } else {
                        (0, 0)
                    }
                }
                // Algorithm 2, flat: ∇K/∇V accumulators + ∇Q staging buffer;
                // read-only bundle + ∇Q ring slot.
                PeakMethod::BurstFlat => {
                    if g > 1 {
                        ((12 * r * d) as u64, ro_bundle + wire(r * d))
                    } else {
                        (0, 0)
                    }
                }
                // Algorithm 1 on the double ring always registers its ∇Q
                // accumulator; the bundle slot needs a circulating ring.
                PeakMethod::DoubleRing => {
                    let cb = if g > 1 { wire(4 * r * d) } else { 0 };
                    ((4 * r * d) as u64, cb)
                }
                // Algorithm 2 on the double ring: one read-only-bundle slot
                // per active level plus the ∇Q partial riding one step
                // behind.
                PeakMethod::BurstTopo => {
                    if g > 1 {
                        ((12 * r * d) as u64, lvls * ro_bundle + wire(r * d))
                    } else {
                        (0, 0)
                    }
                }
                _ => unreachable!(),
            };
            peak.activations = acc + act_bwd;
            peak.comm_buffers = cb_fwd.max(cb_bwd);
            // The gated-sum peak is a timeline quantity: inputs + saved
            // output are always live; the forward holds its circulating
            // bundles, the backward holds its accumulators *and* bundles.
            peak.gated_total = peak.ring_shards + acc + cb_fwd.max(act_bwd + cb_bwd);
        }
        PeakMethod::Ulysses { heads } => {
            assert!(
                heads.is_multiple_of(g) && d.is_multiple_of(heads),
                "Ulysses census: heads {heads} must divide by world {g} and into width {d}"
            );
            let (hpr, dh) = (heads / g, d / heads);
            // `ulysses_saved`: full-sequence Q/K/V/O (f32) + Lse of the
            // rank's owned heads, stashed forward → backward.
            let stash = (16 * seq_len * hpr * dh + 4 * seq_len * hpr) as u64;
            // `ulysses_grads`: full-sequence (∇Q, ∇K, ∇V) of the owned
            // heads, live across the backward's scatters.
            let grads = (12 * seq_len * hpr * dh) as u64;
            // `a2a_staging`: outgoing + incoming blocks at the wire dtype.
            // Every all-to-all in the pass stages the same r·H·dh elements
            // = seq·hpr·dh.
            let staging = 2 * wire(seq_len * hpr * dh);
            peak.ckpt_stash = stash;
            peak.activations = grads;
            peak.comm_buffers = staging;
            // Deepest instant: a backward all-to-all with the stash and the
            // gradient block both live.
            peak.gated_total = stash + grads + staging;
        }
        PeakMethod::Usp { heads, ulysses } => {
            assert!(
                g.is_multiple_of(ulysses)
                    && heads.is_multiple_of(ulysses)
                    && d.is_multiple_of(heads),
                "USP census: ulysses {ulysses} must divide world {g} and heads {heads}, \
                 heads into width {d}"
            );
            let ring = g / ulysses;
            let (hpr, dh) = (heads / ulysses, d / heads);
            let ns = seq_len / ring; // ring-shard rows per owned head
            let stash = (16 * ns * hpr * dh + 4 * ns * hpr) as u64;
            let grads = (12 * ns * hpr * dh) as u64;
            let staging = 2 * wire(ns * hpr * dh);
            peak.ckpt_stash = stash;
            // Forward: the inner ring's per-head (O, Lse) accumulator (one
            // head at a time). Backward: the gradient block plus — when the
            // ring circulates — the per-head ∇Q accumulator.
            let ring_dq = if ring > 1 { (4 * ns * dh) as u64 } else { 0 };
            peak.activations = ((4 * ns * dh + 4 * ns) as u64).max(grads + ring_dq);
            // Inner-ring bundles: (K, V) forward, (K, V, ∇K, ∇V) backward.
            let ring_cb_bwd = if ring > 1 { wire(4 * ns * dh) } else { 0 };
            peak.comm_buffers = staging.max(ring_cb_bwd);
            // Deepest instant: backward with stash + gradient block live,
            // plus whichever is larger of an all-to-all's staging or an
            // inner-ring round's ∇Q + bundle.
            peak.gated_total = stash + grads + staging.max(ring_dq + ring_cb_bwd);
        }
        PeakMethod::ElasticHealthy => {
            let r = seq_len / g;
            // `elastic_local_stash`: the cloned Q/K/V/∇O recovery shard,
            // held across the whole call. Healthy runs never touch the
            // shard cache or rebuild a partition.
            let stash = 16 * (r * d) as u64;
            peak.ckpt_stash = stash;
            // Flat ring forward + Algorithm 2 backward, without the
            // dispatcher's `attn_inputs`/`attn_fwd_out` wrappers.
            let acc = (4 * r * d + 4 * r) as u64;
            let (act_bwd, cb_fwd, cb_bwd) = if g > 1 {
                (
                    (12 * r * d) as u64,
                    wire(2 * r * d),
                    wire(2 * r * d) + 8 * r as u64 + wire(r * d),
                )
            } else {
                (0, 0, 0)
            };
            peak.activations = acc.max(act_bwd);
            peak.comm_buffers = cb_fwd.max(cb_bwd);
            peak.gated_total = stash + (acc + cb_fwd).max(act_bwd + cb_bwd);
        }
    }
    peak
}

/// Mask-aware [`exact_peak_bytes_dtype`]: the exact peak of rank `me` when
/// the schedule runs with round skipping. Every term is gated by the same
/// `SkipPlan` buffer-activity flag that gates the matching `mem_alloc` in
/// `burst-dattn`, so the prediction equals the measured `MemLedger` gated
/// peak byte-for-byte — a comm-buffer slot this rank's gates never fill is
/// simply not billed.
///
/// `skip = false` builds the dense plan (every flag on), reproducing
/// [`exact_peak_bytes_dtype`] exactly for any mask. The head-parallel
/// methods (`Ulysses`, `Usp`) have no mask-gated slots — their all-to-all
/// staging is mask-independent — and return the dense census unchanged.
#[allow(clippy::too_many_arguments)]
pub fn exact_peak_bytes_masked_dtype(
    cluster: &Cluster,
    seq_len: usize,
    d: usize,
    method: PeakMethod,
    dtype: WireDtype,
    mask: &AttnMask,
    layout: Layout,
    max_token: Option<usize>,
    skip: bool,
    me: usize,
) -> PeakBytes {
    if matches!(method, PeakMethod::Ulysses { .. } | PeakMethod::Usp { .. }) {
        return exact_peak_bytes_dtype(cluster, seq_len, d, method, dtype);
    }
    let wire = |elems: usize| -> u64 { (elems as f64 * dtype.width()) as u64 };
    let g = cluster.world();
    let (n, p) = (cluster.nodes, cluster.gpus_per_node);
    let plan = if skip {
        SkipPlan::build(mask, layout, seq_len, g, max_token)
    } else {
        SkipPlan::dense(g)
    };
    let geom = RingGeom::build(layout, seq_len, g, d, d, max_token);
    let r = geom.rows[me];
    // Resident accumulator and bundle shapes, all sized by this rank's own
    // shard (the slot-registration sites use `shard.*.len()`).
    let acc = (4 * r * d + 4 * r) as u64;
    let kv_slot = wire(2 * r * d);
    let ro_bundle = wire(2 * r * d) + 8 * r as u64;
    // Flat forward (K, V) slot: `ring_fwd_kv`, gated on ever receiving.
    let flat_cb_fwd = if g > 1 && plan.flat_fwd_recv_any(me) {
        kv_slot
    } else {
        0
    };
    // Flat Algorithm 2 backward extras (also the elastic healthy path):
    // `burst_bwd_dkv` is unconditional past the single-rank early return;
    // `burst_dq_buf` / `burst_ro_bundle` / `burst_dq_ring` are flag-gated.
    let flat_alg2 = |plan: &SkipPlan| -> (u64, u64) {
        if g == 1 {
            return (0, 0);
        }
        let (ro, dq_ring, dq_buf) = plan.flat_alg2_bufs(me);
        let act = (8 * r * d) as u64 + if dq_buf { (4 * r * d) as u64 } else { 0 };
        let cb = if ro { ro_bundle } else { 0 } + if dq_ring { wire(r * d) } else { 0 };
        (act, cb)
    };
    let mut peak = PeakBytes::default();
    match method {
        PeakMethod::RingFlat => {
            peak.ring_shards = 16 * (r * d) as u64;
            // `ring_bwd_dq` is unconditional past the early return; the
            // fused `ring_bwd_kv_grads` slot bills only the halves this
            // rank's gates ever hold.
            let (act_bwd, cb_bwd) = if g > 1 {
                let (kv, dkv) = plan.flat_alg1_bufs(me);
                let halves = kv as usize + dkv as usize;
                let cb = if halves > 0 {
                    wire(halves * 2 * r * d)
                } else {
                    0
                };
                ((4 * r * d) as u64, cb)
            } else {
                (0, 0)
            };
            peak.activations = acc + act_bwd;
            peak.comm_buffers = flat_cb_fwd.max(cb_bwd);
            peak.gated_total = peak.ring_shards + acc + flat_cb_fwd.max(act_bwd + cb_bwd);
        }
        PeakMethod::BurstFlat => {
            peak.ring_shards = 16 * (r * d) as u64;
            let (act_bwd, cb_bwd) = flat_alg2(&plan);
            peak.activations = acc + act_bwd;
            peak.comm_buffers = flat_cb_fwd.max(cb_bwd);
            peak.gated_total = peak.ring_shards + acc + flat_cb_fwd.max(act_bwd + cb_bwd);
        }
        PeakMethod::DoubleRing => {
            peak.ring_shards = 16 * (r * d) as u64;
            // `dr_fwd_start_kv` / `dr_fwd_cur_kv`: one slot per active
            // level this rank's gates ever fill.
            let (buf_start, buf_cur) = plan.dr_fwd_bufs(me, n, p);
            let cb_fwd = if n > 1 && buf_start { kv_slot } else { 0 }
                + if p > 1 && buf_cur { kv_slot } else { 0 };
            // `dr_bwd_dq` is unconditional (no single-rank early return);
            // `dr_bwd_kv_grads` bills per held half.
            let (buf_kv, buf_dkv) = plan.dr_alg1_bufs(me, n, p);
            let halves = buf_kv as u64 + buf_dkv as u64;
            let cb_bwd = if g > 1 && halves > 0 {
                halves * kv_slot
            } else {
                0
            };
            let act_bwd = (4 * r * d) as u64;
            peak.activations = acc + act_bwd;
            peak.comm_buffers = cb_fwd.max(cb_bwd);
            peak.gated_total = peak.ring_shards + acc + cb_fwd.max(act_bwd + cb_bwd);
        }
        PeakMethod::BurstTopo => {
            peak.ring_shards = 16 * (r * d) as u64;
            let (buf_start, buf_cur) = plan.dr_fwd_bufs(me, n, p);
            let cb_fwd = if n > 1 && buf_start { kv_slot } else { 0 }
                + if p > 1 && buf_cur { kv_slot } else { 0 };
            // Algorithm 2 on the double ring: `dr_bwd_dkv` unconditional
            // past the early return, the bundle slots per active level.
            let (act_bwd, cb_bwd) = if g > 1 {
                let (start, cur, dq_ring, dq_buf) = plan.dr_alg2_bufs(me, n, p);
                let act = (8 * r * d) as u64 + if dq_buf { (4 * r * d) as u64 } else { 0 };
                let cb = if n > 1 && start { ro_bundle } else { 0 }
                    + if p > 1 && cur { ro_bundle } else { 0 }
                    + if dq_ring { wire(r * d) } else { 0 };
                (act, cb)
            } else {
                (0, 0)
            };
            peak.activations = acc + act_bwd;
            peak.comm_buffers = cb_fwd.max(cb_bwd);
            peak.gated_total = peak.ring_shards + acc + cb_fwd.max(act_bwd + cb_bwd);
        }
        PeakMethod::ElasticHealthy => {
            peak.ckpt_stash = 16 * (r * d) as u64;
            let (act_bwd, cb_bwd) = flat_alg2(&plan);
            peak.activations = acc.max(act_bwd);
            peak.comm_buffers = flat_cb_fwd.max(cb_bwd);
            peak.gated_total = peak.ckpt_stash + (acc + flat_cb_fwd).max(act_bwd + cb_bwd);
        }
        PeakMethod::Ulysses { .. } | PeakMethod::Usp { .. } => unreachable!(),
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEQ: usize = 4096;
    const D: usize = 64;

    fn cluster() -> Cluster {
        Cluster::a800(2, 4)
    }

    #[test]
    fn census_is_gated_only() {
        for m in [
            PeakMethod::RingFlat,
            PeakMethod::BurstFlat,
            PeakMethod::DoubleRing,
            PeakMethod::BurstTopo,
            PeakMethod::Ulysses { heads: 8 },
            PeakMethod::Usp {
                heads: 8,
                ulysses: 4,
            },
            PeakMethod::ElasticHealthy,
        ] {
            let p = exact_peak_bytes(&cluster(), SEQ, D, m);
            assert_eq!(p, p.gated(), "{m:?} census must not predict ungated lanes");
            assert_eq!(p.params, 0);
            assert!(p.gated_total > 0, "{m:?} census empty");
        }
    }

    #[test]
    fn bf16_wire_halves_circulating_buffers_only() {
        for m in [
            PeakMethod::RingFlat,
            PeakMethod::BurstTopo,
            PeakMethod::Ulysses { heads: 8 },
        ] {
            let f32p = exact_peak_bytes_dtype(&cluster(), SEQ, D, m, WireDtype::F32);
            let bf16 = exact_peak_bytes_dtype(&cluster(), SEQ, D, m, WireDtype::Bf16);
            assert!(
                bf16.comm_buffers < f32p.comm_buffers,
                "{m:?}: wire dtype must shrink comm buffers"
            );
            assert_eq!(bf16.activations, f32p.activations);
            assert_eq!(bf16.ckpt_stash, f32p.ckpt_stash);
            assert_eq!(bf16.ring_shards, f32p.ring_shards);
        }
        // Algorithm 1's pure-Mat bundle halves exactly; Algorithm 2's
        // carries f32 statistics vectors, so it shrinks by less than half.
        let rf = exact_peak_bytes_dtype(&cluster(), SEQ, D, PeakMethod::RingFlat, WireDtype::F32);
        let rb = exact_peak_bytes_dtype(&cluster(), SEQ, D, PeakMethod::RingFlat, WireDtype::Bf16);
        assert_eq!(rb.comm_buffers * 2, rf.comm_buffers);
    }

    #[test]
    fn gated_total_is_at_most_the_sum_and_at_least_the_max_of_lanes() {
        for m in [
            PeakMethod::BurstFlat,
            PeakMethod::DoubleRing,
            PeakMethod::Usp {
                heads: 8,
                ulysses: 4,
            },
            PeakMethod::ElasticHealthy,
        ] {
            let p = exact_peak_bytes(&cluster(), SEQ, D, m);
            let lanes = [p.activations, p.ckpt_stash, p.ring_shards, p.comm_buffers];
            let sum: u64 = lanes.iter().sum();
            let max = *lanes.iter().max().unwrap();
            assert!(p.gated_total <= sum, "{m:?}: total above lane sum");
            assert!(p.gated_total >= max, "{m:?}: total below deepest lane");
        }
    }

    #[test]
    fn ulysses_trades_ring_shards_for_stash() {
        // The paper's qualitative claim: head parallelism stashes the full
        // sequence per owned head, while ring methods keep only their shard.
        let burst = exact_peak_bytes(&cluster(), SEQ, D, PeakMethod::BurstTopo);
        let uly = exact_peak_bytes(&cluster(), SEQ, D, PeakMethod::Ulysses { heads: 8 });
        assert_eq!(uly.ring_shards, 0);
        assert!(uly.ckpt_stash > burst.ckpt_stash);
        assert!(burst.ring_shards > 0);
    }

    #[test]
    fn masked_peak_skip_off_reproduces_dense_census() {
        // The dense plan forces every buffer-activity flag on, so the
        // masked census must equal the closed forms for every method,
        // every rank, both wire dtypes — regardless of the mask.
        let c = cluster();
        let methods = [
            PeakMethod::RingFlat,
            PeakMethod::BurstFlat,
            PeakMethod::DoubleRing,
            PeakMethod::BurstTopo,
            PeakMethod::Ulysses { heads: 8 },
            PeakMethod::Usp {
                heads: 8,
                ulysses: 4,
            },
            PeakMethod::ElasticHealthy,
        ];
        for m in methods {
            for dtype in [WireDtype::F32, WireDtype::Bf16] {
                let dense = exact_peak_bytes_dtype(&c, SEQ, D, m, dtype);
                for me in 0..c.world() {
                    let masked = exact_peak_bytes_masked_dtype(
                        &c,
                        SEQ,
                        D,
                        m,
                        dtype,
                        &AttnMask::SlidingWindow { window: 64 },
                        Layout::Zigzag,
                        None,
                        false,
                        me,
                    );
                    assert_eq!(masked, dense, "{m:?} rank {me} {dtype:?}");
                }
            }
        }
    }

    #[test]
    fn masked_peak_never_exceeds_dense_and_window_shrinks_it() {
        // Gating can only turn slots off: every lane is bounded by the
        // dense census, and a narrow window on the contiguous layout must
        // actually free comm buffers on at least one rank.
        let c = cluster();
        let mask = AttnMask::SlidingWindow {
            window: SEQ / c.world() / 2,
        };
        // Flat Algorithm 1 circulates (K, V): under a causal window the
        // early shards run out of downstream consumers, so early ranks
        // stop receiving and their bundle halves are freed. Algorithm 2
        // circulates the read-only (Q, ∇O) bundle instead, and causal
        // consumers sit *behind* each bundle on the ring — every rank
        // keeps forwarding, so its slots stay live. The double ring's
        // node-major traversal likewise wraps each node's inner ring,
        // turning the early ranks into cross-node forwarders. For those
        // schedules the window's savings are wire messages and skipped
        // rounds, not freed buffer slots. BurstTopo is the exception among
        // the Algorithm 2 runs: its outer ring is a direct boundary
        // exchange with no forwarding, and causal consumers cross it one
        // way only, so the last node's inter-level bundle slots are freed.
        for (m, expect_shrink) in [
            (PeakMethod::RingFlat, true),
            (PeakMethod::BurstFlat, false),
            (PeakMethod::DoubleRing, false),
            (PeakMethod::BurstTopo, true),
            (PeakMethod::ElasticHealthy, false),
        ] {
            let dense = exact_peak_bytes(&c, SEQ, D, m);
            let mut any_shrunk = false;
            for me in 0..c.world() {
                let p = exact_peak_bytes_masked_dtype(
                    &c,
                    SEQ,
                    D,
                    m,
                    WireDtype::F32,
                    &mask,
                    Layout::Contiguous,
                    None,
                    true,
                    me,
                );
                assert!(p.comm_buffers <= dense.comm_buffers, "{m:?} rank {me}");
                assert!(p.activations <= dense.activations, "{m:?} rank {me}");
                assert!(p.gated_total <= dense.gated_total, "{m:?} rank {me}");
                any_shrunk |= p.gated_total < dense.gated_total;
            }
            assert_eq!(
                any_shrunk, expect_shrink,
                "{m:?}: unexpected slot gating under the window mask"
            );
        }
    }

    #[test]
    fn masked_peak_full_mask_with_skip_is_dense() {
        // Full leaves every tile live: skipping on changes nothing.
        let c = cluster();
        for m in [PeakMethod::BurstTopo, PeakMethod::RingFlat] {
            let dense = exact_peak_bytes(&c, SEQ, D, m);
            for me in 0..c.world() {
                let p = exact_peak_bytes_masked_dtype(
                    &c,
                    SEQ,
                    D,
                    m,
                    WireDtype::F32,
                    &AttnMask::Full,
                    Layout::Zigzag,
                    None,
                    true,
                    me,
                );
                assert_eq!(p, dense, "{m:?} rank {me}");
            }
        }
    }

    #[test]
    fn single_rank_keeps_only_resident_state() {
        let solo = Cluster::a800(1, 1);
        let p = exact_peak_bytes(&solo, SEQ, D, PeakMethod::RingFlat);
        assert_eq!(p.comm_buffers, 0);
        let r = SEQ; // whole sequence on the one rank
        assert_eq!(p.ring_shards, 16 * (r * D) as u64);
        assert_eq!(p.gated_total, p.ring_shards + p.activations);
    }
}
