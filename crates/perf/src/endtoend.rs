//! End-to-end method comparison at paper scale.
//!
//! One training step is assembled as
//!
//! ```text
//! step = Σ_layers [ max(attn_compute, comm_overlappable) + comm_serial ]
//!        + max(dense_compute, fsdp_comm) + a2a_serial
//! ```
//!
//! with per-method communication formulas (Table 1 for the ring family),
//! overlap disciplines (which units can hide under compute), checkpointing
//! recompute factors and memory options. Feasibility is checked against
//! HBM (reproducing Megatron-CP's optimizer OOM and Ulysses' sequence
//! blow-up when the head count caps its group size).

use crate::commtime;
use crate::flops;
use crate::machine::{Cluster, PaperModel};
use crate::memory::{
    self, CkptKind, LmHeadKind, MemOptions, COMM_STATE_BMTRAIN, COMM_STATE_PYTORCH,
};
use burst_kernels::AttnMask;
use serde::{Deserialize, Serialize};

/// BurstEngine's optimization toggles (Table 2's ablation axes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstOpts {
    /// Algorithm 2 backward (3Nd + 2N) instead of Algorithm 1 (4Nd).
    pub backward_opt: bool,
    /// Topology-aware two-level ring + fine-grained overlap.
    pub topo_ring: bool,
    /// Fused LM head + loss (Algorithm 3).
    pub fused_lm_head: bool,
    pub ckpt: CkptKind,
}

impl BurstOpts {
    /// Everything on — the configuration of Figs. 12–13.
    pub fn full() -> Self {
        BurstOpts {
            backward_opt: true,
            topo_ring: true,
            fused_lm_head: true,
            ckpt: CkptKind::SeqSelective { rho: 0.5 },
        }
    }

    /// Nothing on — Table 2 row 1.
    pub fn baseline() -> Self {
        BurstOpts {
            backward_opt: false,
            topo_ring: false,
            fused_lm_head: false,
            ckpt: CkptKind::Full,
        }
    }
}

/// The evaluated systems (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// Megatron-LM context parallelism: flat-ring RingAttention, zigzag,
    /// no FSDP, no optimizer offload.
    MegatronCp,
    /// DeepSpeed-Ulysses head parallelism with FSDP + optimizer offload.
    DeepSpeedUlysses,
    /// LoongTrain's DoubleRingAttention (FSDP, two-level ring, Alg. 1).
    LoongTrainDoubleRing,
    /// LoongTrain USP: Ulysses groups intra-node × ring inter-node.
    LoongTrainUsp,
    /// BurstEngine with the given optimization set.
    BurstEngine(BurstOpts),
}

impl Method {
    pub fn name(&self) -> &'static str {
        match self {
            Method::MegatronCp => "Megatron-CP",
            Method::DeepSpeedUlysses => "DeepSpeed-Ulysses",
            Method::LoongTrainDoubleRing => "LoongTrain-DoubleRing",
            Method::LoongTrainUsp => "LoongTrain-USP",
            Method::BurstEngine(_) => "BurstEngine",
        }
    }

    /// All five systems with BurstEngine fully enabled.
    pub fn all() -> Vec<Method> {
        vec![
            Method::MegatronCp,
            Method::DeepSpeedUlysses,
            Method::LoongTrainDoubleRing,
            Method::LoongTrainUsp,
            Method::BurstEngine(BurstOpts::full()),
        ]
    }
}

/// Why a configuration cannot run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Infeasible {
    /// Modeled memory exceeds HBM.
    Oom { required_gb: f64, budget_gb: f64 },
    /// Head parallelism cannot span the cluster.
    HeadsNotDivisible { heads: usize, world: usize },
}

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Infeasible::Oom {
                required_gb,
                budget_gb,
            } => write!(f, "OOM ({required_gb:.1} GB > {budget_gb:.1} GB)"),
            Infeasible::HeadsNotDivisible { heads, world } => {
                write!(f, "infeasible ({heads} heads on {world} GPUs)")
            }
        }
    }
}

/// Modeled outcome of one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EndToEnd {
    pub step_time: f64,
    pub tgs: f64,
    pub mfu: f64,
    pub mem_gb: f64,
    /// Attention communication that could not hide under compute.
    pub comm_exposed: f64,
    /// Total attention communication time (hidden + exposed).
    pub comm_total: f64,
    pub attn_compute: f64,
    pub dense_compute: f64,
}

/// Attention recompute factor under a checkpoint strategy: forward passes
/// executed per step (the backward's 10-FLOP share is always 1×).
fn attn_fwd_passes(ckpt: CkptKind) -> f64 {
    match ckpt {
        CkptKind::None | CkptKind::SelectivePP => 1.0,
        CkptKind::Full => 2.0,
        // Causal: recomputing the front ρ·N tokens costs ρ² of a forward.
        CkptKind::SeqSelective { rho } => 1.0 + rho * rho,
    }
}

/// Dense recompute factor: 6 (fwd+bwd) or 8 (+1 recomputed fwd).
fn dense_factor(ckpt: CkptKind) -> f64 {
    match ckpt {
        CkptKind::None => 6.0,
        _ => 8.0,
    }
}

/// Largest Ulysses group: biggest common divisor of `heads` and `world`.
pub fn ulysses_group(heads: usize, world: usize) -> usize {
    let mut best = 1;
    for g in 1..=world.min(heads) {
        if heads.is_multiple_of(g) && world.is_multiple_of(g) {
            best = g;
        }
    }
    best
}

/// Per-layer attention phase: `(compute, comm_overlappable, comm_serial)`.
fn attention_phase(
    method: &Method,
    cluster: &Cluster,
    model: &PaperModel,
    mask: &AttnMask,
    seq_len: usize,
) -> (f64, f64, f64) {
    attention_phase_with_passes(
        method,
        cluster,
        model,
        mask,
        seq_len,
        attn_fwd_passes(method_ckpt(method)),
    )
}

/// Like [`attention_phase`] with an explicit forward-pass count (the
/// attention-only microbenchmark of Fig. 14 runs exactly one).
fn attention_phase_with_passes(
    method: &Method,
    cluster: &Cluster,
    model: &PaperModel,
    mask: &AttnMask,
    seq_len: usize,
    fwd_passes: f64,
) -> (f64, f64, f64) {
    let g = cluster.world() as f64;
    let compute = (flops::attn_fwd_flops(model, mask, seq_len) * fwd_passes
        + flops::attn_bwd_flops(model, mask, seq_len))
        / (g * cluster.peak_flops * cluster.eff_attn);
    let p = commtime::partition_bytes(seq_len, model.d_model, cluster.world());
    let times = commtime::comm_times(cluster, p);
    match method {
        Method::MegatronCp => {
            // Flat ring, Alg. 1: 2 of 6 units are gradient-carrying and
            // cannot hide.
            (compute, times.ring * 4.0 / 6.0, times.ring * 2.0 / 6.0)
        }
        Method::LoongTrainDoubleRing => {
            // Table 1: the `+2(...)` serial term is the unoverlapped
            // gradient communication.
            let n_inter = cluster.nodes as f64;
            let two_level_serial =
                (g - n_inter) * cluster.nvlink.time(p) + n_inter * cluster.nic.time(p);
            let overlappable = times.double_ring - 2.0 * two_level_serial;
            (compute, overlappable, 2.0 * two_level_serial)
        }
        Method::LoongTrainUsp => {
            // Ring over R = nodes members with a per-member share of heads:
            // same per-hop bytes (N·d·2/G), R hops, all inter-node.
            let r = cluster.nodes as f64;
            let ring = 6.0 * r * cluster.nic.time(p);
            // Intra-node all-to-alls (8 transfers of the local shard).
            let u = cluster.gpus_per_node as f64;
            let local_bytes = seq_len as f64 / g * model.d_model as f64 * 2.0;
            let a2a = 8.0 * local_bytes * (u - 1.0) / u / cluster.nvlink.bandwidth;
            (compute, ring * 4.0 / 6.0, ring * 2.0 / 6.0 + a2a)
        }
        Method::DeepSpeedUlysses => {
            // All-to-all only, not overlapped with compute (paper §4.2).
            let u = ulysses_group(model.heads, cluster.world()) as f64;
            let local = seq_len as f64 / u;
            let bytes = 8.0 * local * model.d_model as f64 * 2.0 * (u - 1.0) / u;
            let gpn = cluster.gpus_per_node as f64;
            let inter_frac = if u > gpn { (u - gpn) / u } else { 0.0 };
            let t = bytes * inter_frac / cluster.nic.bandwidth
                + bytes * (1.0 - inter_frac) / cluster.nvlink.bandwidth;
            // Compute runs on a group of u GPUs only.
            let compute_u = (flops::attn_fwd_flops(model, mask, seq_len) * fwd_passes
                + flops::attn_bwd_flops(model, mask, seq_len))
                / (u * cluster.peak_flops * cluster.eff_attn);
            (compute_u, 0.0, t)
        }
        Method::BurstEngine(opts) => {
            let units = if opts.backward_opt { 5.0 } else { 6.0 };
            if opts.topo_ring {
                // Two-level rings, everything fine-overlapped.
                let n_inter = cluster.nodes as f64;
                let pass =
                    ((g - n_inter) * cluster.nvlink.time(p)).max(n_inter * cluster.nic.time(p));
                (compute, units * pass, 0.0)
            } else {
                // Flat ring; Alg. 2 leaves only the ∇Q unit serial, Alg. 1
                // leaves two.
                let serial_units = if opts.backward_opt { 1.0 } else { 2.0 };
                let flat = units * g * cluster.nvlink.time(p).max(cluster.nic.time(p));
                (
                    compute,
                    flat * (units - serial_units) / units,
                    flat * serial_units / units,
                )
            }
        }
    }
}

fn method_ckpt(method: &Method) -> CkptKind {
    match method {
        Method::BurstEngine(o) => o.ckpt,
        // All baselines run plain full gradient checkpointing (§4.1).
        _ => CkptKind::Full,
    }
}

fn method_mem_options(method: &Method) -> MemOptions {
    match method {
        Method::MegatronCp => MemOptions {
            fsdp: false,
            offload_optimizer: false,
            lm_head: LmHeadKind::Vanilla,
            ckpt: CkptKind::Full,
            comm_state_per_rank: COMM_STATE_PYTORCH,
        },
        Method::DeepSpeedUlysses => MemOptions {
            fsdp: true,
            offload_optimizer: true,
            lm_head: LmHeadKind::Vanilla,
            ckpt: CkptKind::Full,
            comm_state_per_rank: COMM_STATE_PYTORCH,
        },
        // LoongTrain trains with plain full checkpointing and an
        // off-the-shelf cross-entropy — the fp32 logits upcast is the
        // "storing the outputs of the LM head" cost the paper names as the
        // source of its high memory.
        Method::LoongTrainDoubleRing | Method::LoongTrainUsp => MemOptions {
            fsdp: true,
            offload_optimizer: false,
            lm_head: LmHeadKind::Vanilla,
            ckpt: CkptKind::Full,
            comm_state_per_rank: COMM_STATE_PYTORCH,
        },
        Method::BurstEngine(o) => MemOptions {
            fsdp: true,
            offload_optimizer: false,
            lm_head: if o.fused_lm_head {
                LmHeadKind::Fused
            } else {
                LmHeadKind::Chunked
            },
            ckpt: o.ckpt,
            comm_state_per_rank: COMM_STATE_BMTRAIN,
        },
    }
}

/// End-to-end implementation-efficiency divisor: the residual gap between
/// the paper's measured end-to-end numbers and what the component formulas
/// (Tables 1–2) explain — pipeline bubbles, kernel-quality and scheduler
/// differences of the baseline frameworks. Fitted once against Fig. 12 and
/// applied only to end-to-end step time (Fig. 14's attention-only numbers
/// use the raw component model). Documented in EXPERIMENTS.md.
fn impl_efficiency(method: &Method) -> f64 {
    match method {
        Method::MegatronCp => 1.45,
        Method::DeepSpeedUlysses => 1.25,
        Method::LoongTrainDoubleRing => 1.10,
        Method::LoongTrainUsp => 1.0,
        Method::BurstEngine(_) => 1.0,
    }
}

/// Evaluate a full training step. `offload_optimizer` overrides the
/// method's default (the paper enables it for small worlds, Table 5).
pub fn evaluate_with_offload(
    method: &Method,
    cluster: &Cluster,
    model: &PaperModel,
    mask: &AttnMask,
    seq_len: usize,
    force_offload: Option<bool>,
) -> Result<EndToEnd, Infeasible> {
    let g = cluster.world();
    // ---- feasibility: memory ----
    let mut mem_opts = method_mem_options(method);
    if let Some(off) = force_offload {
        mem_opts.offload_optimizer = off;
    }
    let local_tokens = match method {
        Method::DeepSpeedUlysses => {
            let u = ulysses_group(model.heads, g);
            seq_len as f64 / u as f64
        }
        _ => seq_len as f64 / g as f64,
    };
    let mem = memory::memory(model, g, local_tokens, &mem_opts);
    let budget = cluster.hbm * 0.95;
    if mem.total() > budget {
        return Err(Infeasible::Oom {
            required_gb: mem.total_gb(),
            budget_gb: budget / 1e9,
        });
    }
    if let Method::DeepSpeedUlysses = method {
        let u = ulysses_group(model.heads, g);
        if u < g {
            return Err(Infeasible::HeadsNotDivisible {
                heads: model.heads,
                world: g,
            });
        }
    }

    // ---- timing ----
    let (attn_c, comm_ov, comm_serial) = attention_phase(method, cluster, model, mask, seq_len);
    let layer_time = attn_c.max(comm_ov) + comm_serial;
    let attn_total = layer_time * model.layers as f64;
    let dense = flops::dense_flops(model, seq_len, dense_factor(method_ckpt(method)))
        / (g as f64 * cluster.peak_flops * cluster.eff_gemm);
    // FSDP traffic: gather weights (fwd + recompute) + reduce-scatter grads
    // ≈ 3 × params × 2 B × (G−1)/G per rank, mostly inter-node.
    let fsdp_comm = if mem_opts.fsdp {
        let vol = 3.0 * model.params() * 2.0 * (g as f64 - 1.0) / g as f64;
        let inter_frac = (g - cluster.gpus_per_node) as f64 / g as f64;
        vol * inter_frac / cluster.nic.bandwidth
            + vol * (1.0 - inter_frac) / cluster.nvlink.bandwidth
    } else {
        0.0
    };
    let step_time = (attn_total + dense.max(fsdp_comm)) * impl_efficiency(method);
    let comm_total = (comm_ov + comm_serial) * model.layers as f64 + fsdp_comm;
    let comm_exposed = ((comm_ov - attn_c).max(0.0) + comm_serial) * model.layers as f64
        + (fsdp_comm - dense).max(0.0);
    Ok(EndToEnd {
        step_time,
        tgs: flops::tgs(seq_len, step_time, g),
        mfu: flops::mfu(cluster, model, mask, seq_len, step_time),
        mem_gb: mem.total_gb(),
        comm_exposed,
        comm_total,
        attn_compute: attn_total,
        dense_compute: dense,
    })
}

/// Fig. 14's attention-only microbenchmark: one attention layer's forward
/// and backward (no recomputation, no dense path, no FSDP) across the
/// cluster. Megatron-CP's reported OOM beyond 256K tokens is reproduced by
/// its implementation's per-step fp32 score/probability chunks
/// (`(N/G)² × heads × 8 B`), which the online-softmax implementations never
/// materialise.
pub fn attention_only(
    method: &Method,
    cluster: &Cluster,
    model: &PaperModel,
    mask: &AttnMask,
    seq_len: usize,
) -> Result<f64, Infeasible> {
    let g = cluster.world();
    if let Method::DeepSpeedUlysses = method {
        let u = ulysses_group(model.heads, g);
        if u < g {
            return Err(Infeasible::HeadsNotDivisible {
                heads: model.heads,
                world: g,
            });
        }
    }
    if let Method::MegatronCp = method {
        let chunk = seq_len as f64 / g as f64;
        let extra = chunk * chunk * model.heads as f64 * 8.0;
        let budget = cluster.hbm * 0.95;
        if extra > budget {
            return Err(Infeasible::Oom {
                required_gb: extra / 1e9,
                budget_gb: budget / 1e9,
            });
        }
    }
    let (c, ov, serial) = attention_phase_with_passes(method, cluster, model, mask, seq_len, 1.0);
    Ok(c.max(ov) + serial)
}

/// Table 5's setting: `gpus` GPUs in one node, a context-parallel group of
/// size `cp` (the remaining `gpus/cp` form data-parallel replicas, each on
/// its own sequence of `cp × tokens_per_gpu` tokens), FSDP sharding over
/// the whole node and optimizer offloading per the paper.
pub fn evaluate_intra_node_cp(
    gpus: usize,
    cp: usize,
    model: &PaperModel,
    mask: &AttnMask,
    tokens_per_gpu: usize,
    opts: BurstOpts,
) -> Result<EndToEnd, Infeasible> {
    assert!(cp > 0 && gpus.is_multiple_of(cp), "cp must divide the node");
    let node = Cluster::a800(1, gpus);
    let cp_cluster = Cluster::a800(1, cp);
    let seq = tokens_per_gpu * cp;
    let method = Method::BurstEngine(opts);
    // Memory: parameters shard over the whole node; activations follow the
    // per-GPU token count.
    let mut mem_opts = method_mem_options(&method);
    mem_opts.offload_optimizer = true;
    let mem = memory::memory(model, gpus, tokens_per_gpu as f64, &mem_opts);
    let budget = node.hbm * 0.95;
    if mem.total() > budget {
        return Err(Infeasible::Oom {
            required_gb: mem.total_gb(),
            budget_gb: budget / 1e9,
        });
    }
    // Timing: attention runs on the cp-sized ring over `seq` tokens; the
    // dense path sees `tokens_per_gpu` per GPU.
    let (attn_c, comm_ov, comm_serial) = attention_phase(&method, &cp_cluster, model, mask, seq);
    let attn_total = (attn_c.max(comm_ov) + comm_serial) * model.layers as f64;
    let dense = flops::dense_flops(model, tokens_per_gpu, dense_factor(opts.ckpt))
        / (node.peak_flops * node.eff_gemm);
    let fsdp_vol = 3.0 * model.params() * 2.0 * (gpus as f64 - 1.0) / gpus as f64;
    let fsdp_comm = fsdp_vol / node.nvlink.bandwidth;
    let step_time = attn_total + dense.max(fsdp_comm);
    // Per-GPU useful FLOPs: this GPU's share of its replica's sequence.
    let useful = flops::useful_flops(model, mask, seq) / cp as f64;
    Ok(EndToEnd {
        step_time,
        tgs: tokens_per_gpu as f64 / step_time,
        mfu: useful / (step_time * node.peak_flops),
        mem_gb: mem.total_gb(),
        comm_exposed: ((comm_ov - attn_c).max(0.0) + comm_serial) * model.layers as f64,
        comm_total: (comm_ov + comm_serial) * model.layers as f64 + fsdp_comm,
        attn_compute: attn_total,
        dense_compute: dense,
    })
}

/// Sweep the sequence-level selective checkpointing split point ρ
/// (Fig. 6's trade-off): returns `(ρ, TGS, MFU, memory GB)` rows for the
/// fully-optimized BurstEngine. ρ = 0 stores everything (selective++);
/// ρ = 1 recomputes everything (full checkpointing).
pub fn rho_sweep(
    cluster: &Cluster,
    model: &PaperModel,
    mask: &AttnMask,
    seq_len: usize,
    points: usize,
) -> Vec<(f64, EndToEnd)> {
    (0..=points)
        .map(|i| {
            let rho = i as f64 / points as f64;
            let opts = BurstOpts {
                ckpt: CkptKind::SeqSelective { rho },
                ..BurstOpts::full()
            };
            let e = evaluate(&Method::BurstEngine(opts), cluster, model, mask, seq_len)
                .expect("burst must fit at paper settings");
            (rho, e)
        })
        .collect()
}

/// Evaluate with the method's default offload policy.
pub fn evaluate(
    method: &Method,
    cluster: &Cluster,
    model: &PaperModel,
    mask: &AttnMask,
    seq_len: usize,
) -> Result<EndToEnd, Infeasible> {
    evaluate_with_offload(method, cluster, model, mask, seq_len, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn causal() -> AttnMask {
        AttnMask::Causal
    }

    #[test]
    fn megatron_cp_ooms_at_paper_settings() {
        // Fig. 12: Megatron-CP fails at 7B and 14B on 32×A800 (no FSDP).
        let c = Cluster::a800(4, 8);
        for model in [PaperModel::llama_7b(), PaperModel::llama_14b()] {
            let r = evaluate(&Method::MegatronCp, &c, &model, &causal(), 1 << 20);
            assert!(matches!(r, Err(Infeasible::Oom { .. })), "{r:?}");
        }
    }

    #[test]
    fn ulysses_fails_at_14b_but_runs_at_7b() {
        let c = Cluster::a800(4, 8);
        // 7B: 32 heads over 32 GPUs — feasible.
        let ok = evaluate(
            &Method::DeepSpeedUlysses,
            &c,
            &PaperModel::llama_7b(),
            &causal(),
            1 << 20,
        );
        assert!(ok.is_ok(), "{ok:?}");
        // 14B: 40 heads cap the group at 8 → sequence per GPU ×4 → OOM
        // (the paper's reported failure mode).
        let bad = evaluate(
            &Method::DeepSpeedUlysses,
            &c,
            &PaperModel::llama_14b(),
            &causal(),
            1 << 20,
        );
        assert!(matches!(bad, Err(Infeasible::Oom { .. })), "{bad:?}");
    }

    #[test]
    fn burst_beats_all_baselines_figure_12() {
        let c = Cluster::a800(4, 8);
        let m = PaperModel::llama_14b();
        let n = 1 << 20;
        let burst = evaluate(
            &Method::BurstEngine(BurstOpts::full()),
            &c,
            &m,
            &causal(),
            n,
        )
        .unwrap();
        for baseline in [Method::LoongTrainDoubleRing, Method::LoongTrainUsp] {
            let b = evaluate(&baseline, &c, &m, &causal(), n).unwrap();
            assert!(
                burst.tgs > b.tgs,
                "burst {} must beat {} ({})",
                burst.tgs,
                baseline.name(),
                b.tgs
            );
        }
        // Speedup over USP in the paper's 1.1–1.3 band.
        let usp = evaluate(&Method::LoongTrainUsp, &c, &m, &causal(), n).unwrap();
        let speedup = burst.tgs / usp.tgs;
        assert!(
            (1.05..1.45).contains(&speedup),
            "speedup over USP {speedup} (paper: 1.15–1.2×)"
        );
    }

    #[test]
    fn burst_memory_is_lowest_figure_13() {
        let c = Cluster::a800(4, 8);
        let m = PaperModel::llama_14b();
        let n = 1 << 20;
        let burst = evaluate(
            &Method::BurstEngine(BurstOpts::full()),
            &c,
            &m,
            &causal(),
            n,
        )
        .unwrap();
        for baseline in [Method::LoongTrainDoubleRing, Method::LoongTrainUsp] {
            let b = evaluate(&baseline, &c, &m, &causal(), n).unwrap();
            assert!(
                burst.mem_gb < b.mem_gb,
                "burst {} GB must undercut {} ({} GB)",
                burst.mem_gb,
                baseline.name(),
                b.mem_gb
            );
        }
    }

    #[test]
    fn only_burst_survives_64_gpu_long_sequences() {
        // Fig. 13: on 64×A800, 7B @ 4M and 14B @ 2M run only on BurstEngine.
        let c = Cluster::a800(8, 8);
        for (model, seq) in [
            (PaperModel::llama_7b(), 4usize << 20),
            (PaperModel::llama_14b(), 2usize << 20),
        ] {
            let burst = evaluate(
                &Method::BurstEngine(BurstOpts::full()),
                &c,
                &model,
                &causal(),
                seq,
            );
            assert!(burst.is_ok(), "burst must fit: {burst:?}");
            for baseline in [
                Method::MegatronCp,
                Method::DeepSpeedUlysses,
                Method::LoongTrainDoubleRing,
                Method::LoongTrainUsp,
            ] {
                let r = evaluate(&baseline, &c, &model, &causal(), seq);
                assert!(r.is_err(), "{} should fail: {r:?}", baseline.name());
            }
        }
    }

    #[test]
    fn ablation_ordering_matches_table_2() {
        // MFU must increase monotonically along the paper's ablation rows,
        // and each row's delta must have the right sign.
        let c = Cluster::a800(4, 8);
        let m = PaperModel::llama_14b();
        let n = 1 << 20;
        let row = |o: BurstOpts| evaluate(&Method::BurstEngine(o), &c, &m, &causal(), n).unwrap();
        let r1 = row(BurstOpts::baseline());
        let r2 = row(BurstOpts {
            backward_opt: true,
            ..BurstOpts::baseline()
        });
        let r3 = row(BurstOpts {
            backward_opt: true,
            topo_ring: true,
            ..BurstOpts::baseline()
        });
        let r4 = row(BurstOpts {
            backward_opt: true,
            topo_ring: true,
            fused_lm_head: true,
            ckpt: CkptKind::Full,
        });
        let r5 = row(BurstOpts {
            backward_opt: true,
            topo_ring: true,
            fused_lm_head: true,
            ckpt: CkptKind::SeqSelective { rho: 0.5 },
        });
        let r6 = row(BurstOpts {
            backward_opt: true,
            topo_ring: true,
            fused_lm_head: true,
            ckpt: CkptKind::SelectivePP,
        });
        // Paper row 1: 36.75 % MFU. Calibration anchor: within ±4 points.
        assert!(
            (r1.mfu - 0.3675).abs() < 0.04,
            "baseline MFU {} vs paper 0.3675",
            r1.mfu
        );
        assert!(r2.mfu > r1.mfu, "backward opt: {} > {}", r2.mfu, r1.mfu);
        assert!(r3.mfu > r2.mfu, "topo ring: {} > {}", r3.mfu, r2.mfu);
        // Fusion: memory drops a lot, throughput unchanged.
        assert!(
            r4.mem_gb < r3.mem_gb - 5.0,
            "{} vs {}",
            r4.mem_gb,
            r3.mem_gb
        );
        assert!((r4.mfu - r3.mfu).abs() < 0.01);
        // Seq-selective: big MFU gain, moderate memory increase.
        assert!(r5.mfu > 1.10 * r4.mfu, "{} vs {}", r5.mfu, r4.mfu);
        assert!(r5.mem_gb > r4.mem_gb);
        // ++: even faster, even more memory.
        assert!(r6.mfu > r5.mfu);
        assert!(r6.mem_gb > r5.mem_gb);
    }

    #[test]
    fn scalability_holds_nodes_and_sequence_together() {
        // Table 4: MFU stays ~flat from 2 to 8 nodes with 32K tokens/GPU.
        let m = PaperModel::llama_14b();
        let mut mfus = Vec::new();
        for nodes in [2usize, 4, 8] {
            let c = Cluster::a800(nodes, 8);
            let n = 32768 * c.world();
            let e = evaluate(
                &Method::BurstEngine(BurstOpts::full()),
                &c,
                &m,
                &causal(),
                n,
            )
            .unwrap();
            mfus.push(e.mfu);
        }
        let max = mfus.iter().cloned().fold(0.0, f64::max);
        let min = mfus.iter().cloned().fold(1.0, f64::min);
        assert!(
            (max - min) / max < 0.15,
            "MFU should be stable across nodes: {mfus:?}"
        );
    }

    #[test]
    fn intra_node_mfu_grows_with_cp_size() {
        // Table 5: CP 1→8 at 32K tokens/GPU: MFU creeps up, TGS drops
        // (each token costs more attention), memory stays bounded.
        let m = PaperModel::llama_14b();
        let mut rows = Vec::new();
        for cp in [1usize, 2, 4, 8] {
            let e = evaluate_intra_node_cp(8, cp, &m, &causal(), 32768, BurstOpts::full()).unwrap();
            rows.push((cp, e));
        }
        for w in rows.windows(2) {
            assert!(
                w[1].1.mfu >= w[0].1.mfu * 0.99,
                "MFU should not fall with CP: {:?}",
                rows.iter().map(|(c, e)| (*c, e.mfu)).collect::<Vec<_>>()
            );
            assert!(
                w[1].1.tgs < w[0].1.tgs,
                "TGS must drop as the sequence grows with CP"
            );
        }
        let last = rows.last().unwrap().1;
        assert!(
            (0.42..0.58).contains(&last.mfu),
            "CP=8 MFU {} (paper: 51.9 %)",
            last.mfu
        );
        // Paper: 393.44 TGS at CP=8; ±25 %.
        assert!(
            (295.0..492.0).contains(&last.tgs),
            "CP=8 TGS {} vs paper 393",
            last.tgs
        );
    }

    #[test]
    fn rho_sweep_is_a_true_tradeoff() {
        // Throughput falls and memory falls as ρ grows: no point dominates.
        let c = Cluster::a800(4, 8);
        let m = PaperModel::llama_14b();
        let rows = rho_sweep(&c, &m, &causal(), 1 << 20, 4);
        for w in rows.windows(2) {
            assert!(w[1].1.tgs <= w[0].1.tgs + 1e-9, "TGS must fall with ρ");
            assert!(
                w[1].1.mem_gb <= w[0].1.mem_gb + 1e-9,
                "memory must fall with ρ"
            );
        }
        // Endpoints coincide with the named strategies.
        let pp = evaluate(
            &Method::BurstEngine(BurstOpts {
                ckpt: CkptKind::SelectivePP,
                ..BurstOpts::full()
            }),
            &c,
            &m,
            &causal(),
            1 << 20,
        )
        .unwrap();
        assert!((rows[0].1.tgs - pp.tgs).abs() < 1e-6);
        let full = evaluate(
            &Method::BurstEngine(BurstOpts {
                ckpt: CkptKind::Full,
                ..BurstOpts::full()
            }),
            &c,
            &m,
            &causal(),
            1 << 20,
        )
        .unwrap();
        assert!((rows.last().unwrap().1.tgs - full.tgs).abs() < 1e-6);
    }

    #[test]
    fn ulysses_group_arithmetic() {
        assert_eq!(ulysses_group(32, 32), 32);
        assert_eq!(ulysses_group(40, 32), 8);
        assert_eq!(ulysses_group(40, 64), 8);
        assert_eq!(ulysses_group(32, 64), 32);
        assert_eq!(ulysses_group(7, 4), 1);
    }

    #[test]
    fn sparse_masks_speed_up_training_table_3() {
        let c = Cluster::a800(4, 8);
        let m = PaperModel::llama_14b();
        let n = 1 << 20;
        let burst = Method::BurstEngine(BurstOpts::full());
        let masking = evaluate(&burst, &c, &m, &AttnMask::Full, n).unwrap();
        let causal = evaluate(&burst, &c, &m, &AttnMask::Causal, n).unwrap();
        let swa = evaluate(
            &burst,
            &c,
            &m,
            &AttnMask::SlidingWindow { window: 32 << 10 },
            n,
        )
        .unwrap();
        let causal_speedup = causal.tgs / masking.tgs;
        let swa_speedup = swa.tgs / masking.tgs;
        assert!(
            (1.5..2.5).contains(&causal_speedup),
            "causal speedup {causal_speedup} (paper: 1.72×)"
        );
        assert!(
            swa_speedup > causal_speedup * 1.5,
            "SWA speedup {swa_speedup} must far exceed causal ({causal_speedup})"
        );
    }
}
