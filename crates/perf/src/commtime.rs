//! Table 1: communication time of one attention layer (forward + backward)
//! under the three ring disciplines.
//!
//! Following the paper's notation, a full ring pass makes `G` hops; in a
//! flat ring every hop is gated by the slower of the two link classes,
//! while the two-level rings take `G − N_inter` NVLink hops and `N_inter`
//! NIC hops (all NICs active simultaneously). One "unit" is a full ring
//! pass of one `N/G × d` partition: the forward moves 2 units (`K, V`),
//! Algorithm 1's backward moves 4 and Algorithm 2's moves ~3.
//!
//! * RingAttention:      `6 · max(G·T_intra(P), G·T_inter(P))`
//! * DoubleRingAttention:`4 · max((G−n)·T_intra, n·T_inter) + 2·((G−n)·T_intra + n·T_inter)`
//!   (forward's 2 units overlap the two link classes; the backward's 4
//!   gradient-carrying units cannot, so their intra and inter parts add)
//! * BurstAttention:     `5 · max((G−n)·T_intra, n·T_inter)`
//!   (2 forward + ~3 backward units, both levels overlapped)

use crate::machine::Cluster;
use burst_comm::{CommStats, WireDtype};
use burst_dattn::{
    census_dr_alg1, census_dr_alg2, census_dr_forward, census_flat_alg1, census_flat_forward,
    Layout, MaskedWire, RingGeom, SkipPlan,
};
use burst_kernels::AttnMask;
use serde::{Deserialize, Serialize};

/// Communication time of one layer's attention fwd+bwd for each method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommTimes {
    pub ring: f64,
    pub double_ring: f64,
    pub burst: f64,
}

/// Per-hop partition bytes: one `N/G × d_model` activation in bf16 —
/// the paper's Table 1 assumes half-width activations on the wire
/// (the simulator's [`WireDtype::Bf16`] setting). For the f32 wire use
/// `partition_bytes_dtype` with [`WireDtype::F32`].
pub fn partition_bytes(seq_len: usize, d_model: usize, world: usize) -> f64 {
    partition_bytes_dtype(seq_len, d_model, world, WireDtype::Bf16)
}

/// [`partition_bytes`] at an explicit wire dtype.
pub fn partition_bytes_dtype(
    seq_len: usize,
    d_model: usize,
    world: usize,
    dtype: WireDtype,
) -> f64 {
    (seq_len as f64 / world as f64) * d_model as f64 * dtype.width()
}

/// Evaluate all three Table 1 rows for a partition of `p_bytes`.
pub fn comm_times(cluster: &Cluster, p_bytes: f64) -> CommTimes {
    let g = cluster.world() as f64;
    // A single node has no inter-node hops at all; otherwise one hop per
    // node boundary.
    let n_inter = if cluster.nodes > 1 {
        cluster.nodes as f64
    } else {
        0.0
    };
    let t_intra = cluster.nvlink.time(p_bytes);
    let t_inter = if cluster.nodes > 1 {
        cluster.nic.time(p_bytes)
    } else {
        0.0
    };
    let flat_pass = if cluster.nodes > 1 {
        g * t_intra.max(t_inter)
    } else {
        g * t_intra
    };
    let two_level_pass = ((g - n_inter) * t_intra).max(n_inter * t_inter);
    let two_level_serial = (g - n_inter) * t_intra + n_inter * t_inter;
    CommTimes {
        ring: 6.0 * flat_pass,
        double_ring: 4.0 * two_level_pass + 2.0 * two_level_serial,
        burst: 5.0 * two_level_pass,
    }
}

/// Forward-only share of each method's communication (2 of 6/6/5 units).
pub fn forward_fraction(method_units: f64) -> f64 {
    2.0 / method_units
}

/// Convenience: per-layer communication times for a model shape.
pub fn layer_comm_times(cluster: &Cluster, seq_len: usize, d_model: usize) -> CommTimes {
    comm_times(cluster, partition_bytes(seq_len, d_model, cluster.world()))
}

/// One of the three ring disciplines of Table 1, for the exact census.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RingMethod {
    /// Flat-ring forward + Algorithm 1 backward (RingAttention).
    Ring,
    /// Two-level forward + Algorithm 1 backward (LoongTrain DoubleRing).
    DoubleRing,
    /// Two-level forward + Algorithm 2 backward (full BurstAttention).
    Burst,
}

/// Exact wire-message census of one attention layer (forward + backward),
/// aggregated over every rank and split by link class.
///
/// Unlike the Table 1 closed forms above — which approximate the
/// *critical-path* communication time of a ring pass — this census counts
/// each point-to-point message the schedules actually post, so
/// `secs = msgs · latency + bytes / bandwidth` per link class reproduces
/// the simulator's per-message wire occupancy (the sum over `Send` spans
/// of `arrival − depart`) exactly on the fault-free path. The observability
/// report gates measured-vs-predicted divergence on this quantity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WireCounts {
    pub intra_msgs: u64,
    pub inter_msgs: u64,
    pub intra_bytes: f64,
    pub inter_bytes: f64,
}

impl WireCounts {
    fn add(&mut self, inter: bool, msgs: u64, bytes_each: f64) {
        if inter {
            self.inter_msgs += msgs;
            self.inter_bytes += msgs as f64 * bytes_each;
        } else {
            self.intra_msgs += msgs;
            self.intra_bytes += msgs as f64 * bytes_each;
        }
    }

    pub fn msgs(&self) -> u64 {
        self.intra_msgs + self.inter_msgs
    }

    pub fn bytes(&self) -> f64 {
        self.intra_bytes + self.inter_bytes
    }

    /// Total wire occupancy: every message pays its link's latency plus
    /// serialization, summed over both link classes.
    pub fn secs(&self, cluster: &Cluster) -> f64 {
        self.intra_msgs as f64 * cluster.nvlink.latency
            + self.intra_bytes / cluster.nvlink.bandwidth
            + self.inter_msgs as f64 * cluster.nic.latency
            + self.inter_bytes / cluster.nic.bandwidth
    }
}

/// Count every message the schedule for `method` posts, over all ranks,
/// for per-rank partitions of `seq_len / world` rows of width `d`, at the
/// simulator's default f32 wire (4 bytes per matrix element; use
/// [`exact_wire_counts_dtype`] for a bf16 wire). The per-rank counts
/// mirror the send sites in `burst-dattn`:
///
/// * flat ring: `2(G−1)` forward + `4G` Algorithm 1 backward `Mat` hops on
///   each rank's single outgoing edge; `nodes` of the `G` edges cross a
///   node boundary when `nodes > 1`;
/// * two-level forward: `2(n−1)` inter + `2n(p−1)` intra `Mat` hops;
/// * Algorithm 1 over the two-level ring adds `4(n−1)` inter +
///   `4n(p−1)` intra hops plus the completion hops (`2` inter when
///   `n > 1`, `2·(n mod p)` intra);
/// * Algorithm 2 over the two-level ring moves the read-only bundle
///   (2 `Mat` + 2 `Vec`) along the forward traversal and streams one `∇Q`
///   `Mat` per slot, `n` of them on the inter diagonal when `n > 1`.
pub fn exact_wire_counts(
    cluster: &Cluster,
    seq_len: usize,
    d: usize,
    method: RingMethod,
) -> WireCounts {
    exact_wire_counts_dtype(cluster, seq_len, d, method, WireDtype::F32)
}

/// [`exact_wire_counts`] at an explicit matrix wire dtype. Only the `Mat`
/// payloads change width: the softmax statistics vectors (`LSE`, `D`)
/// always travel as f32 (4 bytes per element), matching the simulator.
pub fn exact_wire_counts_dtype(
    cluster: &Cluster,
    seq_len: usize,
    d: usize,
    method: RingMethod,
    dtype: WireDtype,
) -> WireCounts {
    let g = cluster.world();
    let (n, p) = (cluster.nodes as u64, cluster.gpus_per_node as u64);
    let m = seq_len as f64 / g as f64;
    let mat = m * d as f64 * dtype.width();
    let vec = m * 4.0;
    let mut w = WireCounts::default();
    if g == 1 {
        return w; // single rank: both backwards early-return, no sends
    }
    let gr = g as u64;
    match method {
        RingMethod::Ring => {
            let per_rank = 2 * (gr - 1) + 4 * gr;
            let inter_ranks = if n > 1 { n } else { 0 };
            w.add(true, inter_ranks * per_rank, mat);
            w.add(false, (gr - inter_ranks) * per_rank, mat);
        }
        RingMethod::DoubleRing => {
            let inter_per = 6 * (n - 1) + if n > 1 { 2 } else { 0 };
            let intra_per = 6 * n * (p - 1) + 2 * (n % p);
            w.add(true, gr * inter_per, mat);
            w.add(false, gr * intra_per, mat);
        }
        RingMethod::Burst => {
            // Forward K/V and the backward read-only Q/∇O share the
            // two-level traversal: 2 Mat hops each way per boundary.
            let ro_inter = n - 1;
            let ro_intra = n * (p - 1);
            w.add(true, gr * 4 * ro_inter, mat);
            w.add(true, gr * 2 * ro_inter, vec);
            w.add(false, gr * 4 * ro_intra, mat);
            w.add(false, gr * 2 * ro_intra, vec);
            // ∇Q stream: one Mat per slot; the `n` diagonal hops cross
            // nodes when there is more than one.
            let dq_inter = if n > 1 { n } else { 0 };
            w.add(true, gr * dq_inter, mat);
            w.add(false, gr * (n * p - dq_inter), mat);
        }
    }
    w
}

/// [`WireCounts`] plus the skip duals: what a mask-gated run actually puts
/// on the wire, what it elides, and how many rank-rounds disappear. With
/// `skip = false` (or under [`AttnMask::Full`]) `counts` reproduces
/// [`exact_wire_counts_dtype`] bit-for-bit and the duals are zero; with
/// skipping on, `counts.bytes() + skipped_bytes` still equals the dense
/// census — bytes move between the lanes, they never vanish.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MaskedWireCounts {
    /// Messages the gated schedule actually posts, split by link class.
    pub counts: WireCounts,
    /// Rank-rounds elided entirely (no span, no clock, no wire),
    /// summed over all ranks.
    pub rounds_skipped: u64,
    /// Bytes the dense schedule would have posted that the gates kept off
    /// the wire (matrix payloads at the wire dtype, statistics vectors at
    /// f32 — the same widths `CommStats::skipped_bytes` bills).
    pub skipped_bytes: f64,
}

impl MaskedWireCounts {
    /// Dense-equivalent wire bytes: actual traffic plus the skipped dual.
    pub fn dense_bytes(&self) -> f64 {
        self.counts.bytes() + self.skipped_bytes
    }
}

/// Exact per-rank wire activity of one *masked* pass of `method`, in
/// logical elements. This is the symbolic twin of the gated send sites in
/// `burst-dattn`: for every `(schedule × mask × layout)` cell the returned
/// [`MaskedWire`] matches rank `me`'s measured `CommStats` — messages,
/// matrix/vector elements, skipped rounds and skipped elements — exactly.
///
/// `skip = false` builds the dense plan (every gate forced open), so the
/// census then reproduces the unmasked schedule regardless of `mask`.
#[allow(clippy::too_many_arguments)]
pub fn masked_wire_rank(
    cluster: &Cluster,
    seq_len: usize,
    d: usize,
    method: RingMethod,
    mask: &AttnMask,
    layout: Layout,
    max_token: Option<usize>,
    skip: bool,
    me: usize,
) -> MaskedWire {
    let g = cluster.world();
    let (n, p) = (cluster.nodes, cluster.gpus_per_node);
    let plan = if skip {
        SkipPlan::build(mask, layout, seq_len, g, max_token)
    } else {
        SkipPlan::dense(g)
    };
    let geom = RingGeom::build(layout, seq_len, g, d, d, max_token);
    // A flat rank's single outgoing edge crosses the node boundary exactly
    // when the rank is the last GPU of its node.
    let edge_inter = n > 1 && (me + 1).is_multiple_of(p);
    let fwd = match method {
        RingMethod::Ring => census_flat_forward(&plan, &geom, edge_inter, me),
        RingMethod::DoubleRing | RingMethod::Burst => census_dr_forward(&plan, &geom, n, p, me),
    };
    match method {
        // Flat Algorithm 1 and two-level Algorithm 2 early-return into one
        // dense local tile on a single rank, before any gating; two-level
        // Algorithm 1 still runs its (single, gated) slot.
        RingMethod::Ring if g == 1 => fwd,
        RingMethod::Burst if g == 1 => fwd,
        RingMethod::Ring => fwd.add(&census_flat_alg1(&plan, &geom, edge_inter, me)),
        RingMethod::DoubleRing => fwd.add(&census_dr_alg1(&plan, &geom, n, p, me)),
        RingMethod::Burst => fwd.add(&census_dr_alg2(&plan, &geom, n, p, me)),
    }
}

/// Mask-aware [`exact_wire_counts_dtype`]: aggregate the per-rank masked
/// censuses over the whole cluster and convert elements to bytes (matrix
/// payloads at `dtype`, statistics vectors always f32).
#[allow(clippy::too_many_arguments)]
pub fn exact_wire_counts_masked_dtype(
    cluster: &Cluster,
    seq_len: usize,
    d: usize,
    method: RingMethod,
    dtype: WireDtype,
    mask: &AttnMask,
    layout: Layout,
    max_token: Option<usize>,
    skip: bool,
) -> MaskedWireCounts {
    let g = cluster.world();
    let total = (0..g).fold(MaskedWire::default(), |acc, me| {
        acc.add(&masked_wire_rank(
            cluster, seq_len, d, method, mask, layout, max_token, skip, me,
        ))
    });
    let width = dtype.width();
    MaskedWireCounts {
        counts: WireCounts {
            intra_msgs: total.intra_msgs,
            inter_msgs: total.inter_msgs,
            intra_bytes: total.intra_mat_elems as f64 * width + total.intra_vec_elems as f64 * 4.0,
            inter_bytes: total.inter_mat_elems as f64 * width + total.inter_vec_elems as f64 * 4.0,
        },
        rounds_skipped: total.rounds_skipped,
        skipped_bytes: total.skipped_mat_elems as f64 * width
            + total.skipped_vec_elems as f64 * 4.0,
    }
}

/// Exact retransmit census of a (possibly faulty) run under the reliable
/// transport.
///
/// The transport bills every *physical* attempt after the first into the
/// simulator's `retrans_msgs`/`retrans_bytes` counters, while the clean
/// message counters stay byte-for-byte what a fault-free run records. That
/// split is what keeps the measured-vs-analytic comm gate exact with
/// faults on: the analytic side stays [`WireCounts`] (the schedule's
/// clean census), and the *reliability overhead* is this census — so
///
/// ```text
/// measured wire bytes == WireCounts::bytes() + RetransCensus::bytes
/// ```
///
/// holds exactly, not approximately, for any seeded transient fault plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RetransCensus {
    /// Retransmitted physical messages (attempts beyond the first).
    pub msgs: u64,
    /// Bytes those attempts put on the wire.
    pub bytes: f64,
}

impl RetransCensus {
    /// Extract the retransmit share of one rank's [`CommStats`].
    pub fn from_stats(stats: &CommStats) -> Self {
        RetransCensus {
            msgs: stats.retrans_msgs,
            bytes: stats.retrans_bytes,
        }
    }

    /// Aggregate the census over all ranks of a run.
    pub fn from_run(stats: &[CommStats]) -> Self {
        stats.iter().fold(RetransCensus::default(), |mut c, s| {
            c.msgs += s.retrans_msgs;
            c.bytes += s.retrans_bytes;
            c
        })
    }

    /// A clean run (or one where every fault was outside the wire path)
    /// retransmits nothing.
    pub fn is_clean(&self) -> bool {
        self.msgs == 0 && self.bytes == 0.0
    }

    /// Total bytes the reliable run put on the wire: the schedule's clean
    /// census plus every retransmitted attempt. Matches
    /// `CommStats::wire_bytes_with_retrans()` summed over ranks exactly.
    pub fn reliable_wire_bytes(&self, clean: &WireCounts) -> f64 {
        clean.bytes() + self.bytes
    }

    /// Fractional byte overhead of reliability over the clean census
    /// (`0.0` for a clean run; `0.10` means 10 % extra wire bytes).
    pub fn overhead_fraction(&self, clean: &WireCounts) -> f64 {
        if clean.bytes() == 0.0 {
            0.0
        } else {
            self.bytes / clean.bytes()
        }
    }
}

/// The exact-census counterpart of [`layer_comm_times`]: total wire
/// occupancy per method for one layer, summed over all ranks, at the
/// default f32 wire.
pub fn exact_comm_times(cluster: &Cluster, seq_len: usize, d_model: usize) -> CommTimes {
    exact_comm_times_dtype(cluster, seq_len, d_model, WireDtype::F32)
}

/// [`exact_comm_times`] at an explicit matrix wire dtype.
pub fn exact_comm_times_dtype(
    cluster: &Cluster,
    seq_len: usize,
    d_model: usize,
    dtype: WireDtype,
) -> CommTimes {
    CommTimes {
        ring: exact_wire_counts_dtype(cluster, seq_len, d_model, RingMethod::Ring, dtype)
            .secs(cluster),
        double_ring: exact_wire_counts_dtype(
            cluster,
            seq_len,
            d_model,
            RingMethod::DoubleRing,
            dtype,
        )
        .secs(cluster),
        burst: exact_wire_counts_dtype(cluster, seq_len, d_model, RingMethod::Burst, dtype)
            .secs(cluster),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::a800(4, 8)
    }

    #[test]
    fn partition_bytes_formula() {
        // 1M tokens, 5120 dims, 32 GPUs, bf16.
        let p = partition_bytes(1 << 20, 5120, 32);
        assert_eq!(p, (1 << 20) as f64 / 32.0 * 5120.0 * 2.0);
    }

    #[test]
    fn burst_is_fastest_multi_node() {
        let t = layer_comm_times(&cluster(), 1 << 20, 5120);
        assert!(
            t.burst < t.double_ring,
            "burst {} < double {}",
            t.burst,
            t.double_ring
        );
        assert!(
            t.double_ring < t.ring,
            "double {} < ring {}",
            t.double_ring,
            t.ring
        );
    }

    #[test]
    fn single_node_all_collapse_to_nvlink() {
        // With one node the NIC terms vanish and burst/ring differ only by
        // the 5-vs-6 unit count.
        let c = Cluster::a800(1, 8);
        let t = layer_comm_times(&c, 1 << 18, 4096);
        let ratio = t.burst / t.ring;
        assert!((ratio - 5.0 / 6.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn flat_ring_is_gated_by_the_nic() {
        let c = cluster();
        let p = partition_bytes(1 << 20, 5120, c.world());
        let t = comm_times(&c, p);
        let g = c.world() as f64;
        assert!((t.ring - 6.0 * g * c.nic.time(p)).abs() < 1e-9);
    }

    #[test]
    fn burst_advantage_grows_with_node_count() {
        let seq = 1 << 20;
        let r2 = {
            let t = layer_comm_times(&Cluster::a800(2, 8), seq, 5120);
            t.ring / t.burst
        };
        let r8 = {
            let t = layer_comm_times(&Cluster::a800(8, 8), seq, 5120);
            t.ring / t.burst
        };
        assert!(
            r8 >= r2,
            "advantage should not shrink: 2 nodes {r2}, 8 nodes {r8}"
        );
    }

    #[test]
    fn exact_census_matches_hand_count() {
        // 2 nodes × 2 GPUs, 8 tokens, d = 4: m = 2 rows, f32 Mat = 32 bytes.
        let c = Cluster::a800(2, 2);
        let w = exact_wire_counts(&c, 8, 4, RingMethod::Ring);
        // Per rank 2·3 fwd + 4·4 bwd = 22 Mat hops; 2 of 4 edges are inter.
        assert_eq!(w.inter_msgs, 2 * 22);
        assert_eq!(w.intra_msgs, 2 * 22);
        assert_eq!(w.inter_bytes, 44.0 * 32.0);

        let w = exact_wire_counts(&c, 8, 4, RingMethod::DoubleRing);
        // Per rank inter: 6·1 + 2 completion = 8; intra: 6·2·1 + 2·(2%2) = 12.
        assert_eq!(w.inter_msgs, 4 * 8);
        assert_eq!(w.intra_msgs, 4 * 12);

        let w = exact_wire_counts(&c, 8, 4, RingMethod::Burst);
        // Per rank inter: 4 Mat read-only + 2 Vec + 2 ∇Q; intra: 8 Mat
        // read-only + 4 Vec + 2 ∇Q. Vec = 2 rows · 4 bytes.
        assert_eq!(w.inter_msgs, 4 * 8);
        assert_eq!(w.intra_msgs, 4 * 14);
        assert_eq!(w.inter_bytes, 4.0 * (6.0 * 32.0 + 2.0 * 8.0));
    }

    #[test]
    fn bf16_wire_halves_mat_bytes_but_not_vec_bytes() {
        let c = Cluster::a800(2, 2);
        for method in [RingMethod::Ring, RingMethod::DoubleRing] {
            // Mat-only methods: total bytes halve exactly.
            let f = exact_wire_counts_dtype(&c, 8, 4, method, WireDtype::F32);
            let h = exact_wire_counts_dtype(&c, 8, 4, method, WireDtype::Bf16);
            assert_eq!(h.bytes() * 2.0, f.bytes(), "{method:?}");
            assert_eq!(h.msgs(), f.msgs(), "{method:?}: census counts messages");
        }
        // Burst also ships f32 statistics vectors, so the halving applies
        // only to the Mat share: Bf16 Mat = 2·4·2 = 16 B, Vec stays 8 B.
        let h = exact_wire_counts_dtype(&c, 8, 4, RingMethod::Burst, WireDtype::Bf16);
        assert_eq!(h.inter_bytes, 4.0 * (6.0 * 16.0 + 2.0 * 8.0));
    }

    #[test]
    fn exact_burst_moves_fewest_bytes() {
        let c = cluster();
        let ring = exact_wire_counts(&c, 1 << 16, 128, RingMethod::Ring);
        let double = exact_wire_counts(&c, 1 << 16, 128, RingMethod::DoubleRing);
        let burst = exact_wire_counts(&c, 1 << 16, 128, RingMethod::Burst);
        assert!(burst.bytes() < double.bytes());
        assert!(burst.bytes() < ring.bytes());
        let t = exact_comm_times(&c, 1 << 16, 128);
        assert!(t.burst < t.double_ring);
    }

    #[test]
    fn exact_census_single_node_has_no_inter_traffic() {
        let c = Cluster::a800(1, 8);
        for method in [RingMethod::Ring, RingMethod::DoubleRing, RingMethod::Burst] {
            let w = exact_wire_counts(&c, 1 << 12, 64, method);
            assert_eq!(w.inter_msgs, 0, "{method:?}");
            assert_eq!(w.inter_bytes, 0.0, "{method:?}");
            assert!(w.intra_msgs > 0, "{method:?}");
        }
    }

    #[test]
    fn exact_census_single_rank_is_silent() {
        let c = Cluster::a800(1, 1);
        for method in [RingMethod::Ring, RingMethod::DoubleRing, RingMethod::Burst] {
            assert_eq!(exact_wire_counts(&c, 64, 8, method).msgs(), 0);
        }
    }

    #[test]
    fn retrans_census_accounts_reliable_overhead_exactly() {
        use burst_comm::{FaultPlan, Topology, World};
        // Two ranks, one uniform 16-element f32 message per step: every
        // retransmitted attempt re-ships exactly 64 bytes.
        let steps = 8usize;
        let run = |plan: Option<FaultPlan>| {
            let topo = Topology::single_node(2);
            let world = match plan {
                Some(p) => World::with_faults(topo, p),
                None => World::new(topo),
            };
            world.run(|comm| {
                let v: Vec<f32> = (0..16).map(|i| (comm.rank() * 100 + i) as f32).collect();
                for _ in 0..steps {
                    if comm.rank() == 0 {
                        comm.send_vec(1, &v);
                    } else {
                        comm.recv_vec(0);
                    }
                }
            })
        };
        let clean = run(None);
        let faulty = run(Some(
            FaultPlan::new(7)
                .drop_burst(0, 1, 2, 2)
                .flap_link(0, 1, 0.0, 1e-4)
                .reliable(),
        ));
        let census = RetransCensus::from_run(&faulty.iter().map(|o| o.stats).collect::<Vec<_>>());
        assert!(!census.is_clean(), "the plan must actually retransmit");
        // Clean counters are untouched by healing: byte-for-byte equal to
        // the fault-free run, so the census is precisely the overhead.
        let clean_bytes: f64 = clean.iter().map(|o| o.stats.total_bytes()).sum();
        let faulty_clean_bytes: f64 = faulty.iter().map(|o| o.stats.total_bytes()).sum();
        assert_eq!(faulty_clean_bytes, clean_bytes);
        let with_retrans: f64 = faulty
            .iter()
            .map(|o| o.stats.wire_bytes_with_retrans())
            .sum();
        assert_eq!(with_retrans, clean_bytes + census.bytes);
        // Uniform payloads: retransmitted bytes are an exact multiple.
        assert_eq!(census.bytes, census.msgs as f64 * 64.0);
        let retransmits: u64 = faulty.iter().map(|o| o.faults.retransmits).sum();
        assert_eq!(census.msgs, retransmits);
        // And the WireCounts-based closed form agrees.
        let wc = WireCounts {
            intra_msgs: steps as u64,
            inter_msgs: 0,
            intra_bytes: clean_bytes,
            inter_bytes: 0.0,
        };
        assert_eq!(census.reliable_wire_bytes(&wc), with_retrans);
        assert!(census.overhead_fraction(&wc) > 0.0);
    }

    #[test]
    fn retrans_census_is_clean_without_faults() {
        let c = RetransCensus::from_stats(&CommStats::default());
        assert!(c.is_clean());
        let w = WireCounts::default();
        assert_eq!(c.overhead_fraction(&w), 0.0);
        assert_eq!(c.reliable_wire_bytes(&w), 0.0);
    }

    #[test]
    fn masked_census_skip_off_reproduces_dense_census() {
        // With skipping off the plan is dense and every gate is forced
        // open, so the masked census must equal the closed forms exactly —
        // for any mask, any layout, both wire dtypes.
        let c = Cluster::a800(2, 3);
        let masks = [
            AttnMask::Full,
            AttnMask::Causal,
            AttnMask::SlidingWindow { window: 7 },
        ];
        for method in [RingMethod::Ring, RingMethod::DoubleRing, RingMethod::Burst] {
            for dtype in [WireDtype::F32, WireDtype::Bf16] {
                let dense = exact_wire_counts_dtype(&c, 48, 8, method, dtype);
                for mask in &masks {
                    for layout in [Layout::Contiguous, Layout::Zigzag] {
                        let m = exact_wire_counts_masked_dtype(
                            &c, 48, 8, method, dtype, mask, layout, None, false,
                        );
                        assert_eq!(m.counts, dense, "{method:?} {mask:?} {layout:?}");
                        assert_eq!(m.rounds_skipped, 0, "{method:?} {mask:?}");
                        assert_eq!(m.skipped_bytes, 0.0, "{method:?} {mask:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn masked_census_full_mask_skips_nothing() {
        // Under Full every tile is live, so even with skipping on the
        // gated schedule is the dense schedule (the flat Algorithm 1
        // homecoming being the one documented exception, on by the dense
        // flag only — Full + skip uses live gates and those are all-true,
        // so the monotone futures ranges still fire every hop).
        let c = Cluster::a800(2, 2);
        for method in [RingMethod::DoubleRing, RingMethod::Burst] {
            let dense = exact_wire_counts(&c, 32, 8, method);
            let m = exact_wire_counts_masked_dtype(
                &c,
                32,
                8,
                method,
                WireDtype::F32,
                &AttnMask::Full,
                Layout::Zigzag,
                None,
                true,
            );
            assert_eq!(m.counts, dense, "{method:?}");
            assert_eq!(m.rounds_skipped, 0, "{method:?}");
        }
    }

    #[test]
    fn masked_census_duals_to_dense() {
        // Whatever the gates keep off the wire is billed to the skip dual:
        // actual + skipped == dense, byte-for-byte, for every cell.
        let c = Cluster::a800(2, 3);
        let masks = [
            AttnMask::Causal,
            AttnMask::SlidingWindow { window: 9 },
            AttnMask::Dilated { window: 9, step: 2 },
        ];
        for method in [RingMethod::Ring, RingMethod::DoubleRing, RingMethod::Burst] {
            for dtype in [WireDtype::F32, WireDtype::Bf16] {
                let dense = exact_wire_counts_dtype(&c, 48, 8, method, dtype);
                for mask in &masks {
                    let m = exact_wire_counts_masked_dtype(
                        &c,
                        48,
                        8,
                        method,
                        dtype,
                        mask,
                        Layout::Contiguous,
                        None,
                        true,
                    );
                    assert_eq!(
                        m.dense_bytes(),
                        dense.bytes(),
                        "{method:?} {mask:?} {dtype:?}"
                    );
                    assert!(
                        m.counts.msgs() <= dense.msgs(),
                        "{method:?} {mask:?}: gating cannot add messages"
                    );
                }
            }
        }
    }

    #[test]
    fn masked_census_window_on_contiguous_saves_wire() {
        // A narrow window on the contiguous layout leaves most remote
        // tiles fully masked: rounds disappear and bytes move to the dual.
        let c = Cluster::a800(2, 3);
        let mask = AttnMask::SlidingWindow { window: 8 };
        for method in [RingMethod::Ring, RingMethod::DoubleRing, RingMethod::Burst] {
            let dense = exact_wire_counts(&c, 48, 8, method);
            let m = exact_wire_counts_masked_dtype(
                &c,
                48,
                8,
                method,
                WireDtype::F32,
                &mask,
                Layout::Contiguous,
                None,
                true,
            );
            assert!(m.rounds_skipped > 0, "{method:?}: no rounds skipped");
            assert!(m.skipped_bytes > 0.0, "{method:?}: no bytes saved");
            assert!(
                m.counts.bytes() < dense.bytes(),
                "{method:?}: wire bytes must shrink"
            );
        }
        // Zigzag under the same window balances compute instead: (almost)
        // every rank pair stays live, so the savings collapse.
        let zig = exact_wire_counts_masked_dtype(
            &c,
            48,
            8,
            RingMethod::Burst,
            WireDtype::F32,
            &mask,
            Layout::Zigzag,
            None,
            true,
        );
        let con = exact_wire_counts_masked_dtype(
            &c,
            48,
            8,
            RingMethod::Burst,
            WireDtype::F32,
            &mask,
            Layout::Contiguous,
            None,
            true,
        );
        assert!(con.skipped_bytes > zig.skipped_bytes);
    }

    #[test]
    fn masked_census_per_rank_sums_to_aggregate() {
        let c = Cluster::a800(2, 2);
        let mask = AttnMask::SlidingWindow { window: 8 };
        for method in [RingMethod::Ring, RingMethod::DoubleRing, RingMethod::Burst] {
            let agg = exact_wire_counts_masked_dtype(
                &c,
                32,
                8,
                method,
                WireDtype::F32,
                &mask,
                Layout::Contiguous,
                None,
                true,
            );
            let by_rank = (0..c.world()).fold(MaskedWire::default(), |acc, me| {
                acc.add(&masked_wire_rank(
                    &c,
                    32,
                    8,
                    method,
                    &mask,
                    Layout::Contiguous,
                    None,
                    true,
                    me,
                ))
            });
            assert_eq!(agg.counts.msgs(), by_rank.msgs(), "{method:?}");
            assert_eq!(agg.rounds_skipped, by_rank.rounds_skipped, "{method:?}");
            assert_eq!(
                agg.counts.bytes(),
                by_rank.mat_elems() as f64 * 4.0 + by_rank.vec_elems() as f64 * 4.0,
                "{method:?}"
            );
        }
    }

    #[test]
    fn times_scale_linearly_in_bytes_at_zero_latency() {
        let mut c = cluster();
        c.nvlink.latency = 0.0;
        c.nic.latency = 0.0;
        let t1 = comm_times(&c, 1e6);
        let t2 = comm_times(&c, 2e6);
        assert!((t2.ring / t1.ring - 2.0).abs() < 1e-9);
        assert!((t2.burst / t1.burst - 2.0).abs() < 1e-9);
    }
}
