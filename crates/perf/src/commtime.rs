//! Table 1: communication time of one attention layer (forward + backward)
//! under the three ring disciplines.
//!
//! Following the paper's notation, a full ring pass makes `G` hops; in a
//! flat ring every hop is gated by the slower of the two link classes,
//! while the two-level rings take `G − N_inter` NVLink hops and `N_inter`
//! NIC hops (all NICs active simultaneously). One "unit" is a full ring
//! pass of one `N/G × d` partition: the forward moves 2 units (`K, V`),
//! Algorithm 1's backward moves 4 and Algorithm 2's moves ~3.
//!
//! * RingAttention:      `6 · max(G·T_intra(P), G·T_inter(P))`
//! * DoubleRingAttention:`4 · max((G−n)·T_intra, n·T_inter) + 2·((G−n)·T_intra + n·T_inter)`
//!   (forward's 2 units overlap the two link classes; the backward's 4
//!   gradient-carrying units cannot, so their intra and inter parts add)
//! * BurstAttention:     `5 · max((G−n)·T_intra, n·T_inter)`
//!   (2 forward + ~3 backward units, both levels overlapped)

use crate::machine::Cluster;
use serde::{Deserialize, Serialize};

/// Communication time of one layer's attention fwd+bwd for each method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommTimes {
    pub ring: f64,
    pub double_ring: f64,
    pub burst: f64,
}

/// Per-hop partition bytes: one `N/G × d_model` activation in bf16.
pub fn partition_bytes(seq_len: usize, d_model: usize, world: usize) -> f64 {
    (seq_len as f64 / world as f64) * d_model as f64 * 2.0
}

/// Evaluate all three Table 1 rows for a partition of `p_bytes`.
pub fn comm_times(cluster: &Cluster, p_bytes: f64) -> CommTimes {
    let g = cluster.world() as f64;
    // A single node has no inter-node hops at all; otherwise one hop per
    // node boundary.
    let n_inter = if cluster.nodes > 1 {
        cluster.nodes as f64
    } else {
        0.0
    };
    let t_intra = cluster.nvlink.time(p_bytes);
    let t_inter = if cluster.nodes > 1 {
        cluster.nic.time(p_bytes)
    } else {
        0.0
    };
    let flat_pass = if cluster.nodes > 1 {
        g * t_intra.max(t_inter)
    } else {
        g * t_intra
    };
    let two_level_pass = ((g - n_inter) * t_intra).max(n_inter * t_inter);
    let two_level_serial = (g - n_inter) * t_intra + n_inter * t_inter;
    CommTimes {
        ring: 6.0 * flat_pass,
        double_ring: 4.0 * two_level_pass + 2.0 * two_level_serial,
        burst: 5.0 * two_level_pass,
    }
}

/// Forward-only share of each method's communication (2 of 6/6/5 units).
pub fn forward_fraction(method_units: f64) -> f64 {
    2.0 / method_units
}

/// Convenience: per-layer communication times for a model shape.
pub fn layer_comm_times(cluster: &Cluster, seq_len: usize, d_model: usize) -> CommTimes {
    comm_times(cluster, partition_bytes(seq_len, d_model, cluster.world()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::a800(4, 8)
    }

    #[test]
    fn partition_bytes_formula() {
        // 1M tokens, 5120 dims, 32 GPUs, bf16.
        let p = partition_bytes(1 << 20, 5120, 32);
        assert_eq!(p, (1 << 20) as f64 / 32.0 * 5120.0 * 2.0);
    }

    #[test]
    fn burst_is_fastest_multi_node() {
        let t = layer_comm_times(&cluster(), 1 << 20, 5120);
        assert!(
            t.burst < t.double_ring,
            "burst {} < double {}",
            t.burst,
            t.double_ring
        );
        assert!(
            t.double_ring < t.ring,
            "double {} < ring {}",
            t.double_ring,
            t.ring
        );
    }

    #[test]
    fn single_node_all_collapse_to_nvlink() {
        // With one node the NIC terms vanish and burst/ring differ only by
        // the 5-vs-6 unit count.
        let c = Cluster::a800(1, 8);
        let t = layer_comm_times(&c, 1 << 18, 4096);
        let ratio = t.burst / t.ring;
        assert!((ratio - 5.0 / 6.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn flat_ring_is_gated_by_the_nic() {
        let c = cluster();
        let p = partition_bytes(1 << 20, 5120, c.world());
        let t = comm_times(&c, p);
        let g = c.world() as f64;
        assert!((t.ring - 6.0 * g * c.nic.time(p)).abs() < 1e-9);
    }

    #[test]
    fn burst_advantage_grows_with_node_count() {
        let seq = 1 << 20;
        let r2 = {
            let t = layer_comm_times(&Cluster::a800(2, 8), seq, 5120);
            t.ring / t.burst
        };
        let r8 = {
            let t = layer_comm_times(&Cluster::a800(8, 8), seq, 5120);
            t.ring / t.burst
        };
        assert!(
            r8 >= r2,
            "advantage should not shrink: 2 nodes {r2}, 8 nodes {r8}"
        );
    }

    #[test]
    fn times_scale_linearly_in_bytes_at_zero_latency() {
        let mut c = cluster();
        c.nvlink.latency = 0.0;
        c.nic.latency = 0.0;
        let t1 = comm_times(&c, 1e6);
        let t2 = comm_times(&c, 2e6);
        assert!((t2.ring / t1.ring - 2.0).abs() < 1e-9);
        assert!((t2.burst / t1.burst - 2.0).abs() < 1e-9);
    }
}
