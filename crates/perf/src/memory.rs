//! Per-GPU memory decomposition at paper scale.
//!
//! Mixed-precision training state (bf16 weights/grads + fp32 Adam moments
//! and master weights), activation checkpoints per strategy, LM-head
//! logits, the transient working set of one block's recomputation, ring
//! and FSDP communication buffers, and an allocator-overhead factor
//! calibrated once against Table 2 row 1 (48.47 GB). Differences between
//! configurations — the quantities Figs. 7, 8, 13 and Tables 2, 4, 5
//! report — are pure component arithmetic.

use crate::machine::PaperModel;
use serde::{Deserialize, Serialize};

const BF16: f64 = 2.0;
const FP32: f64 = 4.0;
/// Adam under mixed precision: fp32 master + two fp32 moments.
const OPTIM_BYTES_PER_PARAM: f64 = 12.0;
/// Fixed runtime footprint (CUDA context, NCCL, cuBLAS workspaces).
const RUNTIME_BYTES: f64 = 3.0e9;
/// Allocator fragmentation / caching overhead (calibrated).
const ALLOC_OVERHEAD: f64 = 0.12;

/// Checkpointing strategy at paper scale (mirrors `burst_model::Strategy`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CkptKind {
    /// Store every activation.
    None,
    /// Block inputs only.
    Full,
    /// Block inputs + full attention outputs.
    SelectivePP,
    /// Block inputs + tail `(1−ρ)` of attention outputs.
    SeqSelective { rho: f64 },
}

/// How the LM head + loss are computed (Fig. 8 / §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LmHeadKind {
    /// Off-the-shelf cross-entropy: bf16 logits *and* the fp32 upcast /
    /// log-softmax retained for the backward (PyTorch default behaviour —
    /// what the baselines pay).
    Vanilla,
    /// Chunked CE that keeps only the bf16 logits (BMTrain's unfused path;
    /// Table 2 rows 1–3).
    Chunked,
    /// Algorithm 3: one `B_s × v` tile, fused forward+backward.
    Fused,
}

/// Memory-relevant configuration of a method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemOptions {
    /// Shard weights/grads/optimizer across all GPUs (FSDP).
    pub fsdp: bool,
    /// Keep optimizer states in host memory (ZeRO-Offload).
    pub offload_optimizer: bool,
    /// LM head + loss implementation.
    pub lm_head: LmHeadKind,
    pub ckpt: CkptKind,
    /// Per-rank communicator state (NCCL channel buffers × process
    /// groups, allocator pools): grows with world size. PyTorch-based
    /// frameworks with many process groups sit near 0.32 GB/rank; BMTrain's
    /// leaner communicator layer near 0.06 GB/rank. This term is what tips
    /// the ~75 GB baselines over the edge at 64 GPUs (Fig. 13's "only
    /// BurstEngine runs" observation) — see EXPERIMENTS.md.
    pub comm_state_per_rank: f64,
}

/// PyTorch/NCCL multi-process-group communicator footprint per rank.
pub const COMM_STATE_PYTORCH: f64 = 0.32e9;
/// BMTrain's communicator footprint per rank.
pub const COMM_STATE_BMTRAIN: f64 = 0.06e9;

/// Per-GPU byte breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemBreakdown {
    pub weights: f64,
    pub grads: f64,
    pub optimizer: f64,
    pub checkpoints: f64,
    pub lm_head: f64,
    pub transient: f64,
    pub buffers: f64,
    pub comm_state: f64,
    pub runtime: f64,
    pub overhead: f64,
}

impl MemBreakdown {
    pub fn total(&self) -> f64 {
        self.weights
            + self.grads
            + self.optimizer
            + self.checkpoints
            + self.lm_head
            + self.transient
            + self.buffers
            + self.comm_state
            + self.runtime
            + self.overhead
    }

    pub fn total_gb(&self) -> f64 {
        self.total() / 1e9
    }
}

/// Stored activation bytes per layer for one checkpoint strategy
/// (drives Fig. 7). `local_tokens` are the rows this GPU keeps.
pub fn ckpt_bytes_per_layer(model: &PaperModel, local_tokens: f64, ckpt: CkptKind) -> f64 {
    let d = model.d_model as f64;
    let dff = model.d_ff as f64;
    let block_input = local_tokens * d * BF16;
    let attn_out = local_tokens * d * BF16 + local_tokens * model.heads as f64 * FP32;
    match ckpt {
        CkptKind::Full => block_input,
        CkptKind::SelectivePP => block_input + attn_out,
        CkptKind::SeqSelective { rho } => block_input + (1.0 - rho) * attn_out,
        // No checkpointing: residual stream + q/k/v + attention out + both
        // norms + the three FFN intermediates.
        CkptKind::None => local_tokens * (8.0 * d + 3.0 * dff) * BF16,
    }
}

/// LM-head peak bytes (Fig. 8): the full `N_local × v` logits (plus their
/// fp32 upcast for [`LmHeadKind::Vanilla`]), or one `B_s × v` tile when
/// fused (B_s = 4096 rows).
pub fn lm_head_bytes(model: &PaperModel, local_tokens: f64, kind: LmHeadKind) -> f64 {
    let v = model.vocab as f64;
    match kind {
        LmHeadKind::Fused => 4096.0_f64.min(local_tokens) * v * FP32,
        LmHeadKind::Chunked => local_tokens * v * BF16 + local_tokens * FP32,
        LmHeadKind::Vanilla => local_tokens * v * (BF16 + FP32) + local_tokens * FP32,
    }
}

/// Full per-GPU memory model. `world` is the parameter-sharding degree;
/// `local_tokens` the sequence rows this GPU processes.
pub fn memory(
    model: &PaperModel,
    world: usize,
    local_tokens: f64,
    opts: &MemOptions,
) -> MemBreakdown {
    let params = model.params();
    let shard = if opts.fsdp { world as f64 } else { 1.0 };
    let weights = params * BF16 / shard;
    let grads = params * BF16 / shard;
    let optimizer = if opts.offload_optimizer {
        0.0
    } else {
        params * OPTIM_BYTES_PER_PARAM / shard
    };
    let checkpoints = model.layers as f64 * ckpt_bytes_per_layer(model, local_tokens, opts.ckpt);
    let lm_head = lm_head_bytes(model, local_tokens, opts.lm_head);
    // Transient: one block's full intermediates during recompute/backward +
    // the attention working tensors (q, k, v, o, ∇o, ∇q).
    let d = model.d_model as f64;
    let dff = model.d_ff as f64;
    let transient = local_tokens * (8.0 * d + 3.0 * dff) * BF16 + 6.0 * local_tokens * d * BF16;
    // Buffers: triple-buffered ring partitions (K, V) + one FSDP-gathered
    // block's weights (double-buffered prefetch).
    let block_params = (4 * model.d_model * model.d_model + 3 * model.d_model * model.d_ff) as f64;
    let buffers = 3.0 * 2.0 * local_tokens * d * BF16 + 2.0 * block_params * BF16;
    let comm_state = opts.comm_state_per_rank * world as f64;
    let sub = weights + grads + optimizer + checkpoints + lm_head + transient + buffers;
    MemBreakdown {
        weights,
        grads,
        optimizer,
        checkpoints,
        lm_head,
        transient,
        buffers,
        comm_state,
        runtime: RUNTIME_BYTES,
        overhead: sub * ALLOC_OVERHEAD,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::PaperModel;

    fn opts(ckpt: CkptKind, lm_head: LmHeadKind) -> MemOptions {
        MemOptions {
            fsdp: true,
            offload_optimizer: false,
            lm_head,
            ckpt,
            comm_state_per_rank: 0.0,
        }
    }

    #[test]
    fn baseline_lands_near_table2_row1() {
        // 14B, 1M tokens, 32 GPUs, FSDP, unfused head, full checkpointing:
        // the paper reports 48.47 GB.
        let m = PaperModel::llama_14b();
        let local = (1u64 << 20) as f64 / 32.0;
        let b = memory(&m, 32, local, &opts(CkptKind::Full, LmHeadKind::Chunked));
        let gb = b.total_gb();
        assert!(
            (40.0..58.0).contains(&gb),
            "baseline memory {gb} GB vs paper 48.47"
        );
    }

    #[test]
    fn fused_head_saves_the_logits() {
        // Table 2 rows 3→4: fusing the LM head saves ≈ N_local·v·2B ≈ 7.5 GB.
        let m = PaperModel::llama_14b();
        let local = (1u64 << 20) as f64 / 32.0;
        let unfused = memory(&m, 32, local, &opts(CkptKind::Full, LmHeadKind::Chunked)).total();
        let fused = memory(&m, 32, local, &opts(CkptKind::Full, LmHeadKind::Fused)).total();
        let saved_gb = (unfused - fused) / 1e9;
        assert!(
            (6.0..11.0).contains(&saved_gb),
            "fusion saves {saved_gb} GB (paper: ~7.5)"
        );
        // Vanilla CE (baselines) pays the fp32 upcast on top: ~3× the
        // chunked logits.
        let vanilla = memory(&m, 32, local, &opts(CkptKind::Full, LmHeadKind::Vanilla)).total();
        let extra_gb = (vanilla - unfused) / 1e9;
        assert!(
            (12.0..22.0).contains(&extra_gb),
            "vanilla upcast {extra_gb} GB"
        );
    }

    #[test]
    fn ckpt_strategy_ordering_matches_figure_7() {
        let m = PaperModel::llama_14b();
        let local = (1u64 << 20) as f64 / 32.0;
        let full = ckpt_bytes_per_layer(&m, local, CkptKind::Full);
        let seq = ckpt_bytes_per_layer(&m, local, CkptKind::SeqSelective { rho: 0.5 });
        let pp = ckpt_bytes_per_layer(&m, local, CkptKind::SelectivePP);
        let none = ckpt_bytes_per_layer(&m, local, CkptKind::None);
        assert!(full < seq && seq < pp && pp < none);
        // Fig. 7's claim: sequence-level halves the checkpointing *delta* of ++.
        let ratio = (seq - full) / (pp - full);
        assert!((ratio - 0.5).abs() < 0.05, "delta ratio {ratio}");
    }

    #[test]
    fn llama3_head_memory_is_4x_llama2_figure_8() {
        let l2 = lm_head_bytes(&PaperModel::llama_7b(), 1e6, LmHeadKind::Chunked);
        let l3 = lm_head_bytes(&PaperModel::llama3_8b(), 1e6, LmHeadKind::Chunked);
        let ratio = l3 / l2;
        assert!((3.5..4.5).contains(&ratio), "128K/32K vocab ratio {ratio}");
        // Fused head is orders of magnitude smaller and ~independent of N.
        let fused_1m = lm_head_bytes(&PaperModel::llama3_8b(), 1e6, LmHeadKind::Fused);
        assert!(fused_1m < l3 / 50.0);
        let fused_2m = lm_head_bytes(&PaperModel::llama3_8b(), 2e6, LmHeadKind::Fused);
        assert_eq!(fused_1m, fused_2m);
    }

    #[test]
    fn megatron_without_fsdp_cannot_fit() {
        // Weights + grads + fp32 optimizer replicated: 14B × 16 B = 224 GB
        // per GPU before any activation — the Fig. 12 OOM.
        let m = PaperModel::llama_14b();
        let no_fsdp = MemOptions {
            fsdp: false,
            offload_optimizer: false,
            lm_head: LmHeadKind::Vanilla,
            ckpt: CkptKind::Full,
            comm_state_per_rank: 0.0,
        };
        let b = memory(&m, 32, (1u64 << 20) as f64 / 32.0, &no_fsdp);
        assert!(b.total_gb() > 200.0, "replicated states {}", b.total_gb());
    }

    #[test]
    fn offload_removes_optimizer_term() {
        let m = PaperModel::llama_7b();
        let mut o = opts(CkptKind::Full, LmHeadKind::Fused);
        let with = memory(&m, 8, 32768.0, &o).optimizer;
        o.offload_optimizer = true;
        let without = memory(&m, 8, 32768.0, &o).optimizer;
        assert!(with > 0.0 && without == 0.0);
    }

    #[test]
    fn memory_is_stable_when_scaling_world_and_sequence_together() {
        // Table 4's observation: doubling nodes and sequence together keeps
        // per-GPU memory roughly flat (activations exactly, states shrink).
        let m = PaperModel::llama_14b();
        let o = opts(CkptKind::SeqSelective { rho: 0.5 }, LmHeadKind::Fused);
        let m32 = memory(&m, 32, (1u64 << 20) as f64 / 32.0, &o).total_gb();
        let m64 = memory(&m, 64, (2u64 << 20) as f64 / 64.0, &o).total_gb();
        assert!(
            (m64 - m32).abs() / m32 < 0.1,
            "32 GPU {m32} GB vs 64 GPU {m64} GB"
        );
    }
}
