//! The paper's testbed and model configurations.

use serde::{Deserialize, Serialize};

/// A point-to-point link: latency (s) + bandwidth (bytes/s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    pub latency: f64,
    pub bandwidth: f64,
}

impl LinkSpec {
    /// Transfer time for `bytes`.
    #[inline]
    pub fn time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

/// Cluster description (per paper §4.1: A800-SXM4-80GB nodes, 400 GB/s
/// NVLink, 8×200 Gb/s HDR InfiniBand NICs — one per GPU).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    pub nodes: usize,
    pub gpus_per_node: usize,
    pub nvlink: LinkSpec,
    pub nic: LinkSpec,
    /// HBM per GPU in bytes.
    pub hbm: f64,
    /// Peak dense bf16 throughput per GPU in FLOP/s.
    pub peak_flops: f64,
    /// Achieved fraction of peak for attention kernels (calibrated).
    pub eff_attn: f64,
    /// Achieved fraction of peak for dense GEMMs (calibrated).
    pub eff_gemm: f64,
}

impl Cluster {
    pub fn a800(nodes: usize, gpus_per_node: usize) -> Self {
        Cluster {
            nodes,
            gpus_per_node,
            nvlink: LinkSpec {
                latency: 3e-6,
                bandwidth: 400e9,
            },
            nic: LinkSpec {
                latency: 10e-6,
                bandwidth: 25e9,
            },
            hbm: 80e9,
            peak_flops: 312e12,
            // Calibrated once against Table 2 row 1 (36.75 % MFU with full
            // recomputation); see EXPERIMENTS.md.
            eff_attn: 0.52,
            eff_gemm: 0.65,
        }
    }

    #[inline]
    pub fn world(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// LLaMA-style model shapes used throughout the evaluation (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperModel {
    pub layers: usize,
    pub d_model: usize,
    pub heads: usize,
    pub vocab: usize,
    pub d_ff: usize,
}

impl PaperModel {
    /// 7B: 32 layers, 32 heads, 4096 dims, 32K vocabulary.
    pub fn llama_7b() -> Self {
        PaperModel {
            layers: 32,
            d_model: 4096,
            heads: 32,
            vocab: 32_000,
            d_ff: 11_008,
        }
    }

    /// 14B: 40 layers, 40 heads, 5120 dims, 120K vocabulary.
    pub fn llama_14b() -> Self {
        PaperModel {
            layers: 40,
            d_model: 5120,
            heads: 40,
            vocab: 120_000,
            d_ff: 13_824,
        }
    }

    /// LLaMA-3-style head for Fig. 8 (128K vocabulary on the 7B body).
    pub fn llama3_8b() -> Self {
        PaperModel {
            vocab: 128_256,
            ..PaperModel::llama_7b()
        }
    }

    pub fn head_dim(&self) -> usize {
        self.d_model / self.heads
    }

    /// Total parameter count (embeddings + blocks + head).
    pub fn params(&self) -> f64 {
        let block =
            4 * self.d_model * self.d_model + 3 * self.d_model * self.d_ff + 2 * self.d_model;
        (2 * self.vocab * self.d_model + self.layers * block + self.d_model) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_have_the_advertised_sizes() {
        let p7 = PaperModel::llama_7b().params();
        assert!(
            (6.5e9..7.5e9).contains(&p7),
            "7B config has {p7:.3e} params"
        );
        let p14 = PaperModel::llama_14b().params();
        assert!(
            (13.0e9..15.0e9).contains(&p14),
            "14B config has {p14:.3e} params"
        );
    }

    #[test]
    fn cluster_layout() {
        let c = Cluster::a800(4, 8);
        assert_eq!(c.world(), 32);
        assert!(c.nvlink.bandwidth > c.nic.bandwidth);
        assert!(c.nvlink.time(1e9) < c.nic.time(1e9));
    }

    #[test]
    fn head_dim_is_128() {
        assert_eq!(PaperModel::llama_7b().head_dim(), 128);
        assert_eq!(PaperModel::llama_14b().head_dim(), 128);
    }
}
