//! FLOP accounting: attention vs dense, recompute factors, MFU/TGS.

use crate::machine::{Cluster, PaperModel};
use burst_kernels::AttnMask;

/// Attention FLOPs of one layer's forward pass (all heads): `4·d_h` per
/// allowed (query, key) pair — the `QKᵀ` and `PV` products.
pub fn attn_fwd_flops(model: &PaperModel, mask: &AttnMask, seq_len: usize) -> f64 {
    let pairs = mask.allowed_pairs(seq_len) as f64;
    pairs * model.heads as f64 * 4.0 * model.head_dim() as f64
}

/// Attention backward: `10·d_h` per pair (score recompute + four gradient
/// products).
pub fn attn_bwd_flops(model: &PaperModel, mask: &AttnMask, seq_len: usize) -> f64 {
    let pairs = mask.allowed_pairs(seq_len) as f64;
    pairs * model.heads as f64 * 10.0 * model.head_dim() as f64
}

/// Dense (GEMM) parameters: everything that multiplies activations.
pub fn dense_params(model: &PaperModel) -> f64 {
    let block = 4 * model.d_model * model.d_model + 3 * model.d_model * model.d_ff;
    (model.layers * block + model.vocab * model.d_model) as f64
}

/// Dense FLOPs for forward (+2 per param per token) and backward (+4).
pub fn dense_flops(model: &PaperModel, seq_len: usize, fwd_bwd_factor: f64) -> f64 {
    fwd_bwd_factor * dense_params(model) * seq_len as f64
}

/// Useful model FLOPs of one training step (MFU numerator; recomputation
/// does not count).
pub fn useful_flops(model: &PaperModel, mask: &AttnMask, seq_len: usize) -> f64 {
    dense_flops(model, seq_len, 6.0)
        + model.layers as f64
            * (attn_fwd_flops(model, mask, seq_len) + attn_bwd_flops(model, mask, seq_len))
}

/// Fraction of a step's *compute time* spent in attention (Fig. 2's
/// quantity, assuming the kernels run at their respective efficiencies and
/// full gradient checkpointing recomputes one forward).
pub fn attention_time_fraction(cluster: &Cluster, model: &PaperModel, seq_len: usize) -> f64 {
    let mask = AttnMask::Causal;
    // With full checkpointing: fwd + recomputed fwd + bwd.
    let attn = model.layers as f64
        * (2.0 * attn_fwd_flops(model, &mask, seq_len) + attn_bwd_flops(model, &mask, seq_len))
        / cluster.eff_attn;
    let dense = dense_flops(model, seq_len, 8.0) / cluster.eff_gemm;
    attn / (attn + dense)
}

/// MFU given a measured/modelled step time across `world` GPUs.
pub fn mfu(
    cluster: &Cluster,
    model: &PaperModel,
    mask: &AttnMask,
    seq_len: usize,
    step_time: f64,
) -> f64 {
    useful_flops(model, mask, seq_len) / (step_time * cluster.peak_flops * cluster.world() as f64)
}

/// Tokens per second per GPU.
pub fn tgs(seq_len: usize, step_time: f64, world: usize) -> f64 {
    seq_len as f64 / step_time / world as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_dominates_long_sequences() {
        // Fig. 2: attention's share of compute grows with sequence length,
        // passing ~50 % well before 1M tokens for the 7B model.
        let c = Cluster::a800(4, 8);
        let m = PaperModel::llama_7b();
        let f32k = attention_time_fraction(&c, &m, 32 << 10);
        let f256k = attention_time_fraction(&c, &m, 256 << 10);
        let f1m = attention_time_fraction(&c, &m, 1 << 20);
        assert!(f32k < f256k && f256k < f1m, "{f32k} {f256k} {f1m}");
        assert!(f32k < 0.5, "32K share {f32k}");
        assert!(f1m > 0.85, "1M share {f1m}");
    }

    #[test]
    fn useful_flops_matches_6pn_at_short_sequences() {
        // At short sequences dense dominates: useful ≈ 6·P·N.
        let m = PaperModel::llama_7b();
        let n = 4096usize;
        let u = useful_flops(&m, &AttnMask::Causal, n);
        let approx = 6.0 * dense_params(&m) * n as f64;
        assert!((u / approx - 1.0).abs() < 0.1, "ratio {}", u / approx);
    }

    #[test]
    fn paper_scale_step_time_is_hundreds_of_seconds() {
        // Sanity anchor from §4.4: 14B @ 1M on 32 GPUs at ~36.75 % MFU runs
        // at ~84 TGS. Invert: our useful-FLOPs model should put the step
        // time in the right ballpark (±40 %).
        let c = Cluster::a800(4, 8);
        let m = PaperModel::llama_14b();
        let n = 1 << 20;
        let paper_tgs = 83.79;
        let step_time_paper = n as f64 / (paper_tgs * 32.0);
        let implied_mfu = mfu(&c, &m, &AttnMask::Causal, n, step_time_paper);
        assert!(
            (0.25..0.50).contains(&implied_mfu),
            "implied baseline MFU {implied_mfu} should be near the paper's 0.3675"
        );
    }

    #[test]
    fn tgs_inverse_in_time() {
        assert_eq!(tgs(1000, 2.0, 10), 50.0);
    }
}
