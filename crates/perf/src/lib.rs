//! # burst-perf
//!
//! Analytical models that evaluate the paper's experiments at their real
//! scale (7B/14B models, 1M–4M tokens, 32–64 A800s) — scales the simulator
//! cannot execute numerically on a CPU. The models use the paper's own
//! machine constants and cost formulas:
//!
//! * [`machine`] — the A800 testbed (312 TFLOPS bf16, 80 GB HBM, 400 GB/s
//!   NVLink, one 25 GB/s HDR NIC per GPU) and the paper's two model
//!   configurations (7B and 14B LLaMA);
//! * [`commtime`] — Table 1's communication-time formulas for
//!   RingAttention, DoubleRingAttention and BurstAttention;
//! * [`flops`] — attention/dense FLOP counts, checkpointing recompute
//!   factors, MFU/TGS conversion (drives Fig. 2);
//! * [`memory`] — the per-GPU memory decomposition: parameter/optimizer
//!   states (FSDP-sharded or replicated, optionally offloaded), activation
//!   checkpoints per strategy (Fig. 7), LM-head logits (Fig. 8), transient
//!   working set and ring buffers;
//! * [`peakmem`] — the exact per-rank peak-bytes census: the analytic twin
//!   of the virtual-memory accountant's measured ledger, gated equal in CI;
//! * [`endtoend`] — assembles the above into per-method step time, TGS,
//!   MFU and peak memory with feasibility checks (Megatron-CP's optimizer
//!   OOM, Ulysses' head-divisibility cap) — the engine behind Fig. 12–14
//!   and Tables 2–5.
//!
//! Calibration policy: two scalar efficiencies (attention-kernel and GEMM)
//! plus one allocator-overhead constant are fitted once against the
//! paper's no-optimization baseline (Table 2 row 1: 36.75 % MFU,
//! 48.47 GB); every other number is derived. EXPERIMENTS.md records
//! paper-vs-model for each table and figure.

pub mod commtime;
pub mod endtoend;
pub mod flops;
pub mod machine;
pub mod memory;
pub mod peakmem;

pub use commtime::{
    exact_wire_counts, exact_wire_counts_dtype, exact_wire_counts_masked_dtype, masked_wire_rank,
    MaskedWireCounts, RingMethod, WireCounts,
};
pub use endtoend::{evaluate, EndToEnd, Infeasible, Method};
pub use machine::{Cluster, PaperModel};
pub use peakmem::{
    exact_peak_bytes, exact_peak_bytes_dtype, exact_peak_bytes_masked_dtype, PeakMethod,
};
