//! Spawning a simulated cluster: one OS thread per rank.

use crate::comm::{Communicator, Msg};
use crate::stats::CommStats;
use crate::topology::Topology;
use crossbeam::channel::unbounded;

/// What each rank produced: the closure's return value, its communication
/// counters and its final virtual clock.
#[derive(Debug, Clone)]
pub struct RankOutput<R> {
    pub rank: usize,
    pub result: R,
    pub stats: CommStats,
    /// Final virtual time of this rank in seconds.
    pub time: f64,
}

/// A simulated cluster described by a [`Topology`].
#[derive(Debug, Clone)]
pub struct World {
    topo: Topology,
}

impl World {
    pub fn new(topo: Topology) -> Self {
        World { topo }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Run `f` on every rank concurrently (one OS thread per rank) and
    /// collect the per-rank outputs, ordered by rank.
    ///
    /// Panics in any rank propagate (the whole simulation aborts), matching
    /// the "a dead rank kills the job" semantics of real collectives.
    pub fn run<R, F>(&self, f: F) -> Vec<RankOutput<R>>
    where
        R: Send,
        F: Fn(&mut Communicator) -> R + Sync,
    {
        let g = self.topo.world_size();
        // Channel matrix: pair (src, dst) gets its own channel so message
        // streams between distinct peers never interleave.
        let mut senders: Vec<Vec<Option<crossbeam::channel::Sender<Msg>>>> =
            (0..g).map(|_| (0..g).map(|_| None).collect()).collect();
        let mut receivers: Vec<Vec<Option<crossbeam::channel::Receiver<Msg>>>> =
            (0..g).map(|_| (0..g).map(|_| None).collect()).collect();
        for src in 0..g {
            for dst in 0..g {
                let (tx, rx) = unbounded();
                senders[src][dst] = Some(tx);
                receivers[dst][src] = Some(rx);
            }
        }

        let comms: Vec<Communicator> = senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| {
                Communicator::new(
                    rank,
                    self.topo.clone(),
                    tx_row.into_iter().map(|t| t.unwrap()).collect(),
                    rx_row.into_iter().map(|r| r.unwrap()).collect(),
                )
            })
            .collect();

        let f = &f;
        let mut outputs: Vec<Option<RankOutput<R>>> = (0..g).map(|_| None).collect();
        std::thread::scope(|scope| {
            // Each thread *owns* its Communicator: if a rank panics, its
            // channel endpoints drop immediately and every peer blocked on
            // a matching receive fails fast ("peer rank terminated")
            // instead of deadlocking — the "a dead rank kills the job"
            // semantics of real collectives.
            let handles: Vec<_> = comms
                .into_iter()
                .enumerate()
                .map(|(rank, mut comm)| {
                    scope.spawn(move || {
                        let result = f(&mut comm);
                        RankOutput {
                            rank,
                            result,
                            stats: comm.stats(),
                            time: comm.time(),
                        }
                    })
                })
                .collect();
            let mut panicked = None;
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(out) => outputs[rank] = Some(out),
                    Err(payload) => panicked = Some(payload),
                }
            }
            if let Some(payload) = panicked {
                std::panic::resume_unwind(payload);
            }
        });
        outputs.into_iter().map(|o| o.unwrap()).collect()
    }

    /// Convenience: run and return only the results, ordered by rank.
    pub fn run_results<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Communicator) -> R + Sync,
    {
        self.run(f).into_iter().map(|o| o.result).collect()
    }

    /// Convenience: run and return the makespan — the maximum final virtual
    /// clock across ranks (what a benchmark would measure as step time).
    pub fn run_timed<R, F>(&self, f: F) -> (Vec<R>, f64, CommStats)
    where
        R: Send,
        F: Fn(&mut Communicator) -> R + Sync,
    {
        let outs = self.run(f);
        let makespan = outs.iter().map(|o| o.time).fold(0.0, f64::max);
        let stats = outs
            .iter()
            .map(|o| o.stats)
            .fold(CommStats::default(), |a, b| a.merge(&b));
        (
            outs.into_iter().map(|o| o.result).collect(),
            makespan,
            stats,
        )
    }
}
