//! Spawning a simulated cluster: one OS thread per rank.

use crate::comm::{Communicator, Msg};
use crate::fault::{CommError, FaultPlan};
use crate::stats::{CommStats, FaultCounters};
use crate::topology::Topology;
use burst_obs::{MemReport, RankTrace};
use crossbeam::channel::unbounded;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What each rank produced: the closure's return value, its communication
/// counters and its final virtual clock.
#[derive(Debug, Clone)]
pub struct RankOutput<R> {
    pub rank: usize,
    pub result: R,
    pub stats: CommStats,
    /// Injected-fault firings observed by this rank (zero on healthy runs).
    pub faults: FaultCounters,
    /// Final virtual time of this rank in seconds.
    pub time: f64,
    /// The rank's span timeline, if the closure called
    /// [`Communicator::start_trace`] and did not consume it itself. On a
    /// crashed rank any spans left open are force-closed at crash time
    /// (with warnings), so faulty timelines stay renderable.
    pub trace: Option<RankTrace>,
    /// The rank's memory ledger, if the closure called
    /// [`Communicator::start_mem_accounting`] and did not consume it
    /// itself. On a crashed rank any intervals left open are force-closed
    /// at crash time (with warnings), so even a crashed rank's ledger
    /// balances: allocated == freed + live-at-crash.
    pub mem: Option<MemReport>,
}

/// A simulated cluster described by a [`Topology`], optionally carrying a
/// deterministic [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct World {
    topo: Topology,
    fault: Option<FaultPlan>,
}

impl World {
    pub fn new(topo: Topology) -> Self {
        World { topo, fault: None }
    }

    /// A world with an injected fault schedule. The plan is handed to every
    /// rank's [`Communicator`]; use [`World::run_faulty`] to collect typed
    /// per-rank failures instead of aborting on the first one.
    pub fn with_faults(topo: Topology, plan: FaultPlan) -> Self {
        World {
            topo,
            fault: Some(plan),
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Build the per-rank communicators over a fresh channel matrix: pair
    /// (src, dst) gets its own channel so message streams between distinct
    /// peers never interleave.
    fn communicators(&self) -> Vec<Communicator> {
        let g = self.topo.world_size();
        let mut senders: Vec<Vec<Option<crossbeam::channel::Sender<Msg>>>> =
            (0..g).map(|_| (0..g).map(|_| None).collect()).collect();
        let mut receivers: Vec<Vec<Option<crossbeam::channel::Receiver<Msg>>>> =
            (0..g).map(|_| (0..g).map(|_| None).collect()).collect();
        for src in 0..g {
            for dst in 0..g {
                let (tx, rx) = unbounded();
                senders[src][dst] = Some(tx);
                receivers[dst][src] = Some(rx);
            }
        }
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| {
                Communicator::new(
                    rank,
                    self.topo.clone(),
                    tx_row.into_iter().map(|t| t.unwrap()).collect(),
                    rx_row.into_iter().map(|r| r.unwrap()).collect(),
                    self.fault.clone(),
                )
            })
            .collect()
    }

    /// Run `f` on every rank concurrently (one OS thread per rank) and
    /// collect the per-rank outputs, ordered by rank.
    ///
    /// Panics in any rank propagate (the whole simulation aborts), matching
    /// the "a dead rank kills the job" semantics of real collectives. For
    /// fault-tolerant runs that collect per-rank failures instead, see
    /// [`World::run_faulty`].
    pub fn run<R, F>(&self, f: F) -> Vec<RankOutput<R>>
    where
        R: Send,
        F: Fn(&mut Communicator) -> R + Sync,
    {
        let comms = self.communicators();
        let f = &f;
        let g = self.topo.world_size();
        let mut outputs: Vec<Option<RankOutput<R>>> = (0..g).map(|_| None).collect();
        std::thread::scope(|scope| {
            // Each thread *owns* its Communicator: if a rank panics, its
            // channel endpoints drop immediately and every peer blocked on
            // a matching receive fails fast ("peer rank terminated")
            // instead of deadlocking — the "a dead rank kills the job"
            // semantics of real collectives.
            let handles: Vec<_> = comms
                .into_iter()
                .enumerate()
                .map(|(rank, mut comm)| {
                    scope.spawn(move || {
                        let result = f(&mut comm);
                        RankOutput {
                            rank,
                            result,
                            stats: comm.stats(),
                            faults: comm.fault_counters(),
                            time: comm.time(),
                            trace: comm.take_rank_trace(),
                            mem: comm.take_mem_report(),
                        }
                    })
                })
                .collect();
            let mut panicked = None;
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(out) => outputs[rank] = Some(out),
                    Err(payload) => panicked = Some(payload),
                }
            }
            if let Some(payload) = panicked {
                std::panic::resume_unwind(payload);
            }
        });
        outputs.into_iter().map(|o| o.unwrap()).collect()
    }

    /// Fault-tolerant run: every rank's outcome is collected as a
    /// `Result<R, CommError>` and one dead rank no longer aborts the
    /// simulation.
    ///
    /// `f` may fail in two ways: by returning `Err(E)` (the `try_*` API —
    /// `E` is any error convertible from [`CommError`], e.g. `CommError`
    /// itself or `burst-dattn`'s round-annotated failure type), or by
    /// panicking — a panic whose payload is an `E` or a [`CommError`]
    /// (what the infallible API raises under a fault plan) is recovered
    /// verbatim; any other panic is wrapped as [`CommError::Panicked`] with
    /// the panic message as detail. When a rank dies its channel endpoints
    /// drop, so peers blocked on it observe [`CommError::PeerLost`] rather
    /// than deadlocking.
    pub fn run_faulty<R, E, F>(&self, f: F) -> Vec<RankOutput<Result<R, E>>>
    where
        R: Send,
        E: From<CommError> + Send + 'static,
        F: Fn(&mut Communicator) -> Result<R, E> + Sync,
    {
        let comms = self.communicators();
        let f = &f;
        let g = self.topo.world_size();
        let mut outputs: Vec<Option<RankOutput<Result<R, E>>>> = (0..g).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .enumerate()
                .map(|(rank, mut comm)| {
                    scope.spawn(move || {
                        let caught = catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                        match caught {
                            Ok(result) => RankOutput {
                                rank,
                                result,
                                stats: comm.stats(),
                                faults: comm.fault_counters(),
                                time: comm.time(),
                                trace: comm.take_rank_trace(),
                                mem: comm.take_mem_report(),
                            },
                            Err(payload) => {
                                let err = match payload.downcast::<E>() {
                                    Ok(e) => *e,
                                    Err(payload) => match payload.downcast::<CommError>() {
                                        Ok(e) => E::from(*e),
                                        Err(payload) => {
                                            let detail = if let Some(s) =
                                                payload.downcast_ref::<String>()
                                            {
                                                s.clone()
                                            } else if let Some(s) = payload.downcast_ref::<&str>() {
                                                (*s).to_string()
                                            } else {
                                                "non-string panic payload".to_string()
                                            };
                                            E::from(CommError::Panicked { rank, detail })
                                        }
                                    },
                                };
                                // The communicator survived the unwind (we
                                // still own it here), so report its state
                                // and only then drop it to release the
                                // channels for the surviving peers. Spans
                                // the crashed rank never closed are force-
                                // closed at its final clock inside
                                // `take_rank_trace`, with one warning each;
                                // the memory ledger gets the same treatment
                                // in `take_mem_report`, so a crashed rank's
                                // ledger still balances.
                                RankOutput {
                                    rank,
                                    result: Err(err),
                                    stats: comm.stats(),
                                    faults: comm.fault_counters(),
                                    time: comm.time(),
                                    trace: comm.take_rank_trace(),
                                    mem: comm.take_mem_report(),
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                // Threads can no longer panic past catch_unwind; a join
                // error would mean the harness itself is broken.
                let out = h.join().expect("run_faulty: rank thread died outside f");
                let rank = out.rank;
                outputs[rank] = Some(out);
            }
        });
        outputs.into_iter().map(|o| o.unwrap()).collect()
    }

    /// Convenience: run and return only the results, ordered by rank.
    pub fn run_results<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Communicator) -> R + Sync,
    {
        self.run(f).into_iter().map(|o| o.result).collect()
    }

    /// Convenience: run and return the makespan — the maximum final virtual
    /// clock across ranks (what a benchmark would measure as step time).
    pub fn run_timed<R, F>(&self, f: F) -> (Vec<R>, f64, CommStats)
    where
        R: Send,
        F: Fn(&mut Communicator) -> R + Sync,
    {
        let outs = self.run(f);
        let makespan = outs.iter().map(|o| o.time).fold(0.0, f64::max);
        let stats = outs
            .iter()
            .map(|o| o.stats)
            .fold(CommStats::default(), |a, b| a.merge(&b));
        (
            outs.into_iter().map(|o| o.result).collect(),
            makespan,
            stats,
        )
    }
}
